//! The paper's quantitative claims, asserted against the reproduction.
//!
//! These are the statements EXPERIMENTS.md records; each test pins one claim
//! so regressions in any layer (runtime model, orchestrator, controller,
//! network) surface immediately.

use desim::Summary;
use testbed::experiments::{run_trace_experiment, DeploymentRun};
use testbed::ClusterKind;
use transparent_edge::prelude::*;

fn median(v: &[f64]) -> f64 {
    Summary::new(v.to_vec()).median().unwrap()
}

fn run(kind: ClusterKind, key: &str, pre_create: bool, seed: u64) -> DeploymentRun {
    run_trace_experiment(kind, &ServiceSet::by_key(key).unwrap(), pre_create, seed)
}

/// "Response times of less than one second (with cached Docker images)
/// should be sufficient for all but the most latency-critical applications"
/// — and "as low as 0.5 seconds" for an nginx-based service.
#[test]
fn docker_first_request_under_one_second() {
    for key in ["asm", "nginx", "nginx-py"] {
        let r = run(ClusterKind::Docker, key, true, 7);
        let med = median(&r.firsts);
        assert!(med < 1.0, "{key}: {med:.3}s");
        assert_eq!(r.resets, 0);
    }
    let nginx = median(&run(ClusterKind::Docker, "nginx", true, 7).firsts);
    assert!((0.35..0.75).contains(&nginx), "nginx ≈ 0.5s, got {nginx:.3}");
}

/// "When deploying to a Kubernetes cluster, it takes significantly longer to
/// start a new service instance — about three seconds."
#[test]
fn k8s_scale_up_about_three_seconds() {
    for key in ["asm", "nginx"] {
        let med = median(&run(ClusterKind::K8s, key, true, 7).firsts);
        assert!((2.0..4.0).contains(&med), "{key}: {med:.3}s");
    }
}

/// "The numbers highlight the significant difference between just starting a
/// container via Docker (less than one second) and the overhead of starting
/// the same container on a complex orchestrator like Kubernetes (around
/// three seconds)" — same containerd underneath, so the gap is pure
/// orchestration.
#[test]
fn orchestrator_overhead_dominates() {
    let d = median(&run(ClusterKind::Docker, "nginx", true, 7).firsts);
    let k = median(&run(ClusterKind::K8s, "nginx", true, 7).firsts);
    assert!(k / d > 3.0, "K8s/Docker ratio {:.1}", k / d);
}

/// "Interestingly, there is no notable difference between starting the tiny
/// Assembler web server and the far larger Nginx instance."
#[test]
fn asm_and_nginx_start_alike() {
    let asm = median(&run(ClusterKind::Docker, "asm", true, 7).firsts);
    let nginx = median(&run(ClusterKind::Docker, "nginx", true, 7).firsts);
    assert!(
        (nginx - asm).abs() < 0.25,
        "asm {asm:.3}s vs nginx {nginx:.3}s"
    );
}

/// "As expected, ResNet takes significantly longer to start; the waiting
/// time alone accounts for more than a fourth of the total time."
#[test]
fn resnet_wait_exceeds_quarter_of_total() {
    let r = run(ClusterKind::Docker, "resnet", true, 7);
    let total = median(&r.firsts);
    let wait = median(&r.waits);
    assert!(total > 2.0, "resnet total {total:.3}s");
    assert!(wait / total > 0.25, "wait share {:.2}", wait / total);
}

/// "Creating the containers adds around 100 ms to the response time of the
/// first request" (Fig. 12 vs Fig. 11, Docker).
#[test]
fn create_phase_adds_about_100ms() {
    let scale_only = median(&run(ClusterKind::Docker, "nginx", true, 7).firsts);
    let create_scale = median(&run(ClusterKind::Docker, "nginx", false, 7).firsts);
    let delta = create_scale - scale_only;
    assert!((0.04..0.35).contains(&delta), "create overhead {delta:.3}s");
}

/// "When pulling the same images from a private container registry located
/// in the same network, pull times improve by about 1.5 to 2 seconds."
#[test]
fn private_registry_saves_one_and_a_half_to_two_seconds() {
    let fig = testbed::experiments::fig13(32);
    for key in ["nginx", "resnet", "nginx-py"] {
        let row = fig.table.rows.iter().find(|r| r[0] == key).unwrap();
        let saving: f64 = row[3].trim_end_matches(" s").parse().unwrap();
        assert!((1.0..3.5).contains(&saving), "{key}: saving {saving:.2}s");
    }
}

/// "While serving a short response message is achieved in about a
/// millisecond, the heavyweight image classification service requires
/// significantly longer" (Fig. 16) — and no notable difference between the
/// two cluster types once running.
#[test]
fn warm_requests_fast_and_cluster_agnostic() {
    let nd = median(&run(ClusterKind::Docker, "nginx", true, 7).warm);
    let nk = median(&run(ClusterKind::K8s, "nginx", true, 7).warm);
    assert!(nd < 0.01 && nk < 0.01, "nginx warm {nd:.4}/{nk:.4}s");
    assert!((nd - nk).abs() < 0.005, "clusters agree once running");
    let rd = median(&run(ClusterKind::Docker, "resnet", true, 7).warm);
    assert!(rd / nd > 20.0, "resnet warm {rd:.3}s vs nginx {nd:.4}s");
}

/// The workload matches the published trace statistics: 1708 requests, 42
/// services, every service ≥ 20 requests, deployments clustered early.
#[test]
fn workload_matches_bigflows_statistics() {
    let trace = Trace::generate(TraceConfig::default(), 7);
    assert_eq!(trace.requests.len(), 1708);
    let counts = trace.per_service_counts();
    assert_eq!(counts.len(), 42);
    assert!(counts.iter().all(|&c| c >= 20));
    let firsts = trace.deployment_times();
    let early = firsts
        .iter()
        .filter(|&&t| t <= SimTime::from_secs(30))
        .count();
    assert!(early >= 30, "{early}/42 deployments in the first 30s");
}

/// The full five-minute replay completes every request without a single
/// connection reset: the port-polling discipline works.
#[test]
fn no_request_ever_hits_a_closed_port() {
    for kind in [ClusterKind::Docker, ClusterKind::K8s] {
        let r = run(kind, "nginx", true, 13);
        assert_eq!(r.resets, 0, "{}", kind.label());
        assert_eq!(r.firsts.len(), 42);
        assert!(r.warm.len() > 1600);
    }
}
