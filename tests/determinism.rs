//! Reproducibility: identical seeds produce bit-identical experiment
//! results; different seeds vary but stay within the calibrated bands.

use testbed::experiments::run_trace_experiment;
use testbed::ClusterKind;
use transparent_edge::prelude::*;

#[test]
fn identical_seeds_identical_runs() {
    let p = ServiceSet::by_key("nginx").unwrap();
    let a = run_trace_experiment(ClusterKind::Docker, &p, true, 1234);
    let b = run_trace_experiment(ClusterKind::Docker, &p, true, 1234);
    assert_eq!(a.firsts, b.firsts);
    assert_eq!(a.waits, b.waits);
    assert_eq!(a.warm, b.warm);
}

#[test]
fn different_seeds_differ_but_stay_in_band() {
    let p = ServiceSet::by_key("nginx").unwrap();
    let a = run_trace_experiment(ClusterKind::Docker, &p, true, 1);
    let b = run_trace_experiment(ClusterKind::Docker, &p, true, 2);
    assert_ne!(a.firsts, b.firsts, "seeds must matter");
    for r in [&a, &b] {
        let med = desim::Summary::new(r.firsts.clone()).median().unwrap();
        assert!((0.3..1.0).contains(&med), "median {med}");
    }
}

#[test]
fn full_harness_run_is_deterministic() {
    let run = |seed: u64| {
        let mut tb = Testbed::new(TestbedConfig {
            seed,
            ..TestbedConfig::default()
        });
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        tb.register_service(ServiceSet::by_key("nginx-py").unwrap(), addr);
        tb.pre_pull(addr);
        tb.request_at(SimTime::from_secs(1), 0, addr);
        tb.request_at(SimTime::from_secs(2), 5, addr);
        tb.run_until(SimTime::from_secs(60));
        tb.completed
            .iter()
            .map(|c| (c.client, c.timing.time_total().unwrap().as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

#[test]
fn trace_generation_is_stable_across_calls() {
    let a = Trace::generate(TraceConfig::default(), 7);
    let b = Trace::generate(TraceConfig::default(), 7);
    assert_eq!(a.requests, b.requests);
    // The documented default parameters never silently change.
    assert_eq!(a.config.n_services, 42);
    assert_eq!(a.config.n_requests, 1708);
    assert_eq!(a.config.min_per_service, 20);
    assert_eq!(a.config.n_clients, 20);
}

#[test]
fn figures_are_deterministic() {
    let a = testbed::experiments::fig9(7);
    let b = testbed::experiments::fig9(7);
    assert_eq!(a.body, b.body);
    let a = testbed::experiments::fig13(8);
    let b = testbed::experiments::fig13(8);
    assert_eq!(a.body, b.body);
}

#[test]
fn mobility_figure_is_deterministic() {
    let a = testbed::experiments::mobility(11, true);
    let b = testbed::experiments::mobility(11, true);
    assert_eq!(a.body, b.body, "same seed, byte-identical mobility figure");
    let c = testbed::experiments::mobility(12, true);
    assert_ne!(a.body, c.body, "seeds must matter");
}

#[test]
fn zero_move_mobility_leaves_single_ingress_behaviour_intact() {
    // A mobility run where nobody ever moves must behave exactly like the
    // single-ingress world: no handovers, and — because ingress 0 is the
    // default and client addressing is unchanged for i < 236 — the existing
    // single-switch figures (fig9/fig13 above, the harness runs) stay
    // byte-identical. Those figures never construct a mobility model, so it
    // suffices that a zero-move run touches nothing beyond its own testbed.
    use testbed::{MobilityConfig, MobilityTestbed};
    use transparent_edge::mobility::Static;
    let fig_before = testbed::experiments::fig13(8);
    let mut tb = MobilityTestbed::new(MobilityConfig {
        n_gnbs: 2,
        n_clients: 4,
        ..MobilityConfig::default()
    });
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    tb.register_service(ServiceSet::by_key("asm").unwrap(), addr);
    tb.warm_all_zones();
    tb.pre_deploy_on(0);
    let mut model = Static::new(vec![0; 4]);
    tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(10));
    assert!(tb.handovers.is_empty(), "zero moves, zero handovers");
    assert_eq!(tb.pings_sent(), tb.pings_done());
    let fig_after = testbed::experiments::fig13(8);
    assert_eq!(fig_before.body, fig_after.body);
}
