//! Cross-crate integration: from a YAML service definition all the way to a
//! served request, exercising yamlite → edgectl → k8ssim/dockersim →
//! containerd/registry → ovs/openflow → netsim in one flow.

use desim::{Duration, SimRng, SimTime};
use transparent_edge::prelude::*;

const USER_YAML: &str = "
apiVersion: apps/v1
kind: Deployment
metadata:
  name: my-web # will be replaced by the unique worldwide name
spec:
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          env:
            - name: MODE
              value: edge
";

/// The same user-written definition file drives both cluster types
/// (Section V), end to end.
#[test]
fn same_definition_deploys_on_docker_and_k8s() {
    for kind in [ClusterKind::Docker, ClusterKind::K8s] {
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        let annotated = annotate_deployment(USER_YAML, addr, None).unwrap();
        assert_eq!(annotated.deployment["spec"]["replicas"].as_i64(), Some(0));

        let mut tb = Testbed::new(TestbedConfig {
            cluster: kind,
            seed: 9,
            ..TestbedConfig::default()
        });
        // Register through the high-level path (profile supplies timing
        // models; the annotation is equivalent to `annotated` above).
        tb.register_service(ServiceSet::by_key("nginx").unwrap(), addr);
        tb.pre_pull(addr);
        tb.request_at(SimTime::from_secs(1), 0, addr);
        tb.run_until(SimTime::from_secs(60));

        assert_eq!(tb.completed.len(), 1, "{} served the request", kind.label());
        assert_eq!(tb.resets, 0);
        assert_eq!(tb.transparency_violations, 0);
        let rec = &tb.controller.records[0];
        assert!(rec.phases.create_done.is_some(), "create phase ran");
        assert!(rec.phases.wait_time().is_some(), "port polling happened");
    }
}

/// The annotated definition round-trips through the YAML emitter and parses
/// back into an equivalent deployable document.
#[test]
fn annotation_emission_roundtrip() {
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 99), 8080);
    let annotated = annotate_deployment(USER_YAML, addr, Some("edge-pack-scheduler")).unwrap();
    let text = annotated.to_yaml();
    let docs = yamlite::parse_documents(&text).unwrap();
    assert_eq!(docs.len(), 2);
    assert_eq!(docs[0], annotated.deployment);
    assert_eq!(docs[1], annotated.service);
    // Re-annotating the emitted Deployment is idempotent on the key fields.
    let again = annotate_deployment(&text, addr, Some("edge-pack-scheduler")).unwrap();
    assert_eq!(again.service_name, annotated.service_name);
    assert_eq!(again.edge_label, annotated.edge_label);
    assert_eq!(again.target_port, annotated.target_port);
}

/// Full lifecycle across the stack: deploy on demand, serve, go idle, get
/// scaled down by the controller, redeploy on the next request — twice.
#[test]
fn scale_down_redeploy_cycles() {
    use edgectl::controller::RequestKind;
    let mut tb = Testbed::new(TestbedConfig {
        seed: 4,
        controller: edgectl::ControllerConfig {
            memory_idle: Duration::from_secs(15),
            ..Default::default()
        },
        ..TestbedConfig::default()
    });
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    tb.register_service(ServiceSet::by_key("asm").unwrap(), addr);
    tb.pre_pull(addr);
    tb.pre_create(addr);
    for t in [1u64, 40, 80] {
        tb.request_at(SimTime::from_secs(t), 0, addr);
    }
    tb.run_until(SimTime::from_secs(200));
    assert_eq!(tb.completed.len(), 3);
    let kinds: Vec<RequestKind> = tb.controller.records.iter().map(|r| r.kind).collect();
    assert_eq!(
        kinds,
        vec![RequestKind::Waited, RequestKind::Waited, RequestKind::Waited],
        "each request found the service scaled down and redeployed"
    );
}

/// Many services, many clients, both directions of rewrite under load:
/// every response must come back and look like the cloud.
#[test]
fn multi_service_multi_client_storm() {
    let mut tb = Testbed::new(TestbedConfig {
        seed: 21,
        ..TestbedConfig::default()
    });
    let profiles = ["asm", "nginx", "nginx-py"];
    let mut addrs = Vec::new();
    for (i, key) in profiles.iter().enumerate() {
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10 + i as u8), 80);
        tb.register_service(ServiceSet::by_key(key).unwrap(), addr);
        tb.pre_pull(addr);
        tb.pre_create(addr);
        addrs.push(addr);
    }
    let mut rng = SimRng::new(5);
    let mut scheduled = 0;
    for i in 0..120u64 {
        let client = (rng.below(20)) as usize;
        let addr = addrs[rng.below(addrs.len() as u64) as usize];
        tb.request_at(SimTime::from_millis(1000 + i * 333), client, addr);
        scheduled += 1;
    }
    tb.run_until(SimTime::from_secs(300));
    assert_eq!(tb.completed.len(), scheduled);
    assert_eq!(tb.resets, 0);
    assert_eq!(tb.transparency_violations, 0);
    assert_eq!(tb.drops, 0, "no frames lost in the data plane");
    // The switch served the bulk of traffic without the controller.
    assert!(tb.switch().fast_path_packets > tb.switch().table_misses);
}

/// The low-level controller API and the harness agree: a request driven by
/// hand through OpenFlow bytes sees the same deployment timeline as the
/// harness-driven one.
#[test]
fn manual_openflow_drive_matches_harness() {
    use dockersim::DockerEngine;
    use netsim::TcpFrame;
    use ovs::{Effect, Switch, SwitchConfig};
    use std::collections::HashMap;

    let mut rng = SimRng::new(77);
    let mut engine = DockerEngine::with_defaults();
    engine.pull(&ServiceSet::by_key("asm").unwrap().manifests, &mut rng);
    let cluster = DockerCluster::new(
        "edge",
        engine,
        MacAddr::from_id(200),
        Ipv4Addr::new(10, 0, 0, 10),
        Duration::from_micros(50),
    );
    let mut ctl = Controller::new(
        edgectl::scheduler_by_name("proximity").unwrap(),
        PortMap {
            cluster_ports: HashMap::new(),
            cloud_port: 3,
        },
        ControllerConfig::default(),
    );
    ctl.add_cluster(Box::new(cluster), 2);
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    let profile = ServiceSet::by_key("asm").unwrap();
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - image: {}\n          ports:\n            - containerPort: 80\n",
        profile.manifests[0].reference
    );
    let annotated = annotate_deployment(&yaml, addr, None).unwrap();
    ctl.register_service(EdgeService {
        addr,
        name: annotated.service_name.clone(),
        annotated,
        profile,
    });
    let mut sw = Switch::new(SwitchConfig {
        datapath_id: 1,
        n_buffers: 8,
        miss_send_len: 128,
        ports: vec![1, 2, 3],
    });

    let syn = TcpFrame::syn(
        MacAddr::from_id(1),
        MacAddr::from_id(99),
        Ipv4Addr::new(192, 168, 1, 20),
        50000,
        addr,
    );
    let t0 = SimTime::from_secs(1);
    let effects = sw.handle_frame(t0, 1, &syn.encode());
    let Effect::ToController(pkt_in) = &effects[0] else {
        panic!("no packet-in")
    };
    let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
    let answered = out[0].at;
    assert!(answered > t0 && answered - t0 < Duration::from_secs(1));

    // Deliver the messages; the buffered SYN must emerge rewritten.
    let mut forwarded = false;
    for m in &out {
        for e in sw.handle_controller(m.at, &m.data).unwrap() {
            if let Effect::Forward { port, data } = e {
                assert_eq!(port, 2);
                let f = TcpFrame::decode(&data).unwrap();
                assert_eq!(f.dst_ip, Ipv4Addr::new(10, 0, 0, 10));
                forwarded = true;
            }
        }
    }
    assert!(forwarded, "buffered packet released through the new flow");
}
