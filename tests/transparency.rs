//! The core property of the whole system: *transparency*. Whatever the
//! scheduler, cluster type, or service, clients only ever see the registered
//! cloud address — and the data plane never leaks edge addressing.

use desim::{Duration, SimTime};
use transparent_edge::prelude::*;

fn exercise(kind: ClusterKind, scheduler: &str, key: &str, seed: u64) -> Testbed {
    let mut tb = Testbed::new(TestbedConfig {
        cluster: kind,
        scheduler: scheduler.to_owned(),
        seed,
        ..TestbedConfig::default()
    });
    let profile = ServiceSet::by_key(key).unwrap();
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), profile.listen_port);
    tb.register_service(profile, addr);
    tb.pre_pull(addr);
    tb.pre_create(addr);
    for (i, t) in [1u64, 8, 15, 22].iter().enumerate() {
        tb.request_at(SimTime::from_secs(*t), i % 20, addr);
    }
    tb.run_until(SimTime::from_secs(120));
    tb
}

#[test]
fn transparent_across_clusters_schedulers_and_services() {
    for kind in [ClusterKind::Docker, ClusterKind::K8s] {
        for scheduler in ["proximity", "latency-aware", "round-robin"] {
            for key in ["asm", "resnet"] {
                let tb = exercise(kind, scheduler, key, 3);
                assert_eq!(
                    tb.transparency_violations, 0,
                    "{} + {scheduler} + {key}",
                    kind.label()
                );
                assert_eq!(tb.resets, 0);
                assert_eq!(tb.completed.len(), 4, "{} + {scheduler} + {key}", kind.label());
            }
        }
    }
}

#[test]
fn cloud_only_baseline_is_also_transparent() {
    // Even with the edge disabled entirely, the pipeline is sound (the
    // "perceived cloud" answers for real).
    let tb = exercise(ClusterKind::Docker, "cloud-only", "nginx", 5);
    assert_eq!(tb.transparency_violations, 0);
    assert_eq!(tb.completed.len(), 4);
    // But every request pays the WAN: visibly slower than edge service.
    for c in &tb.completed {
        assert!(c.timing.time_total().unwrap() > Duration::from_millis(50));
    }
}

#[test]
fn edge_beats_cloud_once_warm() {
    let edge = exercise(ClusterKind::Docker, "proximity", "nginx", 5);
    let cloud = exercise(ClusterKind::Docker, "cloud-only", "nginx", 5);
    let warm_edge = edge
        .completed
        .last()
        .unwrap()
        .timing
        .time_total()
        .unwrap();
    let warm_cloud = cloud
        .completed
        .last()
        .unwrap()
        .timing
        .time_total()
        .unwrap();
    assert!(
        warm_cloud > warm_edge * 5,
        "cloud {warm_cloud} vs edge {warm_edge}"
    );
}

/// The switch's reverse flows do the source masquerade — remove them and
/// transparency must break. This guards the invariant from the other side:
/// the counter actually detects violations.
#[test]
fn transparency_counter_detects_violations() {
    use netsim::{TcpFlags, TcpFrame};
    // Hand-build the situation: a response that arrives at a client with an
    // un-rewritten (edge) source. We go through the harness internals by
    // simulating what would happen if the reverse flow were missing — the
    // counter must catch a frame whose source is not the service address.
    let mut tb = Testbed::new(TestbedConfig::default());
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    tb.register_service(ServiceSet::by_key("asm").unwrap(), addr);
    tb.pre_pull(addr);
    tb.pre_create(addr);
    tb.request_at(SimTime::from_secs(1), 0, addr);
    tb.run_until(SimTime::from_secs(30));
    assert_eq!(tb.transparency_violations, 0);

    // Sanity of the check itself: a frame from the edge address toward the
    // client connection would have been flagged (white-box expectation
    // documented here; the positive path is asserted everywhere else).
    let f = TcpFrame::syn(
        MacAddr::from_id(1),
        MacAddr::from_id(2),
        Ipv4Addr::new(10, 0, 0, 10), // the edge host, NOT the cloud address
        31000,
        addr,
    );
    assert_ne!(f.src_ip, addr.ip, "an un-rewritten source is detectable");
    let _ = TcpFlags::SYN;
}
