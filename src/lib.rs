//! # transparent-edge
//!
//! A full-system Rust reproduction of *"Distributed On-Demand Deployment for
//! Transparent Access to 5G Edge Computing Services"* (Hammer & Hellwagner),
//! the follow-up to *"Transparent Access to 5G Edge Computing Services"*
//! (IPDPS-W 2019) whose transparent-access system it extends.
//!
//! Clients address registered **cloud** services; an OpenFlow switch at the
//! network ingress intercepts those requests and an SDN controller redirects
//! them — rewriting packets — to service instances it deploys **on demand**
//! in nearby edge clusters (Docker or Kubernetes). To the client, the edge
//! does not exist.
//!
//! This crate is a façade over the workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`edgectl`] | **The controller** (the paper's contribution): FlowMemory, Dispatcher, Global/Local schedulers, deployment phases, YAML auto-annotation |
//! | [`testbed`] | The emulated C³ evaluation testbed and every experiment (Table I, Figs. 9–16, ablations) |
//! | [`ovs`] / [`openflow`] | Virtual OpenFlow switch + the protocol subset, byte-exact |
//! | [`k8ssim`] / [`dockersim`] / [`containerd`] / [`registry`] | The cluster substrates: orchestrators over a simulated container runtime and image registries |
//! | [`netsim`] | Frames (real Ethernet/IPv4/TCP bytes), links, the topology |
//! | [`mobility`] | Deterministic, seedable user-mobility models emitting timed cell-attachment changes |
//! | [`workload`] | bigFlows-like request traces and `timecurl` measurement semantics |
//! | [`yamlite`] | Dependency-free YAML subset parser for service definitions |
//! | [`desim`] | Deterministic discrete-event simulation kernel |
//!
//! # Quickstart
//!
//! ```
//! use transparent_edge::prelude::*;
//!
//! // Assemble the emulated testbed: 20 clients, OVS, controller, Docker.
//! let mut tb = Testbed::new(TestbedConfig::default());
//!
//! // Register nginx as an edge service at its *cloud* address and cache the
//! // image at the edge.
//! let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
//! tb.register_service(ServiceSet::by_key("nginx").unwrap(), addr);
//! tb.pre_pull(addr);
//! tb.pre_create(addr);
//!
//! // A client requests the cloud address; the controller deploys on demand
//! // and answers through the edge, transparently.
//! tb.request_at(SimTime::from_secs(1), 0, addr);
//! tb.run_until(SimTime::from_secs(30));
//!
//! let total = tb.completed[0].timing.time_total().unwrap();
//! assert!(total < desim::Duration::from_secs(1)); // the headline result
//! assert_eq!(tb.transparency_violations, 0);
//! ```

#![warn(missing_docs)]

pub use containerd;
pub use desim;
pub use dockersim;
pub use edgectl;
pub use k8ssim;
pub use mobility;
pub use netsim;
pub use openflow;
pub use ovs;
pub use registry;
pub use testbed;
pub use workload;
pub use yamlite;

/// The most common imports for using the system end to end.
pub mod prelude {
    pub use containerd::{ServiceProfile, ServiceSet};
    pub use desim::{Duration, SimRng, SimTime, Summary};
    pub use edgectl::{
        annotate_deployment, Controller, ControllerConfig, DockerCluster, EdgeCluster,
        EdgeService, GlobalScheduler, K8sEdgeCluster, PortMap,
    };
    pub use netsim::{Ipv4Addr, MacAddr, ServiceAddr};
    pub use testbed::{ClusterKind, Testbed, TestbedConfig};
    pub use workload::{Trace, TraceConfig};
}
