//! Offline property-testing shim.
//!
//! The workspace builds in hermetic environments with no crates-io mirror, so
//! this crate provides the (small) subset of the `proptest` 1.x API the test
//! suite uses: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, `any::<T>()`, ranges, tuples, `Just`, weighted unions
//! (`prop_oneof!`), `prop::collection::vec`, `prop::num::f64::NORMAL`,
//! `string_regex` for the simple character-class patterns the tests rely on,
//! and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! - values are generated from a deterministic per-test RNG (seeded from the
//!   test's module path and name), so every run explores the same cases;
//! - there is no shrinking — a failing case reports the case index and the
//!   assertion message instead of a minimized input.

pub mod test_runner {
    //! The runner configuration, error type, and deterministic RNG.

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vacuous (`prop_assume!` failed); skip it.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected-case (assumption) marker.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from an arbitrary label (e.g. the test's full path), so each
        /// property explores its own fixed sequence.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift keeps this unbiased enough for test generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: applies `f` to the leaf strategy `depth`
        /// times. The `_desired_size` / `_expected_branch` hints of the real
        /// API are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut s = self.boxed();
            for _ in 0..depth {
                s = f(s).boxed();
            }
            s
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A weighted choice among strategies of one value type (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().expect("union has arms").1.generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).wrapping_sub(self.start as u64).max(1);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as u64)
                        .wrapping_sub(*self.start() as u64)
                        .wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        rng.next_u64() as $t
                    } else {
                        (*self.start() as u64).wrapping_add(rng.below(span)) as $t
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64_unit() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.f64_unit() as f32 * (self.end - self.start)
        }
    }

    /// String literals act as regex strategies, like upstream.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .expect("valid regex strategy literal")
                .generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the tests draw.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    macro_rules! arb_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }
    arb_tuple!(A);
    arb_tuple!(A, B);
    arb_tuple!(A, B, C);
    arb_tuple!(A, B, C, D);

    /// The `any::<T>()` strategy.
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size interval for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { min: r.start, max: r.end.saturating_sub(1).max(r.start) }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: (*r.end()).max(*r.start()) }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// The `prop::collection::vec(element, size)` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod num {
    //! Numeric special-value strategies.

    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Generates normal (non-zero, non-subnormal, finite) `f64` values
        /// across the whole exponent range, like upstream's `f64::NORMAL`.
        #[derive(Clone, Copy, Debug)]
        pub struct NormalF64;

        /// The normal-floats strategy instance.
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                let sign = rng.next_u64() & (1 << 63);
                // Biased exponent in [1, 2046]: excludes subnormals (0) and
                // infinities / NaNs (2047).
                let exp = 1 + rng.below(2046);
                let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
                f64::from_bits(sign | (exp << 52) | mantissa)
            }
        }
    }
}

pub mod string {
    //! `string_regex`: generation for simple character-class patterns.
    //!
    //! Supports exactly the shape the test suite uses: a concatenation of
    //! atoms, where an atom is a literal character, an escaped character, or
    //! a `[...]` class of literals and `a-z` ranges, optionally followed by a
    //! `{m}` / `{m,n}` repetition.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// One parsed atom: the candidate characters and its repetition bounds.
    #[derive(Clone, Debug)]
    struct Atom {
        chars: Vec<char>,
        min: u32,
        max: u32,
    }

    /// A compiled pattern.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for a in &self.atoms {
                let n = a.min + rng.below((a.max - a.min) as u64 + 1) as u32;
                for _ in 0..n {
                    out.push(a.chars[rng.below(a.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// Compiles `pattern` into a string-generation strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| format!("unclosed class in {pattern:?}"))?
                        + i;
                    let set = parse_class(&chars[i + 1..close])?;
                    i = close + 1;
                    set
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .ok_or_else(|| format!("dangling escape in {pattern:?}"))?;
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| format!("unclosed repetition in {pattern:?}"))?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().map_err(|e| format!("bad repetition: {e}"))?,
                        hi.parse().map_err(|e| format!("bad repetition: {e}"))?,
                    ),
                    None => {
                        let n = body.parse().map_err(|e| format!("bad repetition: {e}"))?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { chars: set, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn parse_class(body: &[char]) -> Result<Vec<char>, String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                if lo > hi {
                    return Err(format!("inverted range {lo}-{hi}"));
                }
                for c in lo..=hi {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        if out.is_empty() {
            return Err("empty character class".to_owned());
        }
        Ok(out)
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop::` module alias (`prop::collection::vec`, `prop::num::...`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::string;
    }
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal test that draws `cases` inputs (default 256, or
/// `#![proptest_config(...)]`) and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]: expands one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} == {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// A weighted (or unweighted) union of strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_are_in_bounds() {
        let mut rng = TestRng::deterministic("shim");
        for _ in 0..1000 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_regex_generates_matching_strings() {
        let mut rng = TestRng::deterministic("regex");
        let s = crate::string::string_regex("[a-zA-Z_][a-zA-Z0-9_./-]{0,15}").unwrap();
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 16);
            let first = v.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
        }
        let printable = crate::string::string_regex("[ -~]{0,24}").unwrap();
        for _ in 0..200 {
            let v = printable.generate(&mut rng);
            assert!(v.len() <= 24);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn normal_floats_are_normal() {
        let mut rng = TestRng::deterministic("norm");
        for _ in 0..1000 {
            let f = crate::num::f64::NORMAL.generate(&mut rng);
            assert!(f.is_normal(), "{f}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn shim_macro_works(a in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(a, 3u32, "rejected above");
        }
    }
}
