//! Offline micro-benchmark shim.
//!
//! The workspace builds in hermetic environments with no crates-io mirror, so
//! this crate provides the subset of the `criterion` 0.5 API the bench
//! targets use: `Criterion`, benchmark groups, `Bencher::iter` /
//! `iter_with_setup`, `BenchmarkId`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros. Timing is a plain wall-clock loop (short
//! warm-up, then enough iterations to cover a small measurement window) and
//! results are printed as `ns/iter` lines — no statistics, plots, or saved
//! baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (`group/function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter*`.
    ns_per_iter: f64,
}

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `f` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration estimate.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `f` in a loop, rebuilding its input with `setup` outside the
    /// timed region.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(f(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            total += t.elapsed();
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, like upstream.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints nothing; report lines are emitted as benches run.
    pub fn final_summary(self) {}

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_owned() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) the sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    println!("bench {label:<48} {:>14.1} ns/iter", b.ns_per_iter);
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for harness-less bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("setup", |b| b.iter_with_setup(|| vec![1u8; 16], |v| v.len()));
        g.finish();
    }
}
