//! Replays the full five-minute evaluation workload — 1708 requests to 42
//! edge services (the paper's filtered bigFlows trace) — against the
//! transparent edge with on-demand deployment, and prints the aggregate
//! behaviour: deployments, memory hits, fast-path share, latency percentiles.
//!
//! ```text
//! cargo run --release --example trace_replay [docker|k8s] [seed]
//! ```

use desim::{Duration, SimTime, Summary};
use edgectl::controller::RequestKind;
use edgectl::ControllerConfig;
use transparent_edge::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let kind = match args.next().as_deref() {
        Some("k8s") => ClusterKind::K8s,
        _ => ClusterKind::Docker,
    };
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let trace = Trace::generate(TraceConfig::default(), seed);
    println!(
        "trace: {} requests to {} services over {}s (peak {} deployments/s)",
        trace.requests.len(),
        trace.config.n_services,
        trace.config.duration.as_secs_f64(),
        trace.deployments_per_second().iter().max().unwrap()
    );

    let mut tb = Testbed::new(TestbedConfig {
        cluster: kind,
        seed,
        controller: ControllerConfig {
            memory_idle: Duration::from_secs(400),
            ..ControllerConfig::default()
        },
        ..TestbedConfig::default()
    });
    let profile = ServiceSet::by_key("nginx").unwrap();
    let mut addrs = Vec::new();
    for i in 0..trace.config.n_services {
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, (i + 1) as u8), 80);
        tb.register_service(profile.clone(), addr);
        tb.pre_pull(addr);
        tb.pre_create(addr);
        addrs.push(addr);
    }
    for r in &trace.requests {
        tb.request_at(r.at + Duration::from_secs(1), r.client, addrs[r.service]);
    }
    println!("replaying on {}...", kind.label());
    let events = tb.run_until(SimTime::from_secs(400));

    // Split first (deployment) requests from warm ones.
    let mut seen = std::collections::HashSet::new();
    let mut firsts = Vec::new();
    let mut warm = Vec::new();
    for c in &tb.completed {
        let t = c.timing.time_total().unwrap().as_secs_f64();
        if seen.insert(c.service) {
            firsts.push(t);
        } else {
            warm.push(t);
        }
    }
    let deployments = tb
        .controller
        .records
        .iter()
        .filter(|r| r.kind == RequestKind::Waited)
        .count();
    let hits = tb
        .controller
        .records
        .iter()
        .filter(|r| r.kind == RequestKind::MemoryHit)
        .count();

    println!("\n--- results ({} simulated events) ---", events);
    println!("completed requests:     {}", tb.completed.len());
    println!("on-demand deployments:  {}", firsts.len());
    println!("dispatches that waited: {deployments}");
    println!("FlowMemory hits:        {hits}");
    println!(
        "switch fast path:       {} packets ({} table misses)",
        tb.switch().fast_path_packets,
        tb.switch().table_misses
    );
    println!(
        "resets / violations:    {} / {}",
        tb.resets, tb.transparency_violations
    );

    let f = Summary::new(firsts);
    let w = Summary::new(warm);
    println!("\nfirst-request (deployment) time_total [s]:");
    println!(
        "  median {:.3}   p90 {:.3}   min {:.3}   max {:.3}",
        f.median().unwrap(),
        f.percentile(90.0).unwrap(),
        f.min().unwrap(),
        f.max().unwrap()
    );
    println!("warm-request time_total [s]:");
    println!(
        "  median {:.4}   p90 {:.4}   p99 {:.4}   n={}",
        w.median().unwrap(),
        w.percentile(90.0).unwrap(),
        w.percentile(99.0).unwrap(),
        w.len()
    );
    assert_eq!(tb.resets, 0);
    assert_eq!(tb.transparency_violations, 0);
}
