//! User mobility across a multi-gNB RAN with transparent flow handover.
//!
//! Three gNB ingress switches, each fronting its own near-edge zone, one
//! controller managing them all. A client walks gNB 0 → 1 → 2 while pinging
//! an edge service over a single long-lived TCP session. On every move the
//! controller re-keys the client's FlowMemory entries and installs rewrite
//! flows at the new switch *before* tearing down the old ones
//! (make-before-break), so the session never notices.
//!
//! Both handover policies run side by side: **anchored** keeps the session
//! on the zone it started at (reached across the metro link after the move);
//! **re-dispatch** asks the Global Scheduler for the new nearest edge,
//! re-using the on-demand deployment pipeline.
//!
//! ```text
//! cargo run --release --example mobility
//! ```

use transparent_edge::desim::{SimTime, Summary};
use transparent_edge::edgectl::HandoverPolicy;
use transparent_edge::mobility::CellHops;
use transparent_edge::prelude::*;
use transparent_edge::testbed::{MobilityConfig, MobilityTestbed};

fn walk(policy: HandoverPolicy) -> MobilityTestbed {
    let mut tb = MobilityTestbed::new(MobilityConfig {
        n_gnbs: 3,
        n_clients: 1,
        policy,
        seed: 42,
        ..MobilityConfig::default()
    });
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    tb.register_service(ServiceSet::by_key("asm").unwrap(), addr);
    tb.warm_all_zones(); // images cached everywhere
    tb.pre_deploy_on(0); // the session's home zone starts warm

    // The client crosses a cell boundary at t=6s and again at t=12s.
    let mut model = CellHops::new(
        vec![0],
        &[
            (SimTime::from_secs(6), 0, 1),
            (SimTime::from_secs(12), 0, 2),
        ],
    );
    tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
    tb
}

fn main() {
    println!("policy      handovers  migrated  redispatched  pings  answered  mean-rtt-tail");
    for policy in [HandoverPolicy::Anchored, HandoverPolicy::Redispatch] {
        let tb = walk(policy);
        assert_eq!(tb.pings_sent(), tb.pings_done(), "session continuity");
        assert_eq!(tb.drops + tb.double_answered + tb.transparency_violations, 0);
        let rtts = tb.rtts_secs();
        let tail = Summary::new(rtts[rtts.len().saturating_sub(10)..].to_vec());
        println!(
            "{:<12}{:>9}  {:>8}  {:>12}  {:>5}  {:>8}  {:>10.2} ms",
            policy.label(),
            tb.handovers.len(),
            tb.handovers.iter().map(|h| h.flows_migrated).sum::<usize>(),
            tb.handovers.iter().map(|h| h.redispatched).sum::<usize>(),
            tb.pings_sent(),
            tb.pings_done(),
            tail.mean().unwrap_or(0.0) * 1e3,
        );
    }
    println!("\nEvery ping answered under both policies; after the walk the anchored");
    println!("session pays the metro link on every round trip, the re-dispatched one");
    println!("is served by the local zone again.");
}
