//! Plugging in a custom Global Scheduler.
//!
//! The controller's scheduler is a trait object loaded from configuration
//! (Section IV-B). This example implements a *cache-aware* scheduler — only
//! deploy where the image is already cached, otherwise answer from the cloud
//! while the pull proceeds in the background — and drives the low-level
//! controller API directly (no testbed harness), exchanging real OpenFlow
//! bytes with a virtual switch.
//!
//! ```text
//! cargo run --release --example custom_scheduler
//! ```

use desim::{Duration, SimRng, SimTime};
use std::collections::HashMap;
use transparent_edge::prelude::*;
use edgectl::{Choice, SchedulingContext, Target};

/// Deploy only where images are cached; otherwise answer from the cloud and
/// warm the nearest cluster in the background.
struct CacheAwareScheduler;

impl GlobalScheduler for CacheAwareScheduler {
    fn name(&self) -> &str {
        "cache-aware"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        let clusters = ctx.clusters;
        let ready = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state.is_ready())
            .min_by_key(|(_, c)| c.distance)
            .map(|(i, _)| i);
        if let Some(i) = ready {
            return Choice { fast: Some(Target::sole(i)), best: None };
        }
        let cached = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.image_cached)
            .min_by_key(|(_, c)| c.distance)
            .map(|(i, _)| i);
        match cached {
            // Cached nearby: deploy with waiting, it is fast.
            Some(i) => Choice { fast: Some(Target::sole(i)), best: None },
            // Cold everywhere: cloud now, warm the nearest in the background.
            None => Choice {
                fast: None,
                best: clusters
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| c.distance)
                    .map(|(i, _)| Target::sole(i)),
            },
        }
    }
}

fn main() {
    use dockersim::DockerEngine;
    use edgectl::DockerCluster;
    use netsim::TcpFrame;
    use ovs::{Effect, Switch, SwitchConfig};

    let mut rng = SimRng::new(3);

    // One Docker cluster, nothing cached yet.
    let cluster = DockerCluster::new(
        "edge-docker",
        DockerEngine::with_defaults(),
        MacAddr::from_id(200),
        Ipv4Addr::new(10, 0, 0, 10),
        Duration::from_micros(100),
    );
    let mut ctl = Controller::new(
        Box::new(CacheAwareScheduler),
        PortMap {
            cluster_ports: HashMap::new(),
            cloud_port: 3,
        },
        ControllerConfig::default(),
    );
    ctl.add_cluster(Box::new(cluster), 2);

    // Register the asm service from its YAML definition.
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    let profile = ServiceSet::by_key("asm").unwrap();
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - name: web\n          image: {}\n          ports:\n            - containerPort: 80\n",
        profile.manifests[0].reference
    );
    let annotated = annotate_deployment(&yaml, addr, None).unwrap();
    ctl.register_service(EdgeService {
        addr,
        name: annotated.service_name.clone(),
        annotated,
        profile,
    });

    let mut sw = Switch::new(SwitchConfig {
        datapath_id: 1,
        n_buffers: 64,
        miss_send_len: 0xffff,
        ports: vec![1, 2, 3],
    });

    let mut send_request = |ctl: &mut Controller, sw: &mut Switch, t: SimTime, src_port: u16| {
        let syn = TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(99),
            Ipv4Addr::new(192, 168, 1, 20),
            src_port,
            addr,
        );
        let effects = sw.handle_frame(t, 1, &syn.encode());
        let Effect::ToController(pkt_in) = &effects[0] else {
            panic!("expected packet-in");
        };
        let out = ctl.handle_switch_message(t, pkt_in, &mut rng).unwrap();
        for m in &out {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
    };

    // Request 1: image cold → cloud + background pull/deploy.
    send_request(&mut ctl, &mut sw, SimTime::from_secs(1), 50000);
    // Request 2: after the background deployment finished → edge.
    send_request(&mut ctl, &mut sw, SimTime::from_secs(20), 50001);

    println!("cache-aware scheduler decisions:\n");
    for rec in &ctl.records {
        println!(
            "t={:6.3}s  {:?}  (background deploy ready: {})",
            rec.at.as_secs_f64(),
            rec.kind,
            rec.background_ready
                .map(|t| format!("t={:.3}s", t.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
        );
    }
    use edgectl::controller::RequestKind;
    assert_eq!(ctl.records[0].kind, RequestKind::Cloud);
    assert_eq!(ctl.records[1].kind, RequestKind::Redirect);
    println!("\ncold request went to the cloud; the edge answered once warmed.");
}
