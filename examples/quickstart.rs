//! Quickstart: one registered edge service, one client request, deployed on
//! demand — the whole transparent-access pipeline in ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use transparent_edge::prelude::*;

fn main() {
    // The emulated evaluation testbed (Fig. 8 of the paper): 20 Raspberry Pi
    // clients, a virtual OVS switch, the SDN controller, a Docker cluster on
    // the Edge Gateway Server, and a WAN link to the cloud.
    let mut tb = Testbed::new(TestbedConfig::default());

    // Register the nginx service under its *cloud* address. Clients only
    // ever see this address — redirection to the edge is transparent.
    let cloud_addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    let svc = tb.register_service(ServiceSet::by_key("nginx").unwrap(), cloud_addr);
    println!("registered `{}` at cloud address {cloud_addr}", svc.name);
    println!("annotated service definition:\n{}", svc.annotated.to_yaml());

    // Cache the image and create the containers ahead of time — the paper's
    // Fig. 11 scenario, where only Scale Up happens on demand.
    tb.pre_pull(cloud_addr);
    tb.pre_create(cloud_addr);

    // Client 0 sends an HTTP request to the cloud address at t = 1 s. There
    // is no running instance anywhere: the controller holds the request,
    // scales the service up (on-demand deployment *with waiting*), polls the
    // port, installs the rewrite flows, and releases the buffered packet.
    tb.request_at(SimTime::from_secs(1), 0, cloud_addr);

    // A second connection moments later rides the FlowMemory.
    tb.request_at(SimTime::from_secs(5), 1, cloud_addr);

    tb.run_until(SimTime::from_secs(30));

    println!("--- results ---");
    for (i, done) in tb.completed.iter().enumerate() {
        println!(
            "request #{i} (client {}): time_total = {}  (connect {}, first byte {})",
            done.client,
            done.timing.time_total().unwrap(),
            done.timing.time_connect().unwrap(),
            done.timing.time_starttransfer().unwrap(),
        );
    }
    for rec in &tb.controller.records {
        println!(
            "controller: {:?} request for {} answered after {}",
            rec.kind,
            rec.service,
            rec.answered_at.saturating_since(rec.at),
        );
        if let Some(wait) = rec.phases.wait_time() {
            println!("            readiness wait (port polling): {wait}");
        }
    }
    println!(
        "switch: {} table miss(es), {} fast-path packet(s); transparency violations: {}",
        tb.switch().table_misses,
        tb.switch().fast_path_packets,
        tb.transparency_violations,
    );

    let first = tb.completed[0].timing.time_total().unwrap();
    assert!(first < desim::Duration::from_secs(1));
    println!("\nfirst request served in {first} — on-demand deployment, under a second.");
}
