//! Image-classification offloading — the paper's motivating IoT scenario.
//!
//! A camera-equipped device sends pictures (83 KiB POSTs) to a TensorFlow
//! Serving/ResNet50 service. Inference at the edge saves WAN bandwidth and
//! latency, but the model takes seconds to load, so the first request is the
//! interesting one. This example compares the two on-demand deployment
//! strategies of Section IV:
//!
//! * **with waiting** (`proximity` scheduler): the first request is held
//!   until the nearby instance is up;
//! * **without waiting** (`latency-aware` scheduler): the first request is
//!   answered by the cloud immediately while the edge deploys in parallel,
//!   and later requests move to the edge.
//!
//! ```text
//! cargo run --release --example image_offloading
//! ```

use transparent_edge::prelude::*;

fn run(scheduler: &str) -> (Vec<f64>, u64) {
    let mut tb = Testbed::new(TestbedConfig {
        scheduler: scheduler.to_owned(),
        seed: 42,
        ..TestbedConfig::default()
    });
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 11), 8501);
    tb.register_service(ServiceSet::by_key("resnet").unwrap(), addr);
    tb.pre_pull(addr);
    tb.pre_create(addr);

    // The device classifies a burst of frames, one every two seconds.
    for i in 0..8u64 {
        tb.request_at(SimTime::from_secs(1 + 2 * i), 0, addr);
    }
    tb.run_until(SimTime::from_secs(120));

    let mut totals: Vec<(SimTime, f64)> = tb
        .completed
        .iter()
        .map(|c| {
            (
                c.timing.connect_start,
                c.timing.time_total().unwrap().as_secs_f64(),
            )
        })
        .collect();
    totals.sort_by_key(|(t, _)| *t);
    (
        totals.into_iter().map(|(_, v)| v).collect(),
        tb.transparency_violations,
    )
}

fn main() {
    println!("ResNet50 inference offloading — per-request time_total [s]\n");
    println!("{:>4}  {:>14}  {:>17}", "req", "with waiting", "without waiting");
    let (with_wait, v1) = run("proximity");
    let (without_wait, v2) = run("latency-aware");
    for i in 0..with_wait.len().max(without_wait.len()) {
        let a = with_wait.get(i).map(|v| format!("{v:14.3}")).unwrap_or_default();
        let b = without_wait.get(i).map(|v| format!("{v:17.3}")).unwrap_or_default();
        println!("{:>4}  {}  {}", i + 1, a, b);
    }
    assert_eq!(v1 + v2, 0, "clients never see the edge");

    println!();
    println!(
        "with waiting:    first request pays the model load ({:.2} s), everything after is edge-fast",
        with_wait[0]
    );
    println!(
        "without waiting: first request(s) go to the cloud ({:.2} s incl. WAN + inference),",
        without_wait[0]
    );
    println!("                 and migrate to the edge once the instance is ready.");

    // The steady state is identical and fast in both strategies.
    let steady_a = with_wait.last().unwrap();
    let steady_b = without_wait.last().unwrap();
    println!(
        "steady state:    {steady_a:.3} s (with) vs {steady_b:.3} s (without) — the edge serving inference"
    );
}
