//! Driving the whole platform from a configuration file — the way the
//! reference controller is operated: schedulers are loaded dynamically by
//! name, timeouts and clusters come from config, services from YAML
//! definition files.
//!
//! ```text
//! cargo run --release --example config_file
//! ```

use edgectl::EdgeConfig;
use transparent_edge::prelude::*;

const CONFIG: &str = "
# transparent-edge controller configuration
scheduler: docker-first
predictor: recency
flowIdleTimeout: 10
memoryIdleTimeout: 90
pollIntervalMs: 25
scaleDownIdle: true
clusters:
  - name: egs-docker
    kind: docker
  - name: egs-k8s
    kind: k8s
    localScheduler: edge-pack-scheduler
";

const SERVICE_DEFINITION: &str = "
# The developer writes this; everything else is annotated automatically.
spec:
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 80
";

fn main() {
    let cfg = EdgeConfig::from_yaml(CONFIG).expect("valid config");
    println!(
        "loaded config: scheduler={}, predictor={}, {} cluster(s)",
        cfg.scheduler,
        cfg.predictor,
        cfg.clusters.len()
    );

    let mut tb = Testbed::from_edge_config(&cfg, 7);

    // Register the service from its definition file.
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    let annotated = annotate_deployment(
        SERVICE_DEFINITION,
        addr,
        cfg.clusters
            .iter()
            .find_map(|c| c.local_scheduler.as_deref()),
    )
    .expect("valid definition");
    println!(
        "service `{}` annotated (labels: {})\n",
        annotated.service_name, annotated.edge_label
    );
    tb.register_service(ServiceSet::by_key("nginx").unwrap(), addr);
    tb.pre_pull(addr);
    tb.pre_create(addr);
    if tb.controller.cluster_count() > 1 {
        tb.pre_pull_on(addr, 1);
    }

    for (i, t) in [1u64, 10, 20, 30].iter().enumerate() {
        tb.request_at(SimTime::from_secs(*t), i, addr);
    }
    tb.run_until(SimTime::from_secs(120));

    for rec in &tb.controller.records {
        let cluster = rec
            .cluster
            .map(|i| tb.controller.cluster(i).name().to_owned())
            .unwrap_or_else(|| "cloud".into());
        println!(
            "t={:6.3}s  {:?}  via {}",
            rec.at.as_secs_f64(),
            rec.kind,
            cluster
        );
    }
    println!(
        "\n{} requests completed, {} proactive deployments, transparency violations: {}",
        tb.completed.len(),
        tb.proactive_deployments,
        tb.transparency_violations
    );
    assert_eq!(tb.completed.len(), 4);
}
