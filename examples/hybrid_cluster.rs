//! The Section VII hybrid: "we can combine the best of both worlds. First,
//! we launch an edge service via Docker to respond faster to the initial
//! request. Then, we deploy the same service to Kubernetes for future
//! requests."
//!
//! One controller drives two clusters on the Edge Gateway Server through the
//! `docker-first` Global Scheduler: the first request is answered at Docker
//! speed while Kubernetes deploys in the background; once the pod is ready,
//! fresh clients are served by Kubernetes.
//!
//! ```text
//! cargo run --release --example hybrid_cluster
//! ```

use transparent_edge::prelude::*;

fn main() {
    let mut tb = Testbed::new(TestbedConfig {
        cluster: ClusterKind::Docker,
        scheduler: "docker-first".to_owned(),
        seed: 11,
        ..TestbedConfig::default()
    });
    tb.add_hybrid_k8s(); // the second cluster

    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    tb.register_service(ServiceSet::by_key("nginx").unwrap(), addr);
    tb.pre_pull(addr); // Docker cluster
    tb.pre_create(addr);
    tb.pre_pull_on(addr, 1); // K8s cluster

    // Client 0 triggers the on-demand deployment; clients 1..4 arrive later.
    tb.request_at(SimTime::from_secs(1), 0, addr);
    for (i, t) in [10u64, 20, 30].iter().enumerate() {
        tb.request_at(SimTime::from_secs(*t), i + 1, addr);
    }
    tb.run_until(SimTime::from_secs(90));

    println!("hybrid Docker-first + Kubernetes-later\n");
    for rec in &tb.controller.records {
        let served_by = rec
            .cluster
            .map(|i| tb.controller.cluster(i).name().to_owned())
            .unwrap_or_else(|| "cloud".into());
        println!(
            "t={:7.3}s  client {:15}  {:10?}  served by {:10}  answered after {}",
            rec.at.as_secs_f64(),
            rec.client.to_string(),
            rec.kind,
            served_by,
            rec.answered_at.saturating_since(rec.at),
        );
        if let Some(bg) = rec.background_ready {
            println!(
                "            └─ background K8s deployment ready at t={:.3}s",
                bg.as_secs_f64()
            );
        }
    }
    println!();
    for done in &tb.completed {
        println!(
            "client {}: time_total = {}",
            done.client,
            done.timing.time_total().unwrap()
        );
    }

    // The first answer is Docker-fast; the last client is on Kubernetes.
    let first = tb.completed.iter().find(|c| c.client == 0).unwrap();
    assert!(first.timing.time_total().unwrap() < desim::Duration::from_secs(1));
    let last_cluster = tb
        .controller
        .records
        .last()
        .and_then(|r| r.cluster)
        .map(|i| tb.controller.cluster(i).name().to_owned());
    println!(
        "\nfirst answer {} (Docker), steady state on {}",
        first.timing.time_total().unwrap(),
        last_cluster.as_deref().unwrap_or("?")
    );
}
