//! `mobility` — deterministic, seedable user-mobility models.
//!
//! The paper places the transparent redirect at "the gNB in 5G terms": the
//! ingress OpenFlow switch is a cell. A moving user detaches from one cell
//! and attaches to another, and the controller must hand its session over.
//! This crate provides the *movement* half of that scenario: a
//! [`MobilityModel`] assigns every workload client an initial cell and emits
//! a timed, ordered stream of [`AttachmentEvent`]s over a simulation
//! horizon. Models are pure functions of their seed — the same seed always
//! produces the byte-identical event stream, which keeps every figure built
//! on top reproducible.
//!
//! Three models mirror the standard mobility literature:
//!
//! * [`Static`] — nobody moves (the degenerate model; with it, a multi-cell
//!   run must behave exactly like the single-ingress testbed);
//! * [`RandomWaypoint`] — the classic random-waypoint walk over a
//!   rectangular [`CellGrid`]: pick a waypoint, walk to it at constant
//!   speed, pause, repeat; the attachment is the cell the position falls in;
//! * [`CellHops`] — trace-driven: an explicit list of `(time, client, cell)`
//!   hops, parseable from a tiny text format for replaying recorded traces.

#![warn(missing_docs)]

use desim::{Duration, SimRng, SimTime};

/// A rectangular grid of cells; cell ids are `row * cols + col`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellGrid {
    /// Number of columns.
    pub cols: u32,
    /// Number of rows.
    pub rows: u32,
    /// Edge length of one (square) cell in metres.
    pub cell_size_m: f64,
}

impl CellGrid {
    /// A `cols x rows` grid of square cells of `cell_size_m` metres.
    pub fn new(cols: u32, rows: u32, cell_size_m: f64) -> CellGrid {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        assert!(cell_size_m > 0.0, "cells must have positive size");
        CellGrid { cols, rows, cell_size_m }
    }

    /// Total number of cells.
    pub fn n_cells(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// Field width in metres.
    pub fn width_m(&self) -> f64 {
        f64::from(self.cols) * self.cell_size_m
    }

    /// Field height in metres.
    pub fn height_m(&self) -> f64 {
        f64::from(self.rows) * self.cell_size_m
    }

    /// The cell containing position `(x, y)` (metres, clamped to the field).
    pub fn cell_at(&self, x: f64, y: f64) -> usize {
        let col = ((x / self.cell_size_m) as i64).clamp(0, i64::from(self.cols) - 1) as u32;
        let row = ((y / self.cell_size_m) as i64).clamp(0, i64::from(self.rows) - 1) as u32;
        (row * self.cols + col) as usize
    }

    /// Centre of `cell` in metres.
    pub fn center_of(&self, cell: usize) -> (f64, f64) {
        let cell = cell as u32;
        let col = cell % self.cols;
        let row = cell / self.cols;
        (
            (f64::from(col) + 0.5) * self.cell_size_m,
            (f64::from(row) + 0.5) * self.cell_size_m,
        )
    }
}

/// One attachment change: `client` detaches from `from_cell` and attaches
/// to `to_cell` at instant `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttachmentEvent {
    /// When the change happens.
    pub at: SimTime,
    /// Workload client index.
    pub client: usize,
    /// Cell the client detaches from.
    pub from_cell: usize,
    /// Cell the client attaches to.
    pub to_cell: usize,
}

/// A mobility model: initial attachments plus a deterministic event stream.
pub trait MobilityModel {
    /// Model name (figure labels).
    fn name(&self) -> &str;

    /// Number of clients this model moves.
    fn n_clients(&self) -> usize;

    /// The cell `client` starts attached to.
    fn initial_cell(&self, client: usize) -> usize;

    /// All attachment changes within `[0, horizon)`, sorted by
    /// `(at, client)`. Calling twice on the same model yields the identical
    /// stream (models pre-compute or derive from an owned seeded RNG that is
    /// re-seeded per call).
    fn events(&mut self, horizon: Duration) -> Vec<AttachmentEvent>;
}

/// The degenerate model: every client stays on its initial cell forever.
pub struct Static {
    homes: Vec<usize>,
}

impl Static {
    /// Clients `i` pinned to `homes[i]`.
    pub fn new(homes: Vec<usize>) -> Static {
        Static { homes }
    }

    /// `n_clients` spread round-robin over `n_cells` (deterministic).
    pub fn round_robin(n_clients: usize, n_cells: usize) -> Static {
        assert!(n_cells > 0);
        Static {
            homes: (0..n_clients).map(|i| i % n_cells).collect(),
        }
    }
}

impl MobilityModel for Static {
    fn name(&self) -> &str {
        "static"
    }

    fn n_clients(&self) -> usize {
        self.homes.len()
    }

    fn initial_cell(&self, client: usize) -> usize {
        self.homes[client]
    }

    fn events(&mut self, _horizon: Duration) -> Vec<AttachmentEvent> {
        Vec::new()
    }
}

/// Classic random waypoint over a [`CellGrid`]: each client starts at the
/// centre of a seed-chosen cell, repeatedly picks a uniform waypoint in the
/// field, walks there at a uniform-chosen speed, pauses, and repeats. An
/// [`AttachmentEvent`] is emitted whenever the walk crosses a cell border.
pub struct RandomWaypoint {
    grid: CellGrid,
    n_clients: usize,
    seed: u64,
    /// Walking speed range in m/s (uniform per leg).
    speed_mps: (f64, f64),
    /// Pause at each waypoint in seconds (uniform).
    pause_s: (f64, f64),
    initial: Vec<usize>,
}

impl RandomWaypoint {
    /// A seeded random-waypoint model. Speeds default to a brisk vehicular
    /// 8–14 m/s and pauses to 2–10 s; override with [`Self::with_speed`].
    pub fn new(grid: CellGrid, n_clients: usize, seed: u64) -> RandomWaypoint {
        let mut rng = SimRng::new(seed ^ 0x6d6f_6269); // "mobi"
        let initial = (0..n_clients)
            .map(|_| rng.below(grid.n_cells() as u64) as usize)
            .collect();
        RandomWaypoint {
            grid,
            n_clients,
            seed,
            speed_mps: (8.0, 14.0),
            pause_s: (2.0, 10.0),
            initial,
        }
    }

    /// Overrides the leg-speed range (m/s).
    pub fn with_speed(mut self, lo: f64, hi: f64) -> RandomWaypoint {
        assert!(lo > 0.0 && hi >= lo);
        self.speed_mps = (lo, hi);
        self
    }

    fn uniform(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
        lo + rng.next_f64() * (hi - lo)
    }

    /// Walks one client, pushing its border crossings into `out`.
    fn walk_client(&self, client: usize, horizon: Duration, out: &mut Vec<AttachmentEvent>) {
        // Per-client stream: independent of every other client and of how
        // many events other clients generate.
        let mut rng = SimRng::new(self.seed ^ 0x7761_7970 ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (mut x, mut y) = self.grid.center_of(self.initial[client]);
        let mut cell = self.initial[client];
        let mut t = 0.0f64;
        let horizon_s = horizon.as_nanos() as f64 / 1e9;
        while t < horizon_s {
            let wx = Self::uniform(&mut rng, 0.0, self.grid.width_m());
            let wy = Self::uniform(&mut rng, 0.0, self.grid.height_m());
            let speed = Self::uniform(&mut rng, self.speed_mps.0, self.speed_mps.1);
            let (dx, dy) = (wx - x, wy - y);
            let dist = (dx * dx + dy * dy).sqrt();
            let leg_s = dist / speed;
            // Sample the leg finely enough that no cell can be skipped:
            // one step per quarter cell of travel.
            let steps = ((dist / (self.grid.cell_size_m * 0.25)).ceil() as usize).max(1);
            for s in 1..=steps {
                let frac = s as f64 / steps as f64;
                let (px, py) = (x + dx * frac, y + dy * frac);
                let at_s = t + leg_s * frac;
                if at_s >= horizon_s {
                    return;
                }
                let c = self.grid.cell_at(px, py);
                if c != cell {
                    out.push(AttachmentEvent {
                        at: SimTime::from_nanos((at_s * 1e9) as u64),
                        client,
                        from_cell: cell,
                        to_cell: c,
                    });
                    cell = c;
                }
            }
            x = wx;
            y = wy;
            t += leg_s + Self::uniform(&mut rng, self.pause_s.0, self.pause_s.1);
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn name(&self) -> &str {
        "random-waypoint"
    }

    fn n_clients(&self) -> usize {
        self.n_clients
    }

    fn initial_cell(&self, client: usize) -> usize {
        self.initial[client]
    }

    fn events(&mut self, horizon: Duration) -> Vec<AttachmentEvent> {
        let mut out = Vec::new();
        for client in 0..self.n_clients {
            self.walk_client(client, horizon, &mut out);
        }
        out.sort_by_key(|e| (e.at, e.client));
        out
    }
}

/// Trace-driven mobility: an explicit hop list.
pub struct CellHops {
    initial: Vec<usize>,
    hops: Vec<AttachmentEvent>,
}

impl CellHops {
    /// Builds a trace from initial attachments and `(at, client, to_cell)`
    /// hops. `from_cell` is derived by replaying the trace in time order.
    ///
    /// # Panics
    /// Panics if a hop names an unknown client.
    pub fn new(initial: Vec<usize>, hops: &[(SimTime, usize, usize)]) -> CellHops {
        let mut sorted: Vec<(SimTime, usize, usize)> = hops.to_vec();
        sorted.sort_by_key(|&(at, client, _)| (at, client));
        let mut current = initial.clone();
        let hops = sorted
            .into_iter()
            .map(|(at, client, to_cell)| {
                assert!(client < current.len(), "hop for unknown client {client}");
                let from_cell = current[client];
                current[client] = to_cell;
                AttachmentEvent { at, client, from_cell, to_cell }
            })
            .collect();
        CellHops { initial, hops }
    }

    /// Parses the trace text format: one `initial <cell> <cell> ...` line
    /// (one cell per client), then `hop <at_secs> <client> <to_cell>` lines.
    /// Blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<CellHops, String> {
        let mut initial: Option<Vec<usize>> = None;
        let mut hops: Vec<(SimTime, usize, usize)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("initial") => {
                    let cells: Result<Vec<usize>, _> = parts.map(str::parse).collect();
                    initial = Some(cells.map_err(|e| format!("line {}: {e}", lineno + 1))?);
                }
                Some("hop") => {
                    let mut field = |name: &str| {
                        parts
                            .next()
                            .ok_or_else(|| format!("line {}: missing {name}", lineno + 1))
                    };
                    let at: f64 = field("at")?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    let client: usize = field("client")?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    let cell: usize = field("cell")?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    hops.push((SimTime::from_nanos((at * 1e9) as u64), client, cell));
                }
                Some(other) => return Err(format!("line {}: unknown directive `{other}`", lineno + 1)),
                None => unreachable!("empty lines are skipped"),
            }
        }
        let initial = initial.ok_or_else(|| "missing `initial` line".to_owned())?;
        if let Some(&(_, client, _)) = hops.iter().find(|&&(_, c, _)| c >= initial.len()) {
            return Err(format!("hop for unknown client {client}"));
        }
        Ok(CellHops::new(initial, &hops))
    }
}

impl MobilityModel for CellHops {
    fn name(&self) -> &str {
        "cell-hops"
    }

    fn n_clients(&self) -> usize {
        self.initial.len()
    }

    fn initial_cell(&self, client: usize) -> usize {
        self.initial[client]
    }

    fn events(&mut self, horizon: Duration) -> Vec<AttachmentEvent> {
        let end = SimTime::ZERO + horizon;
        self.hops.iter().copied().filter(|e| e.at < end).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry() {
        let g = CellGrid::new(3, 2, 100.0);
        assert_eq!(g.n_cells(), 6);
        assert_eq!(g.width_m(), 300.0);
        assert_eq!(g.height_m(), 200.0);
        assert_eq!(g.cell_at(50.0, 50.0), 0);
        assert_eq!(g.cell_at(250.0, 150.0), 5);
        // Clamped at the borders.
        assert_eq!(g.cell_at(-1.0, -1.0), 0);
        assert_eq!(g.cell_at(1e9, 1e9), 5);
        assert_eq!(g.center_of(4), (150.0, 150.0));
    }

    #[test]
    fn static_never_moves() {
        let mut m = Static::round_robin(5, 3);
        assert_eq!(m.n_clients(), 5);
        assert_eq!(m.initial_cell(0), 0);
        assert_eq!(m.initial_cell(4), 1);
        assert!(m.events(Duration::from_secs(3600)).is_empty());
    }

    #[test]
    fn waypoint_is_deterministic_per_seed() {
        let grid = CellGrid::new(3, 3, 200.0);
        let mut a = RandomWaypoint::new(grid, 4, 42);
        let mut b = RandomWaypoint::new(grid, 4, 42);
        let ea = a.events(Duration::from_secs(300));
        let eb = b.events(Duration::from_secs(300));
        assert_eq!(ea, eb, "same seed, same stream");
        assert!(!ea.is_empty(), "vehicular speeds over 300 s must cross cells");
        let mut c = RandomWaypoint::new(grid, 4, 43);
        assert_ne!(ea, c.events(Duration::from_secs(300)), "seeds matter");
    }

    #[test]
    fn waypoint_events_are_sorted_chained_and_in_range() {
        let grid = CellGrid::new(4, 2, 150.0);
        let mut m = RandomWaypoint::new(grid, 3, 7);
        let horizon = Duration::from_secs(600);
        let events = m.events(horizon);
        let mut current: Vec<usize> = (0..3).map(|c| m.initial_cell(c)).collect();
        let mut last = SimTime::ZERO;
        for e in &events {
            assert!(e.at >= last, "sorted by time");
            assert!(e.at < SimTime::ZERO + horizon);
            assert!(e.to_cell < grid.n_cells());
            assert_eq!(e.from_cell, current[e.client], "hops chain per client");
            assert_ne!(e.from_cell, e.to_cell);
            current[e.client] = e.to_cell;
            last = e.at;
        }
    }

    #[test]
    fn cell_hops_replay_in_order() {
        let mut m = CellHops::new(
            vec![0, 1],
            &[
                (SimTime::from_secs(20), 0, 2),
                (SimTime::from_secs(5), 0, 1),
                (SimTime::from_secs(10), 1, 0),
            ],
        );
        let ev = m.events(Duration::from_secs(15));
        assert_eq!(ev.len(), 2, "horizon cuts the t=20 hop");
        assert_eq!(
            ev[0],
            AttachmentEvent { at: SimTime::from_secs(5), client: 0, from_cell: 0, to_cell: 1 }
        );
        assert_eq!(
            ev[1],
            AttachmentEvent { at: SimTime::from_secs(10), client: 1, from_cell: 1, to_cell: 0 }
        );
        // Repeated calls replay identically.
        assert_eq!(m.events(Duration::from_secs(15)), ev);
    }

    #[test]
    fn cell_hops_parse_round_trip() {
        let text = "# two clients\ninitial 0 1\nhop 5 0 1\nhop 10.5 1 0\n";
        let mut m = CellHops::parse(text).unwrap();
        assert_eq!(m.n_clients(), 2);
        assert_eq!(m.initial_cell(1), 1);
        let ev = m.events(Duration::from_secs(60));
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].at, SimTime::from_nanos(10_500_000_000));
        assert!(CellHops::parse("hop 1 0 1\n").is_err(), "initial required");
        assert!(CellHops::parse("initial 0\nhop 1 5 1\n").is_err(), "unknown client");
        assert!(CellHops::parse("initial 0\nwat\n").is_err(), "unknown directive");
    }
}
