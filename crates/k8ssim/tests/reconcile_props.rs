//! Property tests for the reconciliation engine: arbitrary apply/scale
//! sequences settle, events stay causally ordered, and the pod population
//! always converges to the declared replica counts.

use containerd::ContainerSpec;
use desim::{Duration, LogNormal, SimRng, SimTime};
use k8ssim::objects::{PodContainer, PodTemplate};
use k8ssim::{ClusterEvent, Deployment, K8sCluster, Service};
use proptest::prelude::*;
use registry::image::catalog;
use registry::ImageRef;
use std::collections::BTreeMap;

fn deployment(name: &str, replicas: u32) -> (Deployment, Service) {
    let sel: BTreeMap<String, String> = [("app".to_string(), name.to_string())].into();
    (
        Deployment {
            name: name.into(),
            labels: sel.clone(),
            replicas,
            selector: sel.clone(),
            template: PodTemplate {
                labels: sel.clone(),
                containers: vec![PodContainer {
                    spec: ContainerSpec::new("c", ImageRef::parse("josefhammer/web-asm:amd64"), Some(80)),
                    manifest: catalog::web_asm(),
                    ready: LogNormal::from_median(0.005, 0.1),
                }],
            },
            scheduler_name: None,
        },
        Service {
            name: name.into(),
            selector: sel,
            port: 80,
            target_port: 80,
            protocol: "TCP".into(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any sequence of scale targets, the cluster converges to the last
    /// declared replica count, and endpoints match ready pods.
    #[test]
    fn scaling_converges(targets in prop::collection::vec(0u32..5, 1..8), seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let mut c = K8sCluster::with_defaults();
        c.node_mut().pull(&[catalog::web_asm()], &mut rng);
        let (dep, svc) = deployment("svc", 0);
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        c.settle(&mut rng);
        let mut now = SimTime::from_secs(10);
        let mut last = 0;
        for t in targets {
            c.scale("svc", t, now, &mut rng);
            c.settle(&mut rng);
            now += Duration::from_secs(60);
            last = t;
        }
        let live = c.live_pods("svc").len();
        prop_assert_eq!(live, last as usize, "converged to declared replicas");
        let eps = c.ready_endpoints("svc", now);
        prop_assert_eq!(eps.len(), last as usize);
        // Distinct pod addresses.
        let distinct: std::collections::HashSet<_> = eps.iter().collect();
        prop_assert_eq!(distinct.len(), eps.len());
    }

    /// Every pod's events are causally ordered: Created ≤ Scheduled ≤ Ready,
    /// for arbitrary multi-deployment workloads.
    #[test]
    fn events_causally_ordered(n_deps in 1usize..5, replicas in 1u32..4, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let mut c = K8sCluster::with_defaults();
        c.node_mut().pull(&[catalog::web_asm()], &mut rng);
        let mut events = Vec::new();
        for i in 0..n_deps {
            let (dep, svc) = deployment(&format!("svc-{i}"), replicas);
            c.apply(dep, svc, SimTime::from_secs(i as u64), &mut rng);
            events.extend(c.settle(&mut rng));
        }
        use std::collections::HashMap;
        let mut created: HashMap<String, SimTime> = HashMap::new();
        let mut scheduled: HashMap<String, SimTime> = HashMap::new();
        for e in &events {
            match e {
                ClusterEvent::PodCreated { at, name } => {
                    created.insert(name.clone(), *at);
                }
                ClusterEvent::PodScheduled { at, name, .. } => {
                    prop_assert!(created[name] <= *at);
                    scheduled.insert(name.clone(), *at);
                }
                ClusterEvent::PodReady { at, name, .. } => {
                    prop_assert!(scheduled[name] <= *at);
                }
                _ => {}
            }
        }
        let ready_count = events.iter().filter(|e| matches!(e, ClusterEvent::PodReady { .. })).count();
        prop_assert_eq!(ready_count, n_deps * replicas as usize);
    }

    /// settle() is idempotent: a second call with no new work produces no
    /// events and changes nothing.
    #[test]
    fn settle_is_idempotent(replicas in 0u32..4, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let mut c = K8sCluster::with_defaults();
        c.node_mut().pull(&[catalog::web_asm()], &mut rng);
        let (dep, svc) = deployment("svc", replicas);
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        c.settle(&mut rng);
        let live_before = c.live_pods("svc").len();
        let again = c.settle(&mut rng);
        prop_assert!(again.is_empty());
        prop_assert_eq!(c.live_pods("svc").len(), live_before);
    }
}
