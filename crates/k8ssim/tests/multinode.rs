//! Multi-worker cluster behaviour: placement by the pluggable scheduler and
//! per-node image caches.

use containerd::{ContainerSpec, ContainerdNode};
use desim::{LogNormal, SimRng, SimTime};
use k8ssim::objects::{PodContainer, PodTemplate};
use k8ssim::{ClusterEvent, Deployment, K8sCluster, PackFirstScheduler, Service};
use registry::image::catalog;
use registry::ImageRef;
use std::collections::BTreeMap;

fn labels(app: &str) -> BTreeMap<String, String> {
    [("app".to_string(), app.to_string())].into()
}

fn nginx_deployment(name: &str, scheduler: Option<&str>) -> (Deployment, Service) {
    let sel = labels(name);
    let dep = Deployment {
        name: name.into(),
        labels: sel.clone(),
        replicas: 1,
        selector: sel.clone(),
        template: PodTemplate {
            labels: sel.clone(),
            containers: vec![PodContainer {
                spec: ContainerSpec::new("nginx", ImageRef::parse("nginx:1.23.2"), Some(80)),
                manifest: catalog::nginx(),
                ready: LogNormal::from_median(0.045, 0.0),
            }],
        },
        scheduler_name: scheduler.map(str::to_owned),
    };
    let svc = Service {
        name: name.into(),
        selector: sel,
        port: 80,
        target_port: 80,
        protocol: "TCP".into(),
    };
    (dep, svc)
}

fn three_node_cluster() -> K8sCluster {
    let mut c = K8sCluster::with_defaults();
    c.add_worker("pi-01", ContainerdNode::with_defaults(), 30);
    c.add_worker("pi-02", ContainerdNode::with_defaults(), 30);
    c.register_scheduler(Box::<PackFirstScheduler>::default());
    c
}

fn placements(events: &[ClusterEvent]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| match e {
            ClusterEvent::PodScheduled { node, .. } => Some(node.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn default_scheduler_spreads_across_workers() {
    let mut rng = SimRng::new(1);
    let mut c = three_node_cluster();
    for w in ["egs", "pi-01", "pi-02"] {
        c.worker_mut(w).unwrap().node.pull(&[catalog::nginx()], &mut rng);
    }
    let mut all = Vec::new();
    for i in 0..6 {
        let (dep, svc) = nginx_deployment(&format!("svc-{i}"), None);
        c.apply(dep, svc, SimTime::from_secs(i), &mut rng);
        all.extend(c.settle(&mut rng));
    }
    let nodes = placements(&all);
    assert_eq!(nodes.len(), 6);
    let distinct: std::collections::HashSet<_> = nodes.iter().collect();
    assert_eq!(distinct.len(), 3, "spread uses every node: {nodes:?}");
}

#[test]
fn pack_scheduler_fills_one_node() {
    let mut rng = SimRng::new(2);
    let mut c = three_node_cluster();
    for w in ["egs", "pi-01", "pi-02"] {
        c.worker_mut(w).unwrap().node.pull(&[catalog::nginx()], &mut rng);
    }
    let mut all = Vec::new();
    for i in 0..6 {
        let (dep, svc) = nginx_deployment(&format!("svc-{i}"), Some("edge-pack-scheduler"));
        c.apply(dep, svc, SimTime::from_secs(i), &mut rng);
        all.extend(c.settle(&mut rng));
    }
    let nodes = placements(&all);
    let distinct: std::collections::HashSet<_> = nodes.iter().collect();
    assert_eq!(distinct.len(), 1, "packing stays on one node: {nodes:?}");
}

#[test]
fn per_node_caches_spread_pulls_pack_reuses() {
    // Cold caches everywhere: spreading pulls the image onto every node,
    // packing pulls it exactly once. This is why the Local Scheduler matters
    // at the edge.
    let run = |scheduler: Option<&str>| -> (u64, usize) {
        let mut rng = SimRng::new(3);
        let mut c = three_node_cluster();
        for i in 0..6 {
            let (dep, svc) = nginx_deployment(&format!("svc-{i}"), scheduler);
            c.apply(dep, svc, SimTime::from_secs(i * 30), &mut rng);
            c.settle(&mut rng);
        }
        let bytes: u64 = c.workers().iter().map(|w| w.node.store().disk_usage()).sum();
        let nodes_with_image = c
            .workers()
            .iter()
            .filter(|w| w.node.store().has_image(&catalog::nginx()))
            .count();
        (bytes, nodes_with_image)
    };
    let (spread_bytes, spread_nodes) = run(None);
    let (pack_bytes, pack_nodes) = run(Some("edge-pack-scheduler"));
    assert_eq!(spread_nodes, 3);
    assert_eq!(pack_nodes, 1);
    assert_eq!(spread_bytes, 3 * pack_bytes, "spread pulled on all 3 nodes");
}

#[test]
fn capacity_overflow_spills_to_other_nodes_when_packing() {
    let mut rng = SimRng::new(4);
    let mut c = K8sCluster::with_defaults();
    // Tiny capacities force spill.
    c.add_worker("pi-01", ContainerdNode::with_defaults(), 2);
    c.register_scheduler(Box::<PackFirstScheduler>::default());
    for w in ["egs", "pi-01"] {
        c.worker_mut(w).unwrap().node.pull(&[catalog::nginx()], &mut rng);
    }
    // egs has capacity 110; pack keeps choosing the fullest node with room.
    let mut all = Vec::new();
    for i in 0..4 {
        let (dep, svc) = nginx_deployment(&format!("svc-{i}"), Some("edge-pack-scheduler"));
        c.apply(dep, svc, SimTime::from_secs(i), &mut rng);
        all.extend(c.settle(&mut rng));
    }
    assert_eq!(placements(&all).len(), 4, "all pods placed");
}

#[test]
fn terminate_releases_containers_on_the_right_node() {
    let mut rng = SimRng::new(5);
    let mut c = three_node_cluster();
    for w in ["egs", "pi-01", "pi-02"] {
        c.worker_mut(w).unwrap().node.pull(&[catalog::nginx()], &mut rng);
    }
    let (dep, svc) = nginx_deployment("svc-a", None);
    c.apply(dep, svc, SimTime::ZERO, &mut rng);
    let events = c.settle(&mut rng);
    let node = placements(&events)[0].clone();
    assert_eq!(c.worker(&node).unwrap().node.container_count(), 1);

    c.scale("svc-a", 0, SimTime::from_secs(60), &mut rng);
    c.settle(&mut rng);
    assert_eq!(c.worker(&node).unwrap().node.container_count(), 0);
    for w in c.workers() {
        assert_eq!(w.node.container_count(), 0);
    }
}
