//! The Kubernetes object model (the subset the edge controller drives).

use containerd::{ContainerId, ContainerSpec};
use desim::{LogNormal, SimTime};
use registry::ImageManifest;
use std::collections::BTreeMap;

/// One container within a pod template: the runtime spec, the image manifest
/// the kubelet must ensure is pulled, and the application readiness model.
#[derive(Clone, Debug)]
pub struct PodContainer {
    /// Runtime spec.
    pub spec: ContainerSpec,
    /// Image manifest (for kubelet pulls, `imagePullPolicy: IfNotPresent`).
    pub manifest: ImageManifest,
    /// Delay from task start until the app inside accepts connections.
    pub ready: LogNormal,
}

/// A pod template: labels plus the containers to run.
#[derive(Clone, Debug)]
pub struct PodTemplate {
    /// Labels stamped onto created pods (must satisfy the selector).
    pub labels: BTreeMap<String, String>,
    /// Containers to run.
    pub containers: Vec<PodContainer>,
}

/// A `Deployment`: desired replica count over a pod template.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Object name.
    pub name: String,
    /// Labels on the deployment itself.
    pub labels: BTreeMap<String, String>,
    /// Desired replicas (0 = the paper's "scale to zero" creation state).
    pub replicas: u32,
    /// Selector matching the template labels.
    pub selector: BTreeMap<String, String>,
    /// The pod template.
    pub template: PodTemplate,
    /// Optional non-default scheduler (the paper's Local Scheduler hook).
    pub scheduler_name: Option<String>,
}

/// A `ReplicaSet` owned by a deployment.
#[derive(Clone, Debug)]
pub struct ReplicaSet {
    /// Object name (`<deployment>-<hash>`).
    pub name: String,
    /// Owning deployment.
    pub owner: String,
    /// Desired replicas.
    pub replicas: u32,
}

/// Pod lifecycle phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PodPhase {
    /// Created, not yet bound to a node.
    Pending,
    /// Bound to a node, kubelet has not finished starting it.
    Scheduled,
    /// Containers running; `ready_at` says when it serves.
    Running,
    /// Terminated (scale-down).
    Terminated,
}

/// A `Pod`.
#[derive(Clone, Debug)]
pub struct Pod {
    /// Object name (`<rs>-<n>`).
    pub name: String,
    /// Owning replica set.
    pub owner: String,
    /// Labels (copied from the template).
    pub labels: BTreeMap<String, String>,
    /// Phase.
    pub phase: PodPhase,
    /// Node it is bound to.
    pub node: Option<String>,
    /// Pod IP once running (cluster-internal).
    pub ip: Option<[u8; 4]>,
    /// The containerd containers backing it.
    pub container_ids: Vec<ContainerId>,
    /// Instant the pod became Ready.
    pub ready_at: Option<SimTime>,
    /// Which scheduler must bind it (None = default).
    pub scheduler_name: Option<String>,
}

impl Pod {
    /// `true` if the pod serves traffic at `now`.
    pub fn is_ready(&self, now: SimTime) -> bool {
        self.phase == PodPhase::Running && self.ready_at.is_some_and(|t| t <= now)
    }
}

/// A `Service`: selector plus port mapping.
#[derive(Clone, Debug)]
pub struct Service {
    /// Object name.
    pub name: String,
    /// Pod selector.
    pub selector: BTreeMap<String, String>,
    /// Exposed port.
    pub port: u16,
    /// Target port on the pods.
    pub target_port: u16,
    /// Protocol (always `TCP` for the edge services).
    pub protocol: String,
}

/// `Endpoints`: the ready pod addresses behind a service.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Endpoints {
    /// `(pod ip, target port)` pairs, updated as pods come and go.
    pub addresses: Vec<([u8; 4], u16)>,
    /// When the endpoints were last updated.
    pub updated_at: SimTime,
}

/// `true` if `labels` satisfy `selector` (every selector pair present).
pub fn selector_matches(
    selector: &BTreeMap<String, String>,
    labels: &BTreeMap<String, String>,
) -> bool {
    selector
        .iter()
        .all(|(k, v)| labels.get(k).is_some_and(|lv| lv == v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn selector_matching() {
        let sel = labels(&[("app", "nginx")]);
        assert!(selector_matches(&sel, &labels(&[("app", "nginx"), ("tier", "web")])));
        assert!(!selector_matches(&sel, &labels(&[("app", "other")])));
        assert!(!selector_matches(&sel, &labels(&[])));
        // Empty selector matches anything (K8s semantics).
        assert!(selector_matches(&labels(&[]), &labels(&[("x", "y")])));
    }

    #[test]
    fn pod_readiness() {
        let mut pod = Pod {
            name: "p".into(),
            owner: "rs".into(),
            labels: BTreeMap::new(),
            phase: PodPhase::Pending,
            node: None,
            ip: None,
            container_ids: vec![],
            ready_at: None,
            scheduler_name: None,
        };
        assert!(!pod.is_ready(SimTime::from_secs(10)));
        pod.phase = PodPhase::Running;
        pod.ready_at = Some(SimTime::from_secs(5));
        assert!(!pod.is_ready(SimTime::from_secs(4)));
        assert!(pod.is_ready(SimTime::from_secs(5)));
        pod.phase = PodPhase::Terminated;
        assert!(!pod.is_ready(SimTime::from_secs(10)));
    }
}
