//! `k8ssim` — a Kubernetes-like orchestrator built on the simulated
//! containerd runtime.
//!
//! The paper's second cluster type. Its headline result (Fig. 11) is that
//! scaling a cached service up through Kubernetes takes ≈3 s against
//! Docker's sub-second — *not* because containers start slower (both use the
//! same containerd), but because a pod materialises through a chain of
//! asynchronous reconciliations:
//!
//! ```text
//! Deployment.spec.replicas = 1          (API call by the SDN controller)
//!   → deployment controller creates/updates the ReplicaSet
//!     → replicaset controller creates a Pod (Pending)
//!       → a scheduler binds the Pod to a node
//!         → the node's kubelet notices, sets up the sandbox (pause
//!           container, netns, CNI), pulls missing images, creates and
//!           starts containers via containerd
//!           → the Pod turns Ready, endpoints propagate
//! ```
//!
//! Every arrow above is a watch-reaction plus API round trips with its own
//! calibrated latency; the sum reproduces the measured gap. The crate
//! implements the object model ([`objects`]), a pluggable scheduler framework
//! ([`scheduler`] — the paper's *Local Scheduler* is a named scheduler
//! selected via `schedulerName`), and the cluster with its reconciliation
//! engine ([`cluster`]).

#![warn(missing_docs)]

pub mod cluster;
pub mod objects;
pub mod scheduler;

pub use cluster::{ApiOps, ClusterEvent, K8sCluster, K8sTimings};
pub use objects::{Deployment, Endpoints, Pod, PodPhase, PodTemplate, Service};
pub use scheduler::{DefaultScheduler, K8sScheduler, PackFirstScheduler};
