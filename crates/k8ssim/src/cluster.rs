//! The cluster: API server state, controllers, kubelet, reconciliation.

use crate::objects::{
    selector_matches, Deployment, Endpoints, Pod, PodPhase, ReplicaSet, Service,
};
use crate::scheduler::{K8sScheduler, NodeView, SchedulerRegistry};
use containerd::ContainerdNode;
use desim::{EventQueue, FaultInjector, LogNormal, Sample, SimRng, SimTime};
use std::collections::BTreeMap;

/// Control-plane latency model. Each reconciliation arrow pays a watch
/// reaction; each object mutation pays an API round trip. The defaults are
/// calibrated so that a cached-image scale-up lands around the paper's ≈3 s
/// (Fig. 11) versus Docker's sub-second on the same containerd.
#[derive(Clone, Debug)]
pub struct K8sTimings {
    /// One API-server round trip (create/update/bind).
    pub api_call: LogNormal,
    /// Watch-notification reaction time of a controller.
    pub watch_reaction: LogNormal,
    /// Scheduler queue + scoring + binding latency.
    pub scheduler_latency: LogNormal,
    /// Kubelet pod-sync reaction after binding.
    pub kubelet_reaction: LogNormal,
    /// Pod sandbox setup: pause container, network namespace, CNI plugin.
    pub sandbox_setup: LogNormal,
    /// Endpoints controller propagation after readiness.
    pub endpoint_propagation: LogNormal,
}

impl Default for K8sTimings {
    fn default() -> Self {
        K8sTimings {
            api_call: LogNormal::from_median(0.015, 0.30),
            watch_reaction: LogNormal::from_median(0.090, 0.30),
            scheduler_latency: LogNormal::from_median(0.250, 0.25),
            kubelet_reaction: LogNormal::from_median(0.350, 0.25),
            sandbox_setup: LogNormal::from_median(1.350, 0.20),
            endpoint_propagation: LogNormal::from_median(0.150, 0.30),
        }
    }
}

/// Observable reconciliation events, timestamped.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterEvent {
    /// A replica set was created for a deployment.
    ReplicaSetCreated {
        /// When.
        at: SimTime,
        /// RS name.
        name: String,
    },
    /// A pod object was created (Pending).
    PodCreated {
        /// When.
        at: SimTime,
        /// Pod name.
        name: String,
    },
    /// A pod was bound to a node.
    PodScheduled {
        /// When.
        at: SimTime,
        /// Pod name.
        name: String,
        /// Node.
        node: String,
    },
    /// A pod could not be scheduled (left Pending).
    PodUnschedulable {
        /// When.
        at: SimTime,
        /// Pod name.
        name: String,
    },
    /// A pod's containers all started and the app accepts connections.
    PodReady {
        /// When the app is ready.
        at: SimTime,
        /// Pod name.
        name: String,
        /// Pod IP.
        ip: [u8; 4],
    },
    /// A pod was terminated (scale-down).
    PodTerminated {
        /// When.
        at: SimTime,
        /// Pod name.
        name: String,
    },
    /// Service endpoints were recomputed.
    EndpointsUpdated {
        /// When.
        at: SimTime,
        /// Service name.
        service: String,
        /// Number of ready addresses.
        addresses: usize,
    },
}

impl ClusterEvent {
    /// The event timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            ClusterEvent::ReplicaSetCreated { at, .. }
            | ClusterEvent::PodCreated { at, .. }
            | ClusterEvent::PodScheduled { at, .. }
            | ClusterEvent::PodUnschedulable { at, .. }
            | ClusterEvent::PodReady { at, .. }
            | ClusterEvent::PodTerminated { at, .. }
            | ClusterEvent::EndpointsUpdated { at, .. } => *at,
        }
    }
}

#[derive(Debug)]
enum Work {
    DeploymentChanged(String),
    ReplicaSetChanged(String),
    SchedulePod(String),
    KubeletSync(String),
    TerminatePod(String),
}

/// One worker node: a named containerd instance with a pod capacity.
pub struct WorkerNode {
    /// Node name (`egs`, `pi-01`, ...).
    pub name: String,
    /// The node's containerd (image cache is *per node*).
    pub node: ContainerdNode,
    /// Pod capacity.
    pub capacity: usize,
}

/// The simulated Kubernetes cluster: control plane plus one or more worker
/// nodes. The paper's testbed runs a single worker (the Edge Gateway
/// Server); additional Raspberry-Pi-class workers can be added to exercise
/// the Local Scheduler (`schedulerName`) meaningfully — image caches are
/// per node, so placement decides who pulls.
pub struct K8sCluster {
    timings: K8sTimings,
    workers: Vec<WorkerNode>,
    deployments: BTreeMap<String, Deployment>,
    replicasets: BTreeMap<String, ReplicaSet>,
    pods: BTreeMap<String, Pod>,
    services: BTreeMap<String, Service>,
    endpoints: BTreeMap<String, Endpoints>,
    schedulers: SchedulerRegistry,
    work: EventQueue<Work>,
    pod_seq: u64,
    next_ip: u16,
    /// Chaos-testing injector: scale-up rejections and readiness-probe flaps.
    faults: Option<FaultInjector>,
    /// Pods left Pending by an *injected* rejection (as opposed to a genuine
    /// scheduler refusal), so callers can tell the two apart and retry.
    injected_rejections: Vec<String>,
    /// API-server call counters for telemetry.
    pub ops: ApiOps,
}

/// Lifetime counts of API-server calls (`kubectl apply` / `scale` /
/// deletes), read when a telemetry snapshot is taken.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApiOps {
    /// Deployment+Service applies.
    pub applies: u64,
    /// Scale calls (up or down).
    pub scales: u64,
    /// Deployment/Service deletions.
    pub deletes: u64,
}

impl K8sCluster {
    /// Creates a cluster with one worker node (named `egs`) backed by `node`.
    pub fn new(node: ContainerdNode, timings: K8sTimings, capacity: usize) -> K8sCluster {
        K8sCluster {
            timings,
            workers: vec![WorkerNode {
                name: "egs".to_owned(),
                node,
                capacity,
            }],
            deployments: BTreeMap::new(),
            replicasets: BTreeMap::new(),
            pods: BTreeMap::new(),
            services: BTreeMap::new(),
            endpoints: BTreeMap::new(),
            schedulers: SchedulerRegistry::new(),
            work: EventQueue::new(),
            pod_seq: 0,
            next_ip: 2,
            faults: None,
            injected_rejections: Vec::new(),
            ops: ApiOps::default(),
        }
    }

    /// Default cluster (public registries, default timings, 110-pod node).
    pub fn with_defaults() -> K8sCluster {
        K8sCluster::new(ContainerdNode::with_defaults(), K8sTimings::default(), 110)
    }

    /// Registers a custom (Local) scheduler.
    pub fn register_scheduler(&mut self, scheduler: Box<dyn K8sScheduler>) {
        self.schedulers.register(scheduler);
    }

    /// Wires a chaos-testing fault injector into the control plane. Injected
    /// faults are scale-up (scheduling) rejections and readiness-probe
    /// flaps; container-runtime faults are modelled on the Docker path.
    pub fn set_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Drains the names of pods left Pending by an *injected* scheduling
    /// rejection since the last call. A genuine scheduler refusal (cluster
    /// full, no matching node) does not show up here.
    pub fn take_injected_rejections(&mut self) -> Vec<String> {
        std::mem::take(&mut self.injected_rejections)
    }

    /// Adds another worker node. Returns its index.
    pub fn add_worker(&mut self, name: impl Into<String>, node: ContainerdNode, capacity: usize) -> usize {
        self.workers.push(WorkerNode {
            name: name.into(),
            node,
            capacity,
        });
        self.workers.len() - 1
    }

    /// The first worker node's containerd (image pre-pulls, probes). For
    /// multi-worker clusters use [`K8sCluster::worker`].
    pub fn node(&self) -> &ContainerdNode {
        &self.workers[0].node
    }

    /// Mutable first-worker containerd access.
    pub fn node_mut(&mut self) -> &mut ContainerdNode {
        &mut self.workers[0].node
    }

    /// Worker by name.
    pub fn worker(&self, name: &str) -> Option<&WorkerNode> {
        self.workers.iter().find(|w| w.name == name)
    }

    /// Mutable worker by name.
    pub fn worker_mut(&mut self, name: &str) -> Option<&mut WorkerNode> {
        self.workers.iter_mut().find(|w| w.name == name)
    }

    /// All workers.
    pub fn workers(&self) -> &[WorkerNode] {
        &self.workers
    }

    /// `true` if *some* worker has every layer of every manifest cached.
    pub fn any_worker_has(&self, manifests: &[registry::ImageManifest]) -> bool {
        self.workers
            .iter()
            .any(|w| manifests.iter().all(|m| w.node.store().has_image(m)))
    }

    fn api(&self, now: SimTime, rng: &mut SimRng) -> SimTime {
        now + self.timings.api_call.sample_duration(rng)
    }

    /// `kubectl apply` of a deployment (+ its service). Returns the instant
    /// the API server acknowledged both objects. Reconciliation continues in
    /// [`K8sCluster::settle`].
    pub fn apply(
        &mut self,
        deployment: Deployment,
        service: Service,
        now: SimTime,
        rng: &mut SimRng,
    ) -> SimTime {
        self.ops.applies += 1;
        let t1 = self.api(now, rng);
        let name = deployment.name.clone();
        self.deployments.insert(name.clone(), deployment);
        let t2 = self.api(t1, rng);
        self.endpoints
            .insert(service.name.clone(), Endpoints::default());
        self.services.insert(service.name.clone(), service);
        let react = t2 + self.timings.watch_reaction.sample_duration(rng);
        self.work.push(react, Work::DeploymentChanged(name));
        t2
    }

    /// Scales a deployment (the controller's **Scale Up** / **Scale Down**
    /// API call). Returns the API acknowledgement instant.
    ///
    /// # Panics
    /// Panics if the deployment does not exist.
    pub fn scale(&mut self, name: &str, replicas: u32, now: SimTime, rng: &mut SimRng) -> SimTime {
        self.ops.scales += 1;
        let t = self.api(now, rng);
        let dep = self
            .deployments
            .get_mut(name)
            .unwrap_or_else(|| panic!("no deployment {name}"));
        dep.replicas = replicas;
        let react = t + self.timings.watch_reaction.sample_duration(rng);
        self.work.push(react, Work::DeploymentChanged(name.to_owned()));
        t
    }

    /// Deletes a deployment and its pods (**Remove** phase). Returns the API
    /// acknowledgement instant.
    pub fn delete_deployment(&mut self, name: &str, now: SimTime, rng: &mut SimRng) -> SimTime {
        self.ops.deletes += 1;
        let t = self.api(now, rng);
        self.deployments.remove(name);
        let rs_names: Vec<String> = self
            .replicasets
            .values()
            .filter(|rs| rs.owner == name)
            .map(|rs| rs.name.clone())
            .collect();
        for rs in rs_names {
            self.replicasets.remove(&rs);
            let pods: Vec<String> = self
                .pods
                .values()
                .filter(|p| p.owner == rs && p.phase != PodPhase::Terminated)
                .map(|p| p.name.clone())
                .collect();
            for p in pods {
                let react = t + self.timings.watch_reaction.sample_duration(rng);
                self.work.push(react, Work::TerminatePod(p));
            }
        }
        t
    }

    /// Deletes a service object.
    pub fn delete_service(&mut self, name: &str, now: SimTime, rng: &mut SimRng) -> SimTime {
        self.ops.deletes += 1;
        let t = self.api(now, rng);
        self.services.remove(name);
        self.endpoints.remove(name);
        t
    }

    /// Runs the control loops until quiescence, returning the timestamped
    /// event trail.
    pub fn settle(&mut self, rng: &mut SimRng) -> Vec<ClusterEvent> {
        let mut events = Vec::new();
        while let Some((now, work)) = self.work.pop() {
            match work {
                Work::DeploymentChanged(name) => self.reconcile_deployment(&name, now, rng, &mut events),
                Work::ReplicaSetChanged(name) => self.reconcile_replicaset(&name, now, rng, &mut events),
                Work::SchedulePod(name) => self.schedule_pod(&name, now, rng, &mut events),
                Work::KubeletSync(name) => self.kubelet_sync(&name, now, rng, &mut events),
                Work::TerminatePod(name) => self.terminate_pod(&name, now, rng, &mut events),
            }
        }
        events.sort_by_key(ClusterEvent::at);
        events
    }

    fn reconcile_deployment(
        &mut self,
        name: &str,
        now: SimTime,
        rng: &mut SimRng,
        events: &mut Vec<ClusterEvent>,
    ) {
        let Some(dep) = self.deployments.get(name) else {
            return; // deleted meanwhile
        };
        let replicas = dep.replicas;
        let rs_name = format!("{name}-rs");
        let t = if let Some(rs) = self.replicasets.get_mut(&rs_name) {
            if rs.replicas == replicas {
                return; // nothing to do
            }
            rs.replicas = replicas;
            self.api(now, rng)
        } else {
            let t = self.api(now, rng);
            self.replicasets.insert(
                rs_name.clone(),
                ReplicaSet {
                    name: rs_name.clone(),
                    owner: name.to_owned(),
                    replicas,
                },
            );
            events.push(ClusterEvent::ReplicaSetCreated {
                at: t,
                name: rs_name.clone(),
            });
            t
        };
        let react = t + self.timings.watch_reaction.sample_duration(rng);
        self.work.push(react, Work::ReplicaSetChanged(rs_name));
    }

    fn reconcile_replicaset(
        &mut self,
        name: &str,
        now: SimTime,
        rng: &mut SimRng,
        events: &mut Vec<ClusterEvent>,
    ) {
        let Some(rs) = self.replicasets.get(name) else {
            return;
        };
        let desired = rs.replicas as usize;
        let owner = rs.owner.clone();
        let live: Vec<String> = self
            .pods
            .values()
            .filter(|p| p.owner == name && p.phase != PodPhase::Terminated)
            .map(|p| p.name.clone())
            .collect();
        if live.len() < desired {
            let Some(dep) = self.deployments.get(&owner) else {
                return;
            };
            let template_labels = dep.template.labels.clone();
            let scheduler_name = dep.scheduler_name.clone();
            let mut t = now;
            for _ in live.len()..desired {
                self.pod_seq += 1;
                let pod_name = format!("{name}-{}", self.pod_seq);
                t = self.api(t, rng);
                self.pods.insert(
                    pod_name.clone(),
                    Pod {
                        name: pod_name.clone(),
                        owner: name.to_owned(),
                        labels: template_labels.clone(),
                        phase: PodPhase::Pending,
                        node: None,
                        ip: None,
                        container_ids: vec![],
                        ready_at: None,
                        scheduler_name: scheduler_name.clone(),
                    },
                );
                events.push(ClusterEvent::PodCreated {
                    at: t,
                    name: pod_name.clone(),
                });
                let sched_at = t + self.timings.scheduler_latency.sample_duration(rng);
                self.work.push(sched_at, Work::SchedulePod(pod_name));
            }
        } else if live.len() > desired {
            // Scale down: newest pods go first (K8s victim preference).
            let mut victims = live;
            victims.sort();
            let n_remove = victims.len() - desired;
            for v in victims.into_iter().rev().take(n_remove) {
                let react = now + self.timings.watch_reaction.sample_duration(rng);
                self.work.push(react, Work::TerminatePod(v));
            }
        }
    }

    fn node_views(&self) -> Vec<NodeView> {
        self.workers
            .iter()
            .map(|w| NodeView {
                name: w.name.clone(),
                pods: self
                    .pods
                    .values()
                    .filter(|p| {
                        p.node.as_deref() == Some(w.name.as_str())
                            && p.phase != PodPhase::Terminated
                    })
                    .count(),
                capacity: w.capacity,
            })
            .collect()
    }

    fn schedule_pod(
        &mut self,
        name: &str,
        now: SimTime,
        rng: &mut SimRng,
        events: &mut Vec<ClusterEvent>,
    ) {
        let views = self.node_views();
        let Some(pod) = self.pods.get(name) else {
            return;
        };
        if pod.phase != PodPhase::Pending {
            return;
        }
        if let Some(faults) = &mut self.faults {
            if faults.scale_up_rejected() {
                self.injected_rejections.push(name.to_owned());
                events.push(ClusterEvent::PodUnschedulable {
                    at: now,
                    name: name.to_owned(),
                });
                return;
            }
        }
        match self.schedulers.schedule(pod, &views) {
            Some(node) => {
                let t = self.api(now, rng); // binding API call
                let pod = self.pods.get_mut(name).expect("pod exists");
                pod.node = Some(node.clone());
                pod.phase = PodPhase::Scheduled;
                events.push(ClusterEvent::PodScheduled {
                    at: t,
                    name: name.to_owned(),
                    node,
                });
                let sync = t + self.timings.kubelet_reaction.sample_duration(rng);
                self.work.push(sync, Work::KubeletSync(name.to_owned()));
            }
            None => {
                events.push(ClusterEvent::PodUnschedulable {
                    at: now,
                    name: name.to_owned(),
                });
            }
        }
    }

    fn kubelet_sync(
        &mut self,
        name: &str,
        now: SimTime,
        rng: &mut SimRng,
        events: &mut Vec<ClusterEvent>,
    ) {
        let Some(pod) = self.pods.get(name) else {
            return;
        };
        if pod.phase != PodPhase::Scheduled {
            return;
        }
        let owner_rs = pod.owner.clone();
        let Some(rs) = self.replicasets.get(&owner_rs) else {
            return;
        };
        let Some(dep) = self.deployments.get(&rs.owner) else {
            return;
        };
        let containers = dep.template.containers.clone();
        let worker_name = pod.node.clone().expect("scheduled pod has a node");
        let worker_idx = self
            .workers
            .iter()
            .position(|w| w.name == worker_name)
            .expect("pod bound to a known node");
        let worker = &mut self.workers[worker_idx].node;

        // Pull whatever is missing on *this node* (imagePullPolicy:
        // IfNotPresent) — this is the Pull phase showing up inside K8s when
        // the node's cache is cold.
        let manifests: Vec<_> = containers.iter().map(|c| c.manifest.clone()).collect();
        let pull_time = worker.pull(&manifests, rng);
        let mut t = now + pull_time;

        // Sandbox: pause container + netns + CNI.
        t += self.timings.sandbox_setup.sample_duration(rng);

        // Create and start each container; app readiness runs concurrently
        // once its task is up, so pod readiness is the max over containers.
        let mut ids = Vec::with_capacity(containers.len());
        let mut ready_at = t;
        for c in &containers {
            // K8s worker nodes run without containerd fault injection (the
            // runtime fault model lives on the Docker path), so create/start
            // cannot fail here.
            let (id, created) = worker
                .create(c.spec.clone(), &c.manifest, t, rng)
                .expect("k8s worker nodes run without containerd fault injection");
            let ready_delay = c.ready.sample_duration(rng);
            let (started, ready) = worker
                .start(id, created, ready_delay, rng)
                .expect("k8s worker nodes run without containerd fault injection");
            t = started; // next container's create begins after this start
            ready_at = ready_at.max(ready);
            ids.push(id);
        }

        // An injected readiness-probe flap delays when the kubelet reports
        // the pod Ready (the app restarts its probe grace period).
        if let Some(faults) = &mut self.faults {
            if let Some(extra) = faults.probe_flap() {
                ready_at += extra;
            }
        }

        let ip = [10, 244, (self.next_ip >> 8) as u8, (self.next_ip & 0xff) as u8];
        self.next_ip += 1;
        let pod = self.pods.get_mut(name).expect("pod exists");
        pod.phase = PodPhase::Running;
        pod.ip = Some(ip);
        pod.container_ids = ids;
        pod.ready_at = Some(ready_at);
        events.push(ClusterEvent::PodReady {
            at: ready_at,
            name: name.to_owned(),
            ip,
        });

        let ep_at = ready_at + self.timings.endpoint_propagation.sample_duration(rng);
        self.recompute_endpoints(ep_at, events);
    }

    fn terminate_pod(
        &mut self,
        name: &str,
        now: SimTime,
        rng: &mut SimRng,
        events: &mut Vec<ClusterEvent>,
    ) {
        let Some(pod) = self.pods.get_mut(name) else {
            return;
        };
        if pod.phase == PodPhase::Terminated {
            return;
        }
        let ids = pod.container_ids.clone();
        let worker_name = pod.node.clone();
        pod.phase = PodPhase::Terminated;
        pod.ready_at = None;
        let worker = worker_name
            .and_then(|n| self.workers.iter_mut().find(|w| w.name == n))
            .map(|w| &mut w.node);
        let mut t = now;
        if let Some(worker) = worker {
            for id in ids {
                t = worker.stop(id, t, rng);
                t = worker.remove(id, t, rng);
            }
        }
        events.push(ClusterEvent::PodTerminated {
            at: t,
            name: name.to_owned(),
        });
        self.recompute_endpoints(t, events);
    }

    fn recompute_endpoints(&mut self, at: SimTime, events: &mut Vec<ClusterEvent>) {
        for (svc_name, svc) in &self.services {
            let mut addrs: Vec<([u8; 4], u16)> = self
                .pods
                .values()
                .filter(|p| {
                    p.phase == PodPhase::Running && selector_matches(&svc.selector, &p.labels)
                })
                .filter_map(|p| p.ip.map(|ip| (ip, svc.target_port)))
                .collect();
            addrs.sort();
            let ep = self.endpoints.entry(svc_name.clone()).or_default();
            if ep.addresses != addrs {
                ep.addresses = addrs;
                ep.updated_at = at;
                events.push(ClusterEvent::EndpointsUpdated {
                    at,
                    service: svc_name.clone(),
                    addresses: ep.addresses.len(),
                });
            }
        }
    }

    /// Ready `(ip, port)` addresses behind a service at `now`.
    pub fn ready_endpoints(&self, service: &str, now: SimTime) -> Vec<([u8; 4], u16)> {
        let Some(svc) = self.services.get(service) else {
            return vec![];
        };
        self.pods
            .values()
            .filter(|p| p.is_ready(now) && selector_matches(&svc.selector, &p.labels))
            .filter_map(|p| p.ip.map(|ip| (ip, svc.target_port)))
            .collect()
    }

    /// `true` if the deployment object exists.
    pub fn has_deployment(&self, name: &str) -> bool {
        self.deployments.contains_key(name)
    }

    /// Live (non-terminated) pods of a deployment.
    pub fn live_pods(&self, deployment: &str) -> Vec<&Pod> {
        let rs_name = format!("{deployment}-rs");
        self.pods
            .values()
            .filter(|p| p.owner == rs_name && p.phase != PodPhase::Terminated)
            .collect()
    }

    /// Looks up a pod.
    pub fn pod(&self, name: &str) -> Option<&Pod> {
        self.pods.get(name)
    }

    /// Endpoints object of a service.
    pub fn endpoints(&self, service: &str) -> Option<&Endpoints> {
        self.endpoints.get(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{PodContainer, PodTemplate};
    use containerd::ContainerSpec;
    use registry::image::catalog;
    use registry::ImageRef;

    fn labels(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    fn nginx_deployment(replicas: u32) -> (Deployment, Service) {
        let sel = labels(&[("app", "nginx")]);
        let dep = Deployment {
            name: "nginx-edge".into(),
            labels: sel.clone(),
            replicas,
            selector: sel.clone(),
            template: PodTemplate {
                labels: sel.clone(),
                containers: vec![PodContainer {
                    spec: ContainerSpec::new("nginx", ImageRef::parse("nginx:1.23.2"), Some(80)),
                    manifest: catalog::nginx(),
                    ready: LogNormal::from_median(0.045, 0.0),
                }],
            },
            scheduler_name: None,
        };
        let svc = Service {
            name: "nginx-edge".into(),
            selector: sel,
            port: 80,
            target_port: 80,
            protocol: "TCP".into(),
        };
        (dep, svc)
    }

    fn cluster_with_cached_nginx(rng: &mut SimRng) -> K8sCluster {
        let mut c = K8sCluster::with_defaults();
        c.node_mut().pull(&[catalog::nginx()], rng);
        c
    }

    #[test]
    fn create_with_zero_replicas_spawns_no_pods() {
        let mut rng = SimRng::new(1);
        let mut c = cluster_with_cached_nginx(&mut rng);
        let (dep, svc) = nginx_deployment(0);
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        let events = c.settle(&mut rng);
        assert!(events.iter().any(|e| matches!(e, ClusterEvent::ReplicaSetCreated { .. })));
        assert!(!events.iter().any(|e| matches!(e, ClusterEvent::PodCreated { .. })));
        assert!(c.ready_endpoints("nginx-edge", SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn scale_up_produces_ready_pod_in_about_three_seconds() {
        let mut rng = SimRng::new(2);
        let mut c = cluster_with_cached_nginx(&mut rng);
        let (dep, svc) = nginx_deployment(0);
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        c.settle(&mut rng);

        let t0 = SimTime::from_secs(10);
        c.scale("nginx-edge", 1, t0, &mut rng);
        let events = c.settle(&mut rng);
        let ready = events
            .iter()
            .find_map(|e| match e {
                ClusterEvent::PodReady { at, ip, .. } => Some((*at, *ip)),
                _ => None,
            })
            .expect("pod became ready");
        let elapsed = (ready.0 - t0).as_secs_f64();
        // The paper's K8s overhead: ~3 s (vs <1 s on Docker).
        assert!((1.8..4.5).contains(&elapsed), "scale-up took {elapsed}s");
        assert_eq!(ready.1[0], 10);
        // Event causality: created < scheduled < ready <= endpoints.
        let ts: Vec<(u8, SimTime)> = events
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::PodCreated { at, .. } => Some((0, *at)),
                ClusterEvent::PodScheduled { at, .. } => Some((1, *at)),
                ClusterEvent::PodReady { at, .. } => Some((2, *at)),
                ClusterEvent::EndpointsUpdated { at, .. } => Some((3, *at)),
                _ => None,
            })
            .collect();
        for w in ts.windows(2) {
            assert!(w[0].1 <= w[1].1, "events out of causal order: {ts:?}");
        }
        // Ready endpoints appear only after readiness.
        assert!(c.ready_endpoints("nginx-edge", t0).is_empty());
        assert_eq!(c.ready_endpoints("nginx-edge", ready.0).len(), 1);
    }

    #[test]
    fn cold_image_adds_pull_time() {
        let mut rng1 = SimRng::new(3);
        let mut warm = cluster_with_cached_nginx(&mut rng1);
        let (dep, svc) = nginx_deployment(1);
        warm.apply(dep, svc, SimTime::ZERO, &mut rng1);
        let warm_ready = warm
            .settle(&mut rng1)
            .iter()
            .find_map(|e| match e {
                ClusterEvent::PodReady { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();

        let mut rng2 = SimRng::new(3);
        let mut cold = K8sCluster::with_defaults();
        let (dep, svc) = nginx_deployment(1);
        cold.apply(dep, svc, SimTime::ZERO, &mut rng2);
        let cold_ready = cold
            .settle(&mut rng2)
            .iter()
            .find_map(|e| match e {
                ClusterEvent::PodReady { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        assert!(
            cold_ready > warm_ready + desim::Duration::from_secs(1),
            "cold {cold_ready:?} vs warm {warm_ready:?}"
        );
        assert!(cold.node().store().has_image(&catalog::nginx()), "kubelet pulled the image");
    }

    #[test]
    fn scale_down_terminates_and_clears_endpoints() {
        let mut rng = SimRng::new(4);
        let mut c = cluster_with_cached_nginx(&mut rng);
        let (dep, svc) = nginx_deployment(1);
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        c.settle(&mut rng);
        let ready_time = SimTime::from_secs(30);
        assert_eq!(c.ready_endpoints("nginx-edge", ready_time).len(), 1);

        c.scale("nginx-edge", 0, ready_time, &mut rng);
        let events = c.settle(&mut rng);
        assert!(events.iter().any(|e| matches!(e, ClusterEvent::PodTerminated { .. })));
        assert!(c.ready_endpoints("nginx-edge", SimTime::from_secs(120)).is_empty());
        assert_eq!(c.live_pods("nginx-edge").len(), 0);
        // Containers are gone from containerd too.
        assert_eq!(c.node().container_count(), 0);
    }

    #[test]
    fn multi_replica_scale() {
        let mut rng = SimRng::new(5);
        let mut c = cluster_with_cached_nginx(&mut rng);
        let (dep, svc) = nginx_deployment(3);
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        let events = c.settle(&mut rng);
        let ready = events
            .iter()
            .filter(|e| matches!(e, ClusterEvent::PodReady { .. }))
            .count();
        assert_eq!(ready, 3);
        assert_eq!(c.ready_endpoints("nginx-edge", SimTime::from_secs(60)).len(), 3);
        // Distinct pod IPs.
        let ips: std::collections::HashSet<_> = c
            .live_pods("nginx-edge")
            .iter()
            .map(|p| p.ip.unwrap())
            .collect();
        assert_eq!(ips.len(), 3);
    }

    #[test]
    fn two_container_pod_readiness_is_max() {
        let mut rng = SimRng::new(6);
        let mut c = K8sCluster::with_defaults();
        c.node_mut()
            .pull(&[catalog::nginx(), catalog::env_writer_py()], &mut rng);
        let sel = labels(&[("app", "nginx-py")]);
        let dep = Deployment {
            name: "nginx-py".into(),
            labels: sel.clone(),
            replicas: 1,
            selector: sel.clone(),
            template: PodTemplate {
                labels: sel.clone(),
                containers: vec![
                    PodContainer {
                        spec: ContainerSpec::new("nginx", ImageRef::parse("nginx:1.23.2"), Some(80)),
                        manifest: catalog::nginx(),
                        ready: LogNormal::from_median(0.045, 0.0),
                    },
                    PodContainer {
                        spec: ContainerSpec::new(
                            "env-writer",
                            ImageRef::parse("josefhammer/env-writer-py"),
                            None,
                        ),
                        manifest: catalog::env_writer_py(),
                        ready: LogNormal::from_median(0.25, 0.0),
                    },
                ],
            },
            scheduler_name: None,
        };
        let svc = Service {
            name: "nginx-py".into(),
            selector: sel,
            port: 80,
            target_port: 80,
            protocol: "TCP".into(),
        };
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        let events = c.settle(&mut rng);
        let pod_name = events
            .iter()
            .find_map(|e| match e {
                ClusterEvent::PodReady { name, .. } => Some(name.clone()),
                _ => None,
            })
            .unwrap();
        let pod = c.pod(&pod_name).unwrap();
        assert_eq!(pod.container_ids.len(), 2);
    }

    #[test]
    fn custom_scheduler_is_used() {
        struct Refuser;
        impl K8sScheduler for Refuser {
            fn name(&self) -> &str {
                "refuser"
            }
            fn schedule(&mut self, _: &Pod, _: &[NodeView]) -> Option<String> {
                None
            }
        }
        let mut rng = SimRng::new(7);
        let mut c = cluster_with_cached_nginx(&mut rng);
        c.register_scheduler(Box::new(Refuser));
        let (mut dep, svc) = nginx_deployment(1);
        dep.scheduler_name = Some("refuser".into());
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        let events = c.settle(&mut rng);
        assert!(events.iter().any(|e| matches!(e, ClusterEvent::PodUnschedulable { .. })));
        assert!(!events.iter().any(|e| matches!(e, ClusterEvent::PodReady { .. })));
    }

    #[test]
    fn injected_scale_up_rejection_is_recorded_and_retryable() {
        use desim::FaultPlan;
        let mut rng = SimRng::new(9);
        let mut c = cluster_with_cached_nginx(&mut rng);
        c.set_faults(
            FaultPlan {
                scale_up_rejection: 1.0,
                ..FaultPlan::default()
            }
            .injector(0x11),
        );
        let (dep, svc) = nginx_deployment(0);
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        c.settle(&mut rng);
        c.scale("nginx-edge", 1, SimTime::from_secs(10), &mut rng);
        let events = c.settle(&mut rng);
        assert!(events.iter().any(|e| matches!(e, ClusterEvent::PodUnschedulable { .. })));
        assert!(!events.iter().any(|e| matches!(e, ClusterEvent::PodReady { .. })));
        assert_eq!(c.take_injected_rejections().len(), 1);
        assert!(c.take_injected_rejections().is_empty(), "drained on take");

        // Retry after clearing the fault: reset to zero replicas (terminates
        // the stuck Pending pod), then scale up again.
        c.set_faults(FaultPlan::default().injector(0x12));
        c.scale("nginx-edge", 0, SimTime::from_secs(12), &mut rng);
        c.settle(&mut rng);
        c.scale("nginx-edge", 1, SimTime::from_secs(14), &mut rng);
        let events = c.settle(&mut rng);
        assert!(events.iter().any(|e| matches!(e, ClusterEvent::PodReady { .. })));
        assert!(c.take_injected_rejections().is_empty());
    }

    #[test]
    fn injected_probe_flap_delays_readiness_only() {
        use desim::FaultPlan;
        let ready_with = |faulty: bool| {
            let mut rng = SimRng::new(10);
            let mut c = cluster_with_cached_nginx(&mut rng);
            if faulty {
                c.set_faults(
                    FaultPlan {
                        probe_flap: 1.0,
                        ..FaultPlan::default()
                    }
                    .injector(0x21),
                );
            }
            let (dep, svc) = nginx_deployment(1);
            c.apply(dep, svc, SimTime::ZERO, &mut rng);
            c.settle(&mut rng)
                .iter()
                .find_map(|e| match e {
                    ClusterEvent::PodReady { at, .. } => Some(*at),
                    _ => None,
                })
                .expect("pod became ready")
        };
        let clean = ready_with(false);
        let flappy = ready_with(true);
        // The injector has its own rng stream, so the main draws line up and
        // the flap shows as a pure delay of delay*(0.5..1.5).
        assert!(
            flappy >= clean + desim::Duration::from_millis(900),
            "flap added {:?}",
            flappy.saturating_since(clean)
        );
        assert!(flappy <= clean + desim::Duration::from_secs(4));
    }

    #[test]
    fn delete_deployment_cleans_up() {
        let mut rng = SimRng::new(8);
        let mut c = cluster_with_cached_nginx(&mut rng);
        let (dep, svc) = nginx_deployment(1);
        c.apply(dep, svc, SimTime::ZERO, &mut rng);
        c.settle(&mut rng);
        c.delete_deployment("nginx-edge", SimTime::from_secs(60), &mut rng);
        c.delete_service("nginx-edge", SimTime::from_secs(60), &mut rng);
        let events = c.settle(&mut rng);
        assert!(events.iter().any(|e| matches!(e, ClusterEvent::PodTerminated { .. })));
        assert!(!c.has_deployment("nginx-edge"));
        assert!(c.endpoints("nginx-edge").is_none());
    }
}
