//! The pluggable (pod → node) scheduler framework.
//!
//! The paper distinguishes a *Global Scheduler* (which edge cluster — lives
//! in the `edgectl` crate) from a *Local Scheduler* (which instance/node
//! within a cluster). For Kubernetes the local scheduler may be the default
//! K8s scheduler or a custom one selected per pod via `schedulerName` —
//! exactly the mechanism modelled here.

use crate::objects::Pod;
use std::collections::HashMap;

/// A view of a schedulable node.
#[derive(Clone, Debug)]
pub struct NodeView {
    /// Node name.
    pub name: String,
    /// Pods currently bound to it.
    pub pods: usize,
    /// Capacity in pods.
    pub capacity: usize,
}

/// A (pod → node) scheduler.
pub trait K8sScheduler: Send {
    /// The `schedulerName` this scheduler answers to.
    fn name(&self) -> &str;

    /// Picks a node for `pod`, or `None` if nothing fits.
    fn schedule(&mut self, pod: &Pod, nodes: &[NodeView]) -> Option<String>;
}

/// The default scheduler: spreads pods by picking the least-loaded node with
/// free capacity (a simplification of kube-scheduler's scoring).
#[derive(Default)]
pub struct DefaultScheduler;

impl K8sScheduler for DefaultScheduler {
    fn name(&self) -> &str {
        "default-scheduler"
    }

    fn schedule(&mut self, _pod: &Pod, nodes: &[NodeView]) -> Option<String> {
        nodes
            .iter()
            .filter(|n| n.pods < n.capacity)
            .min_by_key(|n| n.pods)
            .map(|n| n.name.clone())
    }
}

/// A bin-packing scheduler: fills the *most*-loaded node first, keeping the
/// remaining nodes free (useful at the edge to power down idle machines).
/// Serves as the example custom Local Scheduler.
#[derive(Default)]
pub struct PackFirstScheduler;

impl K8sScheduler for PackFirstScheduler {
    fn name(&self) -> &str {
        "edge-pack-scheduler"
    }

    fn schedule(&mut self, _pod: &Pod, nodes: &[NodeView]) -> Option<String> {
        nodes
            .iter()
            .filter(|n| n.pods < n.capacity)
            .max_by_key(|n| n.pods)
            .map(|n| n.name.clone())
    }
}

/// Registry of named schedulers; pods select by `schedulerName`.
pub struct SchedulerRegistry {
    schedulers: HashMap<String, Box<dyn K8sScheduler>>,
    default_name: String,
}

impl SchedulerRegistry {
    /// Builds a registry with the default scheduler registered.
    pub fn new() -> SchedulerRegistry {
        let default: Box<dyn K8sScheduler> = Box::<DefaultScheduler>::default();
        let default_name = default.name().to_owned();
        let mut schedulers: HashMap<String, Box<dyn K8sScheduler>> = HashMap::new();
        schedulers.insert(default_name.clone(), default);
        SchedulerRegistry {
            schedulers,
            default_name,
        }
    }

    /// Registers an additional named scheduler.
    pub fn register(&mut self, scheduler: Box<dyn K8sScheduler>) {
        self.schedulers.insert(scheduler.name().to_owned(), scheduler);
    }

    /// Schedules `pod` with its requested scheduler (falling back to the
    /// default when the requested one is unknown, as real clusters leave such
    /// pods Pending — we fall back so misconfigurations are visible in tests
    /// rather than deadlocks).
    pub fn schedule(&mut self, pod: &Pod, nodes: &[NodeView]) -> Option<String> {
        let requested = pod
            .scheduler_name
            .clone()
            .unwrap_or_else(|| self.default_name.clone());
        let name = if self.schedulers.contains_key(&requested) {
            requested
        } else {
            self.default_name.clone()
        };
        self.schedulers.get_mut(&name)?.schedule(pod, nodes)
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::PodPhase;
    use std::collections::BTreeMap;

    fn pod(scheduler: Option<&str>) -> Pod {
        Pod {
            name: "p".into(),
            owner: "rs".into(),
            labels: BTreeMap::new(),
            phase: PodPhase::Pending,
            node: None,
            ip: None,
            container_ids: vec![],
            ready_at: None,
            scheduler_name: scheduler.map(str::to_owned),
        }
    }

    fn nodes() -> Vec<NodeView> {
        vec![
            NodeView { name: "a".into(), pods: 3, capacity: 10 },
            NodeView { name: "b".into(), pods: 1, capacity: 10 },
            NodeView { name: "c".into(), pods: 7, capacity: 10 },
        ]
    }

    #[test]
    fn default_spreads() {
        let mut s = DefaultScheduler;
        assert_eq!(s.schedule(&pod(None), &nodes()), Some("b".into()));
    }

    #[test]
    fn pack_first_fills() {
        let mut s = PackFirstScheduler;
        assert_eq!(s.schedule(&pod(None), &nodes()), Some("c".into()));
    }

    #[test]
    fn capacity_is_respected() {
        let full = vec![NodeView { name: "a".into(), pods: 2, capacity: 2 }];
        assert_eq!(DefaultScheduler.schedule(&pod(None), &full), None);
        assert_eq!(PackFirstScheduler.schedule(&pod(None), &full), None);
    }

    #[test]
    fn registry_routes_by_scheduler_name() {
        let mut reg = SchedulerRegistry::new();
        reg.register(Box::<PackFirstScheduler>::default());
        assert_eq!(reg.schedule(&pod(None), &nodes()), Some("b".into()));
        assert_eq!(
            reg.schedule(&pod(Some("edge-pack-scheduler")), &nodes()),
            Some("c".into())
        );
        // Unknown scheduler falls back to the default.
        assert_eq!(reg.schedule(&pod(Some("ghost")), &nodes()), Some("b".into()));
    }
}
