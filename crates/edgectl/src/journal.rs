//! Controller crash-recovery: a write-ahead journal of state mutations
//! with periodic compacted snapshots and deterministic replay.
//!
//! The controller is the last single point of failure in the transparent
//! edge: PR 5 recovers from instance crashes, zone outages, and channel
//! loss, but a controller death used to lose the FlowMemory, the
//! installed-pair bookkeeping, breaker state, and in-flight migrations
//! outright. The journal closes that gap:
//!
//! * every state mutation the controller performs is appended as a
//!   [`JournalEvent`] — component-level ops ([`FlowOp`], [`HealthOp`],
//!   [`MigrationOp`]) drained from the mutated structures, plus
//!   controller-level events (pair add/tombstone, aggregate anchor
//!   changes, scale-down bookkeeping, client sightings);
//! * every `snapshot_every` events the tail is **compacted** into a
//!   [`Snapshot`] — a sorted, deterministic export of the full recoverable
//!   state — and the tail restarts empty;
//! * a **warm restart** rebuilds the controller's state by restoring the
//!   snapshot and replaying the tail ([`Journal::rebuild`]); a **cold
//!   restart** starts empty and leans on reconciliation plus packet-in
//!   re-dispatch alone.
//!
//! Replay is deterministic: the same journal always rebuilds the same
//! state, and a rebuilt state's [`Snapshot::encode`] is byte-identical to
//! the uncrashed controller's at every mutation boundary (the differential
//! oracle the tests enforce). Volatile state — held requests, deferred
//! expiries, in-flight single-flight deployments, per-request records,
//! telemetry — is deliberately *not* journaled: it is either rebuilt on
//! demand by the ordinary pipeline or pure diagnostics.
//!
//! The journal is **off by default** ([`JournalConfig::enabled`] =
//! `false`): no component logs ops, `record` is a never-taken branch, and
//! every previously committed figure stays byte-identical.

use crate::clients::ClientTracker;
use crate::cluster::InstanceAddr;
use crate::controller::{AggregateRule, ControllerConfig, InstalledPair};
use crate::flowmemory::{FlowKey, FlowMemory, FlowOp, IngressId, MemorizedFlow};
use crate::health::{BreakerSnapshot, HealthMonitor, HealthOp};
use crate::migrate::{MigrationManager, MigrationOp, MigrationSnapshot};
use desim::SimTime;
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::ServiceAddr;
use std::collections::HashMap;

/// Write-ahead journal configuration (the `journal:` YAML block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalConfig {
    /// Whether the journal records at all. Off by default: every component
    /// op log stays `None`, `record` is a never-taken branch, and every
    /// committed figure stays byte-identical.
    pub enabled: bool,
    /// Compact the tail into a snapshot once it holds this many events.
    pub snapshot_every: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            enabled: false,
            snapshot_every: 256,
        }
    }
}

/// One journaled state mutation. Component ops are drained from the
/// mutated structures' own logs; the rest are controller-level mutations
/// of the installed-pair bookkeeping and its satellites.
///
/// Events touching *different* structures commute, so the controller may
/// batch component-op drains at the end of an entry point; events touching
/// the *same* structure are strictly ordered. `PairDead` addresses a pair
/// by its index in the client's vector — stable because replay rebuilds
/// the vector through the very same `PairAdd`/`HandoverSweep` sequence.
#[derive(Clone, Debug)]
pub(crate) enum JournalEvent {
    /// A FlowMemory mutation.
    Flow(FlowOp),
    /// A breaker/outage mutation.
    Health(HealthOp),
    /// A migration-manager mutation.
    Migration(MigrationOp),
    /// A forward/reverse pair was filed into the bookkeeping.
    PairAdd {
        client: Ipv4Addr,
        ingress: IngressId,
        pair: InstalledPair,
    },
    /// The pair at `idx` of `(client, ingress)` was tombstoned.
    PairDead {
        client: Ipv4Addr,
        ingress: IngressId,
        idx: usize,
    },
    /// An attachment-change handover swept `(client, from)`: pairs marked
    /// `teardown_on_handover` were dropped, the rest kept.
    HandoverSweep { client: Ipv4Addr, from: IngressId },
    /// An aggregated wildcard rule was anchored for `(ingress, service)`.
    AggregateSet {
        ingress: IngressId,
        service: ServiceAddr,
        rule: AggregateRule,
    },
    /// The aggregate anchor of `(ingress, service)` was dropped.
    AggregateDrop {
        ingress: IngressId,
        service: ServiceAddr,
    },
    /// Every aggregate anchored on `instance` was dropped (repair sweep).
    AggregateRetainInstance { instance: InstanceAddr },
    /// Every aggregate into `cluster` was dropped (zone outage).
    AggregateRetainCluster { cluster: usize },
    /// `(service, cluster)` was scaled down at `at`, awaiting removal.
    ScaledDown {
        service: ServiceAddr,
        cluster: usize,
        at: SimTime,
    },
    /// `(service, cluster)` left the scaled-down set (removed or timed).
    ScaleRestored { service: ServiceAddr, cluster: usize },
    /// A client was sighted at `(ingress, in_port)` — replayed through the
    /// tracker's `observe`, which reproduces any detected move.
    ClientSeen {
        client: Ipv4Addr,
        ingress: IngressId,
        in_port: u32,
        at: SimTime,
    },
    /// The client's MAC and perceived gateway MAC were learned.
    MacsSeen {
        client: Ipv4Addr,
        client_mac: MacAddr,
        gw_mac: MacAddr,
    },
}

/// A compacted, deterministic export of the controller's recoverable
/// state: every collection sorted by a stable key, so [`Snapshot::encode`]
/// is byte-identical for semantically identical states regardless of hash
/// iteration order.
#[derive(Clone, Debug, Default)]
pub(crate) struct Snapshot {
    pub(crate) memory: Vec<(FlowKey, MemorizedFlow)>,
    /// Per-ingress shards; each shard sorted by client.
    pub(crate) installed: Vec<Vec<(Ipv4Addr, Vec<InstalledPair>)>>,
    pub(crate) aggregates: Vec<((IngressId, ServiceAddr), AggregateRule)>,
    pub(crate) scaled_down: Vec<((ServiceAddr, usize), SimTime)>,
    pub(crate) locations: Vec<(Ipv4Addr, IngressId, u32, SimTime)>,
    pub(crate) client_macs: Vec<(Ipv4Addr, (MacAddr, MacAddr))>,
    pub(crate) breakers: Vec<BreakerSnapshot>,
    pub(crate) outages: Vec<Option<SimTime>>,
    pub(crate) migrate: MigrationSnapshot,
}

impl Snapshot {
    /// Captures the recoverable state from the live structures (the
    /// controller's own fields, or a [`ReplayedState`]'s).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        memory: &FlowMemory,
        installed: &[HashMap<Ipv4Addr, Vec<InstalledPair>>],
        aggregates: &HashMap<(IngressId, ServiceAddr), AggregateRule>,
        scaled_down: &HashMap<(ServiceAddr, usize), SimTime>,
        clients: &ClientTracker,
        client_macs: &HashMap<Ipv4Addr, (MacAddr, MacAddr)>,
        health: &HealthMonitor,
        migrate: &MigrationManager,
    ) -> Snapshot {
        let installed = installed
            .iter()
            .map(|shard| {
                let mut v: Vec<_> = shard.iter().map(|(c, ps)| (*c, ps.clone())).collect();
                v.sort_unstable_by_key(|&(c, _)| c);
                v
            })
            .collect();
        let mut aggregates: Vec<_> = aggregates.iter().map(|(k, r)| (*k, r.clone())).collect();
        aggregates.sort_unstable_by_key(|&((i, s), _)| (i.0, s.ip.octets(), s.port));
        let mut scaled_down: Vec<_> = scaled_down.iter().map(|(k, t)| (*k, *t)).collect();
        scaled_down.sort_unstable_by_key(|&((s, c), _)| (s.ip.octets(), s.port, c));
        let mut client_macs: Vec<_> = client_macs.iter().map(|(c, m)| (*c, *m)).collect();
        client_macs.sort_unstable_by_key(|&(c, _)| c);
        let (breakers, outages) = health.export_state();
        Snapshot {
            memory: memory.export_entries(),
            installed,
            aggregates,
            scaled_down,
            locations: clients.export_locations(),
            client_macs,
            breakers,
            outages,
            migrate: migrate.export_state(),
        }
    }

    /// Deterministic textual encoding — the differential oracle's currency.
    /// Debug formatting over sorted vectors: byte-identical iff the
    /// recoverable state is identical.
    pub(crate) fn encode(&self) -> String {
        format!(
            "memory={:?}\ninstalled={:?}\naggregates={:?}\nscaled_down={:?}\n\
             locations={:?}\nclient_macs={:?}\nbreakers={:?}\noutages={:?}\nmigrate={:?}\n",
            self.memory,
            self.installed,
            self.aggregates,
            self.scaled_down,
            self.locations,
            self.client_macs,
            self.breakers,
            self.outages,
            self.migrate,
        )
    }

    /// Total entries across the snapshot's collections (the recovery
    /// report's "state size").
    pub(crate) fn entry_count(&self) -> usize {
        self.memory.len()
            + self
                .installed
                .iter()
                .flat_map(|shard| shard.iter())
                .map(|(_, ps)| ps.len())
                .sum::<usize>()
            + self.aggregates.len()
            + self.scaled_down.len()
            + self.locations.len()
            + self.client_macs.len()
            + self.migrate.ledger.len()
            + self.migrate.active.len()
    }
}

/// The recoverable state rebuilt by replay: the same component types the
/// controller owns, with op logging off (replay must not re-log).
pub(crate) struct ReplayedState {
    pub(crate) memory: FlowMemory,
    pub(crate) installed: Vec<HashMap<Ipv4Addr, Vec<InstalledPair>>>,
    pub(crate) aggregates: HashMap<(IngressId, ServiceAddr), AggregateRule>,
    pub(crate) scaled_down: HashMap<(ServiceAddr, usize), SimTime>,
    pub(crate) clients: ClientTracker,
    pub(crate) client_macs: HashMap<Ipv4Addr, (MacAddr, MacAddr)>,
    pub(crate) health: HealthMonitor,
    pub(crate) migrate: MigrationManager,
}

impl ReplayedState {
    /// Fresh, empty state under the controller's configuration.
    pub(crate) fn new(config: &ControllerConfig) -> ReplayedState {
        ReplayedState {
            memory: FlowMemory::new(config.memory_idle),
            installed: Vec::new(),
            aggregates: HashMap::new(),
            scaled_down: HashMap::new(),
            clients: ClientTracker::new(),
            client_macs: HashMap::new(),
            health: HealthMonitor::new(config.health),
            migrate: MigrationManager::new(config.migration.clone()),
        }
    }

    /// Restores a compacted snapshot into the (empty) state.
    pub(crate) fn restore(&mut self, snap: &Snapshot) {
        self.memory.restore_entries(&snap.memory);
        self.installed = snap
            .installed
            .iter()
            .map(|shard| shard.iter().map(|(c, ps)| (*c, ps.clone())).collect())
            .collect();
        self.aggregates = snap.aggregates.iter().map(|(k, r)| (*k, r.clone())).collect();
        self.scaled_down = snap.scaled_down.iter().copied().collect();
        self.clients.restore_locations(&snap.locations);
        self.client_macs = snap.client_macs.iter().copied().collect();
        self.health.restore_state(&snap.breakers, &snap.outages);
        self.migrate.restore_state(&snap.migrate);
    }

    fn shard_mut(&mut self, ingress: IngressId) -> &mut HashMap<Ipv4Addr, Vec<InstalledPair>> {
        let idx = ingress.0 as usize;
        if idx >= self.installed.len() {
            self.installed.resize_with(idx + 1, HashMap::new);
        }
        &mut self.installed[idx]
    }

    /// Replays one journal event.
    pub(crate) fn apply(&mut self, ev: &JournalEvent) {
        match ev {
            JournalEvent::Flow(op) => self.memory.apply(op),
            JournalEvent::Health(op) => self.health.apply(op),
            JournalEvent::Migration(op) => self.migrate.apply(op),
            JournalEvent::PairAdd {
                client,
                ingress,
                pair,
            } => {
                self.shard_mut(*ingress)
                    .entry(*client)
                    .or_default()
                    .push(pair.clone());
            }
            JournalEvent::PairDead {
                client,
                ingress,
                idx,
            } => {
                if let Some(pairs) = self
                    .installed
                    .get_mut(ingress.0 as usize)
                    .and_then(|s| s.get_mut(client))
                {
                    if let Some(p) = pairs.get_mut(*idx) {
                        p.dead = true;
                    }
                }
            }
            JournalEvent::HandoverSweep { client, from } => {
                if let Some(shard) = self.installed.get_mut(from.0 as usize) {
                    if let Some(mut pairs) = shard.remove(client) {
                        pairs.retain(|p| !p.teardown_on_handover);
                        if !pairs.is_empty() {
                            shard.insert(*client, pairs);
                        }
                    }
                }
            }
            JournalEvent::AggregateSet {
                ingress,
                service,
                rule,
            } => {
                self.aggregates.insert((*ingress, *service), rule.clone());
            }
            JournalEvent::AggregateDrop { ingress, service } => {
                self.aggregates.remove(&(*ingress, *service));
            }
            JournalEvent::AggregateRetainInstance { instance } => {
                self.aggregates.retain(|_, r| r.instance != *instance);
            }
            JournalEvent::AggregateRetainCluster { cluster } => {
                self.aggregates.retain(|_, r| r.cluster != *cluster);
            }
            JournalEvent::ScaledDown {
                service,
                cluster,
                at,
            } => {
                self.scaled_down.insert((*service, *cluster), *at);
            }
            JournalEvent::ScaleRestored { service, cluster } => {
                self.scaled_down.remove(&(*service, *cluster));
            }
            JournalEvent::ClientSeen {
                client,
                ingress,
                in_port,
                at,
            } => {
                self.clients.observe(*client, *ingress, *in_port, *at);
            }
            JournalEvent::MacsSeen {
                client,
                client_mac,
                gw_mac,
            } => {
                self.client_macs.insert(*client, (*client_mac, *gw_mac));
            }
        }
    }

    /// The rebuilt state's own snapshot (for the differential oracle).
    pub(crate) fn snapshot(&self) -> Snapshot {
        Snapshot::capture(
            &self.memory,
            &self.installed,
            &self.aggregates,
            &self.scaled_down,
            &self.clients,
            &self.client_macs,
            &self.health,
            &self.migrate,
        )
    }
}

/// Read-only journal counters (the bench and the recovery report read
/// these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Whether the journal is recording.
    pub enabled: bool,
    /// Events appended over the journal's lifetime (pre-compaction
    /// included).
    pub appended: u64,
    /// Events currently in the tail (since the last compaction).
    pub tail_len: usize,
    /// Compactions performed.
    pub snapshots_taken: u64,
    /// Entries in the current compacted snapshot (0 when none).
    pub snapshot_entries: usize,
}

/// The write-ahead journal: an optional compacted [`Snapshot`] plus the
/// tail of [`JournalEvent`]s since.
pub struct Journal {
    config: JournalConfig,
    snapshot: Option<Snapshot>,
    tail: Vec<JournalEvent>,
    appended: u64,
    snapshots_taken: u64,
}

impl Journal {
    /// A journal under `config` — empty, no snapshot.
    pub(crate) fn new(config: JournalConfig) -> Journal {
        Journal {
            config,
            snapshot: None,
            tail: Vec::new(),
            appended: 0,
            snapshots_taken: 0,
        }
    }

    /// Whether the journal records at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Appends one event (a no-op while disabled).
    pub(crate) fn record(&mut self, ev: JournalEvent) {
        if self.config.enabled {
            self.tail.push(ev);
            self.appended += 1;
        }
    }

    /// Whether the tail has grown past the compaction threshold.
    pub(crate) fn should_compact(&self) -> bool {
        self.config.enabled && self.tail.len() >= self.config.snapshot_every.max(1)
    }

    /// Replaces snapshot + tail with a freshly captured snapshot. The
    /// caller captures it *after* the tail's last event took effect, so
    /// snapshot ≡ old-snapshot + tail.
    pub(crate) fn compact(&mut self, snap: Snapshot) {
        self.snapshot = Some(snap);
        self.tail.clear();
        self.snapshots_taken += 1;
    }

    /// Rebuilds the recoverable state: restore the snapshot, replay the
    /// tail. Returns the state, the tail events replayed, and the entries
    /// restored from the snapshot.
    pub(crate) fn rebuild(&self, config: &ControllerConfig) -> (ReplayedState, usize, usize) {
        let mut st = ReplayedState::new(config);
        let mut snapshot_entries = 0;
        if let Some(snap) = &self.snapshot {
            snapshot_entries = snap.entry_count();
            st.restore(snap);
        }
        for ev in &self.tail {
            st.apply(ev);
        }
        (st, self.tail.len(), snapshot_entries)
    }

    /// Drops everything — the cold-restart (and post-warm-rebuild) reset:
    /// the journal restarts from the recovered state's next mutation.
    pub(crate) fn reset(&mut self) {
        self.snapshot = None;
        self.tail.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            enabled: self.config.enabled,
            appended: self.appended,
            tail_len: self.tail.len(),
            snapshots_taken: self.snapshots_taken,
            snapshot_entries: self.snapshot.as_ref().map_or(0, Snapshot::entry_count),
        }
    }
}

/// How a restarted controller rebuilds its state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Restore the journal snapshot and replay the tail, then reconcile.
    Warm,
    /// Start empty; reconciliation, `FLOW_REMOVED`, and packet-in
    /// re-dispatch rebuild everything on demand.
    Cold,
}

impl RecoveryMode {
    /// Short lowercase label (`"warm"` / `"cold"`).
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMode::Warm => "warm",
            RecoveryMode::Cold => "cold",
        }
    }
}

/// What a crash-restart did (the HA bench reads this).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// The mode that ran.
    pub mode: RecoveryMode,
    /// Tail events replayed (0 for cold).
    pub replayed_events: usize,
    /// Entries restored from the compacted snapshot (0 for cold or when
    /// no compaction had happened).
    pub snapshot_entries: usize,
    /// In-flight migrations aborted because their pinned transfer cannot
    /// survive the crash.
    pub aborted_migrations: usize,
    /// Wall-clock nanoseconds the rebuild took (replay throughput; not
    /// simulation time and not deterministic across machines).
    pub replay_wall_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off() {
        let c = JournalConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.snapshot_every, 256);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = Journal::new(JournalConfig::default());
        j.record(JournalEvent::ScaleRestored {
            service: ServiceAddr {
                ip: Ipv4Addr::new(10, 0, 0, 1),
                port: 80,
            },
            cluster: 0,
        });
        assert_eq!(j.stats().appended, 0);
        assert_eq!(j.stats().tail_len, 0);
        assert!(!j.should_compact());
    }

    #[test]
    fn compaction_replaces_tail_with_snapshot() {
        let mut j = Journal::new(JournalConfig {
            enabled: true,
            snapshot_every: 2,
        });
        let svc = ServiceAddr {
            ip: Ipv4Addr::new(10, 0, 0, 1),
            port: 80,
        };
        j.record(JournalEvent::ScaledDown {
            service: svc,
            cluster: 0,
            at: SimTime::ZERO,
        });
        assert!(!j.should_compact());
        j.record(JournalEvent::ScaleRestored {
            service: svc,
            cluster: 0,
        });
        assert!(j.should_compact());
        j.compact(Snapshot::default());
        let s = j.stats();
        assert_eq!((s.tail_len, s.snapshots_taken, s.appended), (0, 1, 2));
    }

    #[test]
    fn rebuild_replays_scale_events_over_the_snapshot() {
        let cfg = ControllerConfig::default();
        let mut j = Journal::new(JournalConfig {
            enabled: true,
            snapshot_every: 1000,
        });
        let svc = ServiceAddr {
            ip: Ipv4Addr::new(10, 0, 0, 1),
            port: 80,
        };
        j.record(JournalEvent::ScaledDown {
            service: svc,
            cluster: 2,
            at: SimTime::from_secs(5),
        });
        j.record(JournalEvent::ClientSeen {
            client: Ipv4Addr::new(192, 168, 1, 9),
            ingress: IngressId(0),
            in_port: 4,
            at: SimTime::from_secs(6),
        });
        let (st, replayed, snap_entries) = j.rebuild(&cfg);
        assert_eq!((replayed, snap_entries), (2, 0));
        assert_eq!(
            st.scaled_down.get(&(svc, 2)).copied(),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(
            st.clients.location(Ipv4Addr::new(192, 168, 1, 9)),
            Some((IngressId(0), 4))
        );
    }
}
