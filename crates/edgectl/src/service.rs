//! The edge service registry.
//!
//! Services are registered with the mobile edge platform provider and
//! identified by their unique combination of domain name/IP address and port
//! number (Section II). The registry maps that cloud-facing address to the
//! deployable artefact: the annotated service definition and its runtime
//! profile.

use crate::annotate::AnnotatedService;
use containerd::ServiceProfile;
use netsim::ServiceAddr;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A registered edge service.
#[derive(Clone, Debug)]
pub struct EdgeService {
    /// The cloud address clients use (the registration key).
    pub addr: ServiceAddr,
    /// Unique worldwide service name (assigned during annotation).
    pub name: String,
    /// The annotated deployment definition.
    pub annotated: AnnotatedService,
    /// Runtime/traffic profile (images, readiness, processing model).
    pub profile: ServiceProfile,
}

/// The registry of services eligible for transparent edge redirection.
/// Requests to addresses not present here are forwarded to the cloud
/// untouched.
///
/// Entries are reference-counted so the controller's packet-in fast path can
/// take a cheap shared handle ([`ServiceRegistry::get_shared`]) instead of
/// deep-cloning the annotated YAML and manifest strings per packet.
#[derive(Default)]
pub struct ServiceRegistry {
    services: BTreeMap<ServiceAddr, Rc<EdgeService>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Registers a service; replaces an existing registration for the same
    /// address and returns the previous one, if any.
    pub fn register(&mut self, service: EdgeService) -> Option<Rc<EdgeService>> {
        self.services.insert(service.addr, Rc::new(service))
    }

    /// Removes a registration.
    pub fn deregister(&mut self, addr: ServiceAddr) -> Option<Rc<EdgeService>> {
        self.services.remove(&addr)
    }

    /// Looks up the service registered at `addr`.
    pub fn get(&self, addr: ServiceAddr) -> Option<&EdgeService> {
        self.services.get(&addr).map(|rc| rc.as_ref())
    }

    /// Shared-handle lookup for hot paths: clones an `Rc`, never the
    /// underlying service definition.
    pub fn get_shared(&self, addr: ServiceAddr) -> Option<Rc<EdgeService>> {
        self.services.get(&addr).cloned()
    }

    /// `true` if `addr` belongs to a registered edge service.
    pub fn is_registered(&self, addr: ServiceAddr) -> bool {
        self.services.contains_key(&addr)
    }

    /// All registered services in address order.
    pub fn iter(&self) -> impl Iterator<Item = &EdgeService> {
        self.services.values().map(|rc| rc.as_ref())
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_deployment;
    use netsim::addr::Ipv4Addr;

    fn service(ip: [u8; 4], port: u16, key: &str) -> EdgeService {
        let profile = containerd::ServiceSet::by_key(key).unwrap();
        let addr = ServiceAddr::new(Ipv4Addr(ip), port);
        let yaml = format!(
            "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n",
            profile.manifests[0].reference
        );
        let annotated = annotate_deployment(&yaml, addr, None).unwrap();
        EdgeService {
            addr,
            name: annotated.service_name.clone(),
            annotated,
            profile,
        }
    }

    #[test]
    fn register_lookup_deregister() {
        let mut r = ServiceRegistry::new();
        assert!(r.is_empty());
        let svc = service([203, 0, 113, 10], 80, "nginx");
        let addr = svc.addr;
        assert!(r.register(svc).is_none());
        assert!(r.is_registered(addr));
        assert_eq!(r.get(addr).unwrap().profile.key, "nginx");
        assert_eq!(r.len(), 1);
        assert!(!r.is_registered(ServiceAddr::new(Ipv4Addr([203, 0, 113, 10]), 443)));
        assert!(r.deregister(addr).is_some());
        assert!(r.is_empty());
    }

    #[test]
    fn same_ip_different_port_are_distinct_services() {
        let mut r = ServiceRegistry::new();
        r.register(service([203, 0, 113, 10], 80, "nginx"));
        r.register(service([203, 0, 113, 10], 8501, "resnet"));
        assert_eq!(r.len(), 2);
        let keys: Vec<&str> = r.iter().map(|s| s.profile.key).collect();
        assert_eq!(keys, ["nginx", "resnet"]);
    }

    #[test]
    fn re_registration_replaces() {
        let mut r = ServiceRegistry::new();
        r.register(service([203, 0, 113, 10], 80, "nginx"));
        let old = r.register(service([203, 0, 113, 10], 80, "asm"));
        assert_eq!(old.unwrap().profile.key, "nginx");
        assert_eq!(r.get(ServiceAddr::new(Ipv4Addr([203, 0, 113, 10]), 80)).unwrap().profile.key, "asm");
    }
}
