//! The SDN controller: OpenFlow packet-in handling, redirect flow
//! installation, buffered-packet release, and idle scale-down.
//!
//! The controller speaks real OpenFlow bytes on its switch channel. For each
//! table-miss `PACKET_IN` to a registered service it runs the Dispatcher and
//! answers — possibly later, for on-demand deployment *with waiting* — with:
//!
//! * a **forward flow**: match the client connection to the service address,
//!   rewrite MAC/IP/port toward the chosen instance, output toward its
//!   cluster (releasing the buffered packet through the new flow);
//! * a **reverse flow**: match the instance's replies to this client and
//!   rewrite the source back to the registered cloud address — the client
//!   never learns the edge exists.
//!
//! Expired switch flows (`FLOW_REMOVED`) and the controller's own FlowMemory
//! timeouts feed the idle-service scale-down (Section V).

use crate::autoscale::{AutoscaleConfig, LoadTracker, ScaleEvent};
use crate::clients::ClientTracker;
use crate::cluster::{EdgeCluster, InstanceAddr};
use crate::dispatch::{DispatchDecision, DispatchOutcome, Dispatcher, PhaseTimes};
use crate::flowmemory::{FlowMemory, IngressId};
use crate::health::{BreakerState, HealthConfig, HealthMonitor};
use crate::journal::{
    Journal, JournalConfig, JournalEvent, JournalStats, RecoveryMode, RecoveryReport, Snapshot,
};
use crate::migrate::{Migration, MigrationConfig, MigrationManager, MigrationReason};
use crate::scheduler::{GlobalScheduler, RequestClass};
use crate::service::EdgeService;
use desim::{Duration, LogNormal, RetryPolicy, Sample, SimRng, SimTime};
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::{ServiceAddr, TcpFrame};
use openflow::actions::{Action, Instruction};
use openflow::messages::{Message, OFPFF_SEND_FLOW_REM};
use openflow::oxm::{Match, OxmField};
use openflow::{FlowEntry, OfError, OFP_NO_BUFFER};
use std::collections::HashMap;
use telemetry::{SpanId, Telemetry};

/// Maps clusters and the cloud to switch egress ports.
#[derive(Clone, Debug, Default)]
pub struct PortMap {
    /// Cluster name → switch port leading to it.
    pub cluster_ports: HashMap<String, u32>,
    /// Port toward the cloud uplink.
    pub cloud_port: u32,
}

/// Controller configuration (the reference implementation reads these from
/// its config file; see [`crate::config::EdgeConfig`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerConfig {
    /// Idle timeout installed into switch flows (kept low; the FlowMemory
    /// remembers longer).
    pub switch_flow_idle: Duration,
    /// FlowMemory idle timeout (drives idle scale-down).
    pub memory_idle: Duration,
    /// Port-probe interval for readiness polling.
    pub poll_interval: Duration,
    /// Controller packet-in processing latency model.
    pub processing: LogNormal,
    /// Priority of installed redirect flows.
    pub flow_priority: u16,
    /// Scale idle services down when their last memorized flow expires.
    pub scale_down_idle: bool,
    /// Remove a scaled-down service entirely (delete containers /
    /// Deployment+Service) after this long without a redeploy — the paper's
    /// **Remove** phase. `None` keeps created-but-stopped services around
    /// (cheap, faster next scale-up).
    pub remove_after: Option<Duration>,
    /// Per-phase retry/backoff/deadline policy for deployment phases.
    pub retry: RetryPolicy,
    /// Runtime health: failure-detection interval and circuit-breaker
    /// tuning (the `health:` YAML block).
    pub health: HealthConfig,
    /// Install one aggregated wildcard rewrite pair per
    /// `(service, ingress, instance)` instead of an exact-match pair per
    /// client connection, whenever the scheduler decision is shared. Keeps
    /// the switch table size proportional to the service catalogue, not the
    /// client population. Off by default: exact pairs are the reference
    /// behavior and every published figure is produced with them.
    pub aggregate_rules: bool,
    /// Keep a [`RequestRecord`] per packet-in for the evaluation harness.
    /// Metrics counters are always maintained; turning this off removes the
    /// per-request allocation and unbounded retention, which matters when a
    /// fleet-scale run pushes 10M+ packet-ins through one controller.
    pub record_requests: bool,
    /// Per-instance queueing and horizontal autoscaling (the `autoscale:`
    /// YAML block). Off by default: the dispatch path never consults the
    /// load tracker then, and every published figure stays byte-identical.
    pub autoscale: AutoscaleConfig,
    /// Live stateful migration between zones (the `migration:` YAML
    /// block). Off by default (`policy: anchored`, zero state per
    /// request): no ledger entry is ever written, no migration ever
    /// starts, and every published figure stays byte-identical.
    pub migration: MigrationConfig,
    /// Crash-recovery write-ahead journal (the `journal:` YAML block).
    /// Off by default: no component logs ops, no event is ever recorded,
    /// and every published figure stays byte-identical.
    pub journal: JournalConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            switch_flow_idle: Duration::from_secs(10),
            memory_idle: Duration::from_secs(60),
            poll_interval: Duration::from_millis(25),
            processing: LogNormal::from_median(0.0015, 0.30),
            flow_priority: 100,
            scale_down_idle: true,
            remove_after: None,
            retry: RetryPolicy::default(),
            health: HealthConfig::default(),
            aggregate_rules: false,
            record_requests: true,
            autoscale: AutoscaleConfig::default(),
            migration: MigrationConfig::default(),
            journal: JournalConfig::default(),
        }
    }
}

/// An OpenFlow message scheduled toward the switch at a given instant
/// (possibly later than the triggering event: the *with waiting* hold).
#[derive(Clone, Debug, PartialEq)]
pub struct OutboundMessage {
    /// When the controller emits it.
    pub at: SimTime,
    /// Encoded OpenFlow bytes.
    pub data: Vec<u8>,
}

/// How a request was answered (for the evaluation harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Answered from FlowMemory (no scheduling).
    MemoryHit,
    /// Instance was ready; immediate redirect.
    Redirect,
    /// On-demand deployment with waiting.
    Waited,
    /// Forwarded toward the cloud.
    Cloud,
    /// Held for a with-waiting deployment that exhausted its retries; the
    /// request was released toward the cloud (graceful degradation).
    FallbackCloud,
    /// Destination was not a registered edge service.
    Unregistered,
}

/// Per-request record for experiments.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Packet-in arrival.
    pub at: SimTime,
    /// Requested service address.
    pub service: ServiceAddr,
    /// Client address.
    pub client: Ipv4Addr,
    /// Outcome kind.
    pub kind: RequestKind,
    /// When the redirect flows were emitted.
    pub answered_at: SimTime,
    /// Deployment phase timing, when a deployment ran.
    pub phases: PhaseTimes,
    /// Cluster index serving the request (edge outcomes only).
    pub cluster: Option<usize>,
    /// When a background (BEST-choice) deployment triggered by this request
    /// will be ready, if one was triggered.
    pub background_ready: Option<SimTime>,
}

/// What the idle sweep did to a service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleAction {
    /// The service was scaled to zero (containers stopped / replicas=0).
    ScaleDown,
    /// The service was removed entirely (containers / Deployment deleted).
    Remove,
}

/// A lifecycle action taken by the idle sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleDownEvent {
    /// When.
    pub at: SimTime,
    /// The idle service.
    pub service: ServiceAddr,
    /// Cluster acted on.
    pub cluster: String,
    /// What happened.
    pub action: LifecycleAction,
}

/// How the controller treats a client's live sessions when it hands them
/// over to a new ingress (gNB).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandoverPolicy {
    /// Keep each session anchored to the instance that already serves it
    /// (the old zone's edge), as long as that instance is still up; only
    /// sessions whose instance vanished are re-dispatched. Zero service-side
    /// state moves, at the cost of a longer data path through the new gNB.
    Anchored,
    /// Re-place every session through the Global Scheduler (with a
    /// [`RequestClass::Handover`] context and distances measured from the
    /// **new** ingress), re-using the on-demand deployment pipeline when the
    /// new zone has no instance yet.
    Redispatch,
}

impl HandoverPolicy {
    /// Short lowercase label (`"anchored"` / `"redispatch"`).
    pub fn label(self) -> &'static str {
        match self {
            HandoverPolicy::Anchored => "anchored",
            HandoverPolicy::Redispatch => "redispatch",
        }
    }
}

/// Result of one attachment-change handover.
#[derive(Clone, Debug)]
pub struct HandoverOutcome {
    /// When the attachment change was reported.
    pub at: SimTime,
    /// When every migrated session had its flows installed at the new
    /// ingress — the make-before-break point; `completed_at - at` is the
    /// control-plane interruption the session observed.
    pub completed_at: SimTime,
    /// Sessions migrated to the new ingress (anchored + re-dispatched).
    pub flows_migrated: usize,
    /// Of those, sessions the scheduler re-placed (possibly on a new
    /// cluster) rather than kept anchored.
    pub redispatched: usize,
    /// OpenFlow messages to deliver, each tagged with the ingress switch it
    /// goes to. New-ingress installs precede old-ingress teardowns.
    pub messages: Vec<(IngressId, OutboundMessage)>,
}

/// One flow as the controller believes it exists on a switch — enough
/// detail to re-install it verbatim during reconciliation.
#[derive(Clone, Debug)]
pub(crate) struct InstalledFlow {
    pub(crate) match_: Match,
    pub(crate) instructions: Vec<Instruction>,
    pub(crate) priority: u16,
    pub(crate) cookie: u64,
    pub(crate) flags: u16,
}

/// A forward/reverse flow pair the controller installed for one session,
/// with enough context for the self-healing loop: which service/cluster/
/// instance it redirects to (repair tears down exactly the pairs aimed at a
/// dead instance) and whether a handover retires it.
#[derive(Clone, Debug)]
pub(crate) struct InstalledPair {
    pub(crate) fwd: InstalledFlow,
    pub(crate) rev: InstalledFlow,
    pub(crate) service: ServiceAddr,
    /// Cluster the pair redirects into; `None` for cloud-forwarding pairs.
    pub(crate) cluster: Option<usize>,
    /// Instance the forward flow rewrites toward; `None` for cloud pairs.
    pub(crate) instance: Option<InstanceAddr>,
    /// Whether an attachment-change handover tears this pair down. Redirect
    /// and handover pairs are; plain packet-in cloud paths never were (they
    /// just idle out), and reconciliation must not change that.
    pub(crate) teardown_on_handover: bool,
    /// Tombstone: the switch reported the flow gone (`FLOW_REMOVED`) or a
    /// repair tore it down. Dead pairs are kept — not removed — so the
    /// handover teardown's message sequence is exactly what it was before
    /// reconciliation existed; reconciliation simply skips them.
    pub(crate) dead: bool,
}

/// Bookkeeping client address for aggregated wildcard pairs: they belong to
/// no single client, so they are filed under the unspecified address. It
/// sorts before every real client, and no real client can carry it (the
/// allocators start at 10.x/192.168.x), so repair and outage sweeps visit
/// aggregates first and exactly once.
const AGGREGATE_CLIENT: Ipv4Addr = Ipv4Addr::UNSPECIFIED;

/// One live aggregated rule pair, keyed by `(ingress, service)` in
/// [`Controller::aggregates`]. A packet-in whose scheduler decision matches
/// the anchored instance (and arrives through the same client-side port,
/// behind the same perceived gateway) is *covered*: the controller releases
/// the packet with a bare `PACKET_OUT` and installs nothing.
#[derive(Clone, Debug)]
pub(crate) struct AggregateRule {
    pub(crate) instance: InstanceAddr,
    pub(crate) cluster: usize,
    /// Shared client-side port replies are emitted through.
    pub(crate) in_port: u32,
    /// The gateway MAC clients perceive (the `eth_dst` of their requests);
    /// replies are re-sourced from it.
    pub(crate) gw_mac: MacAddr,
    /// The forward rewrite, cached so a covered packet-in releases its
    /// buffered packet without rebuilding the action list.
    pub(crate) fwd_actions: Vec<Action>,
}

/// A control-plane inconsistency the controller detected and survived
/// (instead of panicking): the affected request degrades gracefully — a
/// redirect with no usable egress port becomes a cloud forward — and the
/// condition is recorded here for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlPlaneError {
    /// No egress port is mapped toward `cluster` on `ingress` (a PortMap
    /// misconfiguration); the session was forwarded to the cloud instead.
    MissingClusterPort {
        /// The ingress whose port map lacks the cluster.
        ingress: IngressId,
        /// The unroutable cluster index.
        cluster: usize,
    },
}

/// The transparent-edge SDN controller.
pub struct Controller {
    services: crate::service::ServiceRegistry,
    clusters: Vec<Box<dyn EdgeCluster>>,
    dispatcher: Dispatcher,
    memory: FlowMemory,
    /// Per-ingress port maps; index = [`IngressId`]. The seed deployment's
    /// single switch lives at ingress 0.
    ingresses: Vec<PortMap>,
    /// Cluster latency as seen from a given ingress, when it differs from
    /// the cluster's advertised latency (which is measured from ingress 0).
    ingress_distances: HashMap<(IngressId, usize), Duration>,
    /// Flow pairs installed per client, sharded by ingress (outer index =
    /// [`IngressId`]) — the controller-side bookkeeping that makes handover
    /// teardown, stale-redirect repair and channel-reconnect reconciliation
    /// possible: switch-side deletion is exact-match, so the controller must
    /// remember what it installed. Sharding keeps per-packet bookkeeping and
    /// per-switch reconciliation O(one cell) at fleet scale.
    installed: Vec<HashMap<Ipv4Addr, Vec<InstalledPair>>>,
    /// Live aggregated rule pairs by `(ingress, service)`; their bookkeeping
    /// pairs are filed under [`AGGREGATE_CLIENT`] in `installed`.
    aggregates: HashMap<(IngressId, ServiceAddr), AggregateRule>,
    /// `FLOW_MOD` **Add** messages emitted over the controller's lifetime —
    /// the controller's own view of how much switch table space it has
    /// claimed (the scale benchmark reads this to compare exact-match vs
    /// aggregated rule footprints).
    pub flow_adds: u64,
    config: ControllerConfig,
    next_xid: u32,
    /// Per-request records (the harness reads these).
    pub records: Vec<RequestRecord>,
    /// Count of `FLOW_REMOVED` notifications seen.
    pub flows_removed: u64,
    /// Client location tracking (moves flush the client's memorized flows).
    pub clients: ClientTracker,
    /// Errors reported by the switch.
    pub switch_errors: Vec<(openflow::messages::ErrorType, u16)>,
    /// Services scaled down and when, awaiting possible removal.
    scaled_down: HashMap<(ServiceAddr, usize), SimTime>,
    /// Requests currently held for a with-waiting deployment, by
    /// (service, cluster): the latest release instant. The idle sweep must
    /// not scale a service down while such a hold is pending — the held
    /// client would be redirected to a stopped instance.
    held: HashMap<(ServiceAddr, usize), SimTime>,
    /// Idle expiries deferred because a held request pinned the service;
    /// re-examined once the hold drains.
    deferred: HashMap<(ServiceAddr, usize), SimTime>,
    /// The most recent flow-statistics reply (see
    /// [`Controller::request_flow_stats`]).
    pub last_flow_stats: Option<Vec<openflow::messages::FlowStatsEntry>>,
    /// Telemetry endpoint: a disabled endpoint by default (every span/event
    /// call is a never-taken branch); swap in a recording one with
    /// [`Telemetry::recording`] to capture per-request span trees. Metric
    /// counters are always maintained — they are plain integer bumps on the
    /// controller path and never touch the switch fast path.
    pub telemetry: Telemetry,
    /// Request ids handed to spans; each packet-in gets the id its record
    /// will have (index + 1).
    next_request: u64,
    /// When each instance crashed (fault injection), so the repair sweep's
    /// `stale_redirect_repair_ns` histogram measures crash→repair latency.
    crash_records: HashMap<InstanceAddr, SimTime>,
    /// Recycled per-packet-in buffer for resolved ingress distances, so the
    /// hot path never allocates for them.
    distance_scratch: Vec<Duration>,
    /// Live-migration state: the session-state ledger, in-flight
    /// transfers, and completed [`crate::migrate::MigrationRecord`]s (the
    /// evaluation harness reads `migrate.records`).
    pub migrate: MigrationManager,
    /// Last seen `(client MAC, perceived gateway MAC)` per client, learned
    /// from packet-ins and announced handovers. The migration flow flip
    /// re-installs reverse rewrites at the client's switch and needs both.
    client_macs: HashMap<Ipv4Addr, (MacAddr, MacAddr)>,
    /// Open telemetry spans of in-flight migrations, by request id.
    migration_spans: HashMap<u64, SpanId>,
    /// The crash-recovery write-ahead journal (inert unless
    /// `config.journal.enabled`).
    journal: Journal,
    /// Control-plane inconsistencies survived (see [`ControlPlaneError`]).
    pub control_errors: Vec<ControlPlaneError>,
}

impl Controller {
    /// Creates a controller with the given Global Scheduler.
    pub fn new(
        scheduler: Box<dyn GlobalScheduler>,
        ports: PortMap,
        config: ControllerConfig,
    ) -> Controller {
        let mut dispatcher = Dispatcher::new(scheduler, config.poll_interval);
        dispatcher.set_retry_policy(config.retry);
        dispatcher.health_mut().set_config(config.health);
        dispatcher.set_autoscale(config.autoscale.clone());
        let mut migrate = MigrationManager::new(config.migration.clone());
        let journal = Journal::new(config.journal);
        let mut memory = FlowMemory::new(config.memory_idle);
        if journal.enabled() {
            memory.set_logging(true);
            dispatcher.health_mut().set_logging(true);
            migrate.set_logging(true);
        }
        Controller {
            services: crate::service::ServiceRegistry::new(),
            clusters: Vec::new(),
            dispatcher,
            memory,
            ingresses: vec![ports],
            ingress_distances: HashMap::new(),
            installed: Vec::new(),
            aggregates: HashMap::new(),
            flow_adds: 0,
            config,
            next_xid: 1,
            records: Vec::new(),
            flows_removed: 0,
            clients: ClientTracker::new(),
            switch_errors: Vec::new(),
            scaled_down: HashMap::new(),
            held: HashMap::new(),
            deferred: HashMap::new(),
            last_flow_stats: None,
            telemetry: Telemetry::disabled(),
            next_request: 0,
            crash_records: HashMap::new(),
            distance_scratch: Vec::new(),
            migrate,
            client_macs: HashMap::new(),
            migration_spans: HashMap::new(),
            journal,
            control_errors: Vec::new(),
        }
    }

    /// How many requests coalesced onto an already-failed deployment
    /// (single-flight hits in the dispatcher).
    pub fn coalesced_count(&self) -> u64 {
        self.dispatcher.coalesced_count()
    }

    /// Appends one controller-level event to the journal (a never-taken
    /// branch while the journal is off).
    fn journal_record(&mut self, ev: JournalEvent) {
        self.journal.record(ev);
    }

    /// Drains the component op logs into the journal and compacts when the
    /// tail passed its threshold. Called at the end of every public
    /// mutating entry point; events of different structures commute, so
    /// batching the drain does not change what replay rebuilds. A no-op
    /// while the journal is off.
    fn journal_sync(&mut self) {
        if !self.journal.enabled() {
            return;
        }
        for op in self.memory.take_ops() {
            self.journal.record(JournalEvent::Flow(op));
        }
        for op in self.dispatcher.health_mut().take_ops() {
            self.journal.record(JournalEvent::Health(op));
        }
        for op in self.migrate.take_ops() {
            self.journal.record(JournalEvent::Migration(op));
        }
        if self.journal.should_compact() {
            // Captured after the tail's last event took effect, so the
            // compacted snapshot equals old-snapshot + tail exactly.
            let snap = self.capture_snapshot();
            self.journal.compact(snap);
        }
    }

    /// Captures the recoverable state (sorted, deterministic).
    fn capture_snapshot(&self) -> Snapshot {
        Snapshot::capture(
            &self.memory,
            &self.installed,
            &self.aggregates,
            &self.scaled_down,
            &self.clients,
            &self.client_macs,
            self.dispatcher.health(),
            &self.migrate,
        )
    }

    /// Deterministic textual digest of the recoverable state. Two
    /// controllers with identical recoverable state produce byte-identical
    /// digests — the differential oracle the crash-recovery tests compare.
    pub fn state_digest(&self) -> String {
        self.capture_snapshot().encode()
    }

    /// Rebuilds state from the journal (snapshot + tail) and digests it,
    /// without touching the live controller. `None` while the journal is
    /// off. Equal to [`Controller::state_digest`] at every mutation
    /// boundary — the compaction test's oracle.
    pub fn journal_rebuild_digest(&self) -> Option<String> {
        if !self.journal.enabled() {
            return None;
        }
        let (st, _, _) = self.journal.rebuild(&self.config);
        Some(st.snapshot().encode())
    }

    /// Journal counters (events appended, tail length, compactions).
    pub fn journal_stats(&self) -> JournalStats {
        self.journal.stats()
    }

    /// Simulates a controller process crash followed by a restart at
    /// `now`: every piece of in-memory state a real process death loses is
    /// wiped, then rebuilt according to `mode` — **warm** restores the
    /// journal snapshot and replays the tail; **cold** starts empty and
    /// leans on reconciliation plus packet-in re-dispatch. In both modes
    /// volatile state (held requests, deferred expiries, in-flight
    /// single-flight deployments) is dropped, and in-flight migrations
    /// that cannot survive the death of their coordinator are aborted
    /// (session state stays in the source ledger; the trigger re-fires).
    ///
    /// Cluster handles, the service registry, ingress port maps and the
    /// monotone counters (xids, request ids) are the process's *durable
    /// environment* — config and restart-safe identifier ranges — and
    /// survive. After this returns, run [`Controller::reconcile`] against
    /// each live switch table to converge the drift accrued during the
    /// blackout; a second pass returns nothing.
    pub fn crash_restart(&mut self, mode: RecoveryMode, _now: SimTime) -> RecoveryReport {
        let t0 = std::time::Instant::now();
        let (replayed_events, snapshot_entries) = match mode {
            RecoveryMode::Warm if self.journal.enabled() => {
                let (st, replayed, snap_entries) = self.journal.rebuild(&self.config);
                self.memory = st.memory;
                self.installed = st.installed;
                self.aggregates = st.aggregates;
                self.scaled_down = st.scaled_down;
                self.clients = st.clients;
                self.client_macs = st.client_macs;
                *self.dispatcher.health_mut() = st.health;
                self.migrate = st.migrate;
                (replayed, snap_entries)
            }
            _ => {
                self.memory = FlowMemory::new(self.config.memory_idle);
                self.installed = Vec::new();
                self.aggregates = HashMap::new();
                self.scaled_down = HashMap::new();
                self.clients = ClientTracker::new();
                self.client_macs = HashMap::new();
                *self.dispatcher.health_mut() = HealthMonitor::new(self.config.health);
                self.migrate = MigrationManager::new(self.config.migration.clone());
                (0, 0)
            }
        };
        // The journal restarts from the recovered state's next mutation
        // (its pre-crash contents are already folded into that state or
        // deliberately discarded).
        self.journal.reset();
        // Volatile state a process death loses in both modes.
        self.held.clear();
        self.deferred.clear();
        self.dispatcher.reset_volatile();
        self.crash_records.clear();
        self.migration_spans.clear();
        self.last_flow_stats = None;
        // Re-arm op logging on the freshly built components, and re-seed
        // the journal with a snapshot of the recovered state — otherwise a
        // *second* crash would rebuild from an empty journal and lose it.
        if self.journal.enabled() {
            self.memory.set_logging(true);
            self.dispatcher.health_mut().set_logging(true);
            self.migrate.set_logging(true);
            let snap = self.capture_snapshot();
            self.journal.compact(snap);
        }
        // In-flight migrations lost their coordinator: abort them (state
        // stays at the source; the breaker/mobility trigger re-fires).
        let aborted_migrations = self.migrate.abort_all();
        if aborted_migrations > 0 {
            self.telemetry
                .metrics
                .add("migrations_aborted", aborted_migrations as u64);
        }
        self.telemetry.metrics.inc("controller_restarts");
        self.journal_sync();
        RecoveryReport {
            mode,
            replayed_events,
            snapshot_entries,
            aborted_migrations,
            replay_wall_ns: t0.elapsed().as_nanos() as u64,
        }
    }

    /// The bookkeeping shard of one ingress, grown on demand.
    fn installed_shard_mut(&mut self, ingress: IngressId) -> &mut HashMap<Ipv4Addr, Vec<InstalledPair>> {
        let idx = ingress.0 as usize;
        if idx >= self.installed.len() {
            self.installed.resize_with(idx + 1, HashMap::new);
        }
        &mut self.installed[idx]
    }

    /// The installed pairs of one `(client, ingress)`, if any.
    fn installed_pairs_mut(
        &mut self,
        client: Ipv4Addr,
        ingress: IngressId,
    ) -> Option<&mut Vec<InstalledPair>> {
        self.installed.get_mut(ingress.0 as usize)?.get_mut(&client)
    }

    /// Every `(client, ingress)` with bookkeeping, sorted — fleet-wide
    /// repair sweeps iterate in this order so their message sequences are
    /// deterministic (and identical to the pre-sharding layout's).
    fn installed_keys_sorted(&self) -> Vec<(Ipv4Addr, IngressId)> {
        let mut keys: Vec<(Ipv4Addr, IngressId)> = self
            .installed
            .iter()
            .enumerate()
            .flat_map(|(i, shard)| shard.keys().map(move |c| (*c, IngressId(i as u32))))
            .collect();
        keys.sort();
        keys
    }

    /// Registers an edge cluster reachable via `switch_port` on the default
    /// ingress. Returns its index.
    pub fn add_cluster(&mut self, cluster: Box<dyn EdgeCluster>, switch_port: u32) -> usize {
        self.ingresses[0]
            .cluster_ports
            .insert(cluster.name().to_owned(), switch_port);
        self.clusters.push(cluster);
        self.clusters.len() - 1
    }

    /// Registers an additional ingress switch (gNB) with its own port map.
    /// Returns its id; the constructor's port map is ingress 0.
    pub fn add_ingress(&mut self, ports: PortMap) -> IngressId {
        self.ingresses.push(ports);
        IngressId(self.ingresses.len() as u32 - 1)
    }

    /// Number of ingress switches under management.
    pub fn ingress_count(&self) -> usize {
        self.ingresses.len()
    }

    /// Maps a cluster to an egress port on one specific ingress (a cluster
    /// may be reachable from every gNB, through different ports).
    pub fn map_cluster_port(&mut self, ingress: IngressId, cluster_name: &str, port: u32) {
        self.ingresses[ingress.0 as usize]
            .cluster_ports
            .insert(cluster_name.to_owned(), port);
    }

    /// Overrides the latency toward `cluster` as seen from `ingress`. The
    /// scheduler's "nearest edge" is relative to where the packet entered;
    /// without an override, the cluster's advertised latency is used.
    pub fn set_ingress_distance(&mut self, ingress: IngressId, cluster: usize, d: Duration) {
        self.ingress_distances.insert((ingress, cluster), d);
    }

    /// Resolved per-cluster distances from `ingress`; `None` when no
    /// override exists for this ingress (advertised latencies apply).
    fn distances_from(&self, ingress: IngressId) -> Option<Vec<Duration>> {
        let mut out = Vec::new();
        self.fill_distances(ingress, &mut out).then_some(out)
    }

    /// Allocation-free form of [`Controller::distances_from`]: fills `out`
    /// (cleared first) and returns whether an override exists for `ingress`.
    /// The packet-in fast path calls this with a recycled buffer.
    fn fill_distances(&self, ingress: IngressId, out: &mut Vec<Duration>) -> bool {
        out.clear();
        if !self
            .ingress_distances
            .keys()
            .any(|(i, _)| *i == ingress)
        {
            return false;
        }
        out.extend((0..self.clusters.len()).map(|c| {
            self.ingress_distances
                .get(&(ingress, c))
                .copied()
                .unwrap_or_else(|| self.clusters[c].latency())
        }));
        true
    }

    /// Registers an edge service.
    pub fn register_service(&mut self, service: EdgeService) {
        self.services.register(service);
    }

    /// The service registry.
    pub fn services(&self) -> &crate::service::ServiceRegistry {
        &self.services
    }

    /// The FlowMemory (stats, tests).
    pub fn memory(&self) -> &FlowMemory {
        &self.memory
    }

    /// Cluster access by index.
    pub fn cluster(&self, idx: usize) -> &dyn EdgeCluster {
        self.clusters[idx].as_ref()
    }

    /// Mutable cluster access (pre-pulls in experiment setup).
    pub fn cluster_mut(&mut self, idx: usize) -> &mut Box<dyn EdgeCluster> {
        &mut self.clusters[idx]
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    fn xid(&mut self) -> u32 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    /// Asks the switch for its installed flows (diagnostics; the reply lands
    /// in [`Controller::last_flow_stats`]).
    pub fn request_flow_stats(&mut self, at: SimTime) -> OutboundMessage {
        let x = self.xid();
        OutboundMessage {
            at,
            data: Message::FlowStatsRequest {
                table_id: 0xff,
                match_: Match::any(),
            }
            .encode(x),
        }
    }

    /// Session bootstrap: HELLO + FEATURES_REQUEST.
    pub fn bootstrap(&mut self) -> Vec<OutboundMessage> {
        vec![
            OutboundMessage {
                at: SimTime::ZERO,
                data: Message::Hello.encode(self.xid()),
            },
            OutboundMessage {
                at: SimTime::ZERO,
                data: Message::FeaturesRequest.encode(self.xid()),
            },
        ]
    }

    /// Handles one encoded message from the default ingress switch.
    pub fn handle_switch_message(
        &mut self,
        now: SimTime,
        bytes: &[u8],
        rng: &mut SimRng,
    ) -> Result<Vec<OutboundMessage>, OfError> {
        self.handle_switch_message_from(IngressId::DEFAULT, now, bytes, rng)
    }

    /// Handles one encoded message from a specific ingress switch. The
    /// returned messages go back to that same switch.
    pub fn handle_switch_message_from(
        &mut self,
        ingress: IngressId,
        now: SimTime,
        bytes: &[u8],
        rng: &mut SimRng,
    ) -> Result<Vec<OutboundMessage>, OfError> {
        let (_xid, msg, _) = Message::decode(bytes)?;
        let out = match msg {
            Message::EchoRequest(payload) => {
                let x = self.xid();
                Ok(vec![OutboundMessage {
                    at: now,
                    data: Message::EchoReply(payload).encode(x),
                }])
            }
            Message::PacketIn {
                buffer_id,
                match_,
                data,
                ..
            } => Ok(self.handle_packet_in(ingress, now, buffer_id, &match_, &data, rng)),
            Message::FlowRemoved { match_, priority, .. } => {
                self.flows_removed += 1;
                self.telemetry.metrics.inc("flows_removed");
                // Tombstone the bookkeeping: the switch no longer holds this
                // flow, so reconciliation must not claim it. Forward flows
                // carry `OFPFF_SEND_FLOW_REM` and match on the client source
                // IP, which keys the bookkeeping.
                let client = match_.fields().iter().find_map(|f| match f {
                    OxmField::Ipv4Src(ip) => Some(Ipv4Addr(*ip)),
                    _ => None,
                });
                if let Some(client) = client {
                    let mut dead_idx: Vec<usize> = Vec::new();
                    if let Some(pairs) = self.installed_pairs_mut(client, ingress) {
                        for (i, p) in pairs.iter_mut().enumerate() {
                            if !p.dead && p.fwd.priority == priority && p.fwd.match_ == match_ {
                                p.dead = true;
                                dead_idx.push(i);
                            }
                        }
                    }
                    for idx in dead_idx {
                        self.journal_record(JournalEvent::PairDead { client, ingress, idx });
                    }
                } else {
                    // No client source in the match: an aggregated pair's
                    // forward flow (it wildcards the client). Tombstone it
                    // and drop the aggregate anchor so the next packet-in
                    // re-installs a fresh pair.
                    let mut gone: Option<ServiceAddr> = None;
                    let mut dead_idx: Vec<usize> = Vec::new();
                    if let Some(pairs) = self.installed_pairs_mut(AGGREGATE_CLIENT, ingress) {
                        for (i, p) in pairs.iter_mut().enumerate() {
                            if !p.dead && p.fwd.priority == priority && p.fwd.match_ == match_ {
                                p.dead = true;
                                gone = Some(p.service);
                                dead_idx.push(i);
                            }
                        }
                    }
                    for idx in dead_idx {
                        self.journal_record(JournalEvent::PairDead {
                            client: AGGREGATE_CLIENT,
                            ingress,
                            idx,
                        });
                    }
                    if let Some(svc) = gone {
                        self.aggregates.remove(&(ingress, svc));
                        self.journal_record(JournalEvent::AggregateDrop {
                            ingress,
                            service: svc,
                        });
                    }
                }
                Ok(vec![])
            }
            Message::Error { error_type, code, .. } => {
                self.switch_errors.push((error_type, code));
                Ok(vec![])
            }
            Message::FlowStatsReply { flows } => {
                self.last_flow_stats = Some(flows);
                Ok(vec![])
            }
            // Session replies need no action.
            Message::Hello
            | Message::EchoReply(_)
            | Message::FeaturesReply { .. }
            | Message::BarrierReply => Ok(vec![]),
            // Messages a switch should not send us.
            Message::FeaturesRequest
            | Message::PacketOut { .. }
            | Message::FlowMod { .. }
            | Message::FlowStatsRequest { .. }
            | Message::BarrierRequest => Ok(vec![]),
        };
        self.journal_sync();
        out
    }

    fn in_port_of(match_: &Match) -> u32 {
        match_
            .fields()
            .iter()
            .find_map(|f| match f {
                OxmField::InPort(p) => Some(*p),
                _ => None,
            })
            .unwrap_or(0)
    }

    fn handle_packet_in(
        &mut self,
        ingress: IngressId,
        now: SimTime,
        buffer_id: u32,
        match_: &Match,
        data: &[u8],
        rng: &mut SimRng,
    ) -> Vec<OutboundMessage> {
        let in_port = Self::in_port_of(match_);
        let Ok(frame) = TcpFrame::decode(data) else {
            return vec![];
        };
        // Location tracking: a client arriving at a new location moved. An
        // *announced* move goes through [`Controller::handle_attachment_change`]
        // (which updates the tracker itself, so the next packet-in here sees
        // no move); an unannounced one falls back to the pre-handover
        // behavior — flush the client's memorized redirects and re-schedule,
        // since they were chosen for the old location.
        if self.clients.observe(frame.src_ip, ingress, in_port, now).is_some() {
            self.memory.forget_client(frame.src_ip);
        }
        self.journal_record(JournalEvent::ClientSeen {
            client: frame.src_ip,
            ingress,
            in_port,
            at: now,
        });
        // Remember the client's MAC and the gateway MAC it perceives: a
        // later migration flow flip re-installs reverse rewrites for this
        // client without a packet of its own to crib them from.
        self.client_macs.insert(frame.src_ip, (frame.src_mac, frame.dst_mac));
        self.journal_record(JournalEvent::MacsSeen {
            client: frame.src_ip,
            client_mac: frame.src_mac,
            gw_mac: frame.dst_mac,
        });
        let svc_addr = frame.dst_service();
        self.next_request += 1;
        let request = self.next_request;
        let root = self.telemetry.span(request, SpanId::NONE, "request", now);
        self.telemetry.event(root, "packet-in", now, || {
            format!("client={} svc={svc_addr} in_port={in_port}", frame.src_ip)
        });
        let t = now + self.config.processing.sample_duration(rng);

        // Shared handle: Rc clone, not a deep copy of the service definition.
        let Some(svc) = self.services.get_shared(svc_addr) else {
            // Not an edge service: plain cloud forwarding flows.
            self.telemetry.event(root, "unregistered", t, || {
                "not an edge service; plain cloud forwarding".to_owned()
            });
            self.telemetry.end_span(root, t);
            let rec = RequestRecord {
                at: now,
                service: svc_addr,
                client: frame.src_ip,
                kind: RequestKind::Unregistered,
                answered_at: t,
                phases: PhaseTimes::default(),
                cluster: None,
                background_ready: None,
            };
            self.record_request_metrics(&rec);
            if self.config.record_requests {
                self.records.push(rec);
            }
            return self.install_cloud_path(ingress, t, buffer_id, in_port, &frame);
        };

        let mut distances = std::mem::take(&mut self.distance_scratch);
        let have_distances = self.fill_distances(ingress, &mut distances);
        let outcome: DispatchOutcome = self.dispatcher.dispatch_at(
            &svc,
            frame.src_ip,
            ingress,
            have_distances.then_some(distances.as_slice()),
            RequestClass::NewFlow,
            t,
            &mut self.clusters,
            &mut self.memory,
            rng,
            &mut self.telemetry,
            request,
            root,
        );
        self.distance_scratch = distances;

        let background_ready = outcome.background.map(|b| b.ready_at);
        let (kind, answered_at, cluster, msgs) = match outcome.decision {
            DispatchDecision::Redirect { instance, cluster } => {
                let msgs = if self.config.aggregate_rules {
                    self.install_aggregate_or_exact(
                        ingress, t, buffer_id, in_port, &frame, &svc, instance, cluster,
                    )
                } else {
                    self.install_redirect(
                        ingress, t, buffer_id, in_port, &frame, &svc, instance, cluster,
                    )
                };
                let kind = if outcome.from_memory {
                    RequestKind::MemoryHit
                } else {
                    RequestKind::Redirect
                };
                (kind, t, Some(cluster), msgs)
            }
            DispatchDecision::WaitThenRedirect {
                instance,
                cluster,
                ready_at,
            } => {
                // The request is held; flows go out when the port answered.
                let at = ready_at.max(t);
                // Pin the service: the idle sweep must not scale it down
                // before this hold releases.
                let hold = self.held.entry((svc_addr, cluster)).or_insert(at);
                *hold = (*hold).max(at);
                let msgs = self.install_redirect(ingress, at, buffer_id, in_port, &frame, &svc, instance, cluster);
                (RequestKind::Waited, at, Some(cluster), msgs)
            }
            DispatchDecision::ForwardToCloud => {
                let msgs = self.install_cloud_path(ingress, t, buffer_id, in_port, &frame);
                (RequestKind::Cloud, t, None, msgs)
            }
            DispatchDecision::FallbackCloud { released_at } => {
                // The deployment exhausted its retries while the request was
                // held: release it toward the cloud instead.
                let at = released_at.max(t);
                let msgs = self.install_cloud_path(ingress, at, buffer_id, in_port, &frame);
                (RequestKind::FallbackCloud, at, None, msgs)
            }
        };

        // The span closes exactly once per request, at the instant the
        // answer goes out — possibly in the sim-future for held requests
        // (Waited / FallbackCloud), whose release instant is already known.
        let n_msgs = msgs.len();
        self.telemetry.event(root, "flow-install", answered_at, || {
            format!("{kind:?}: {n_msgs} message(s) toward the switch")
        });
        self.telemetry.end_span(root, answered_at);
        let rec = RequestRecord {
            at: now,
            service: svc_addr,
            client: frame.src_ip,
            kind,
            answered_at,
            phases: outcome.phases,
            cluster,
            background_ready,
        };
        self.record_request_metrics(&rec);
        if self.config.record_requests {
            self.records.push(rec);
        }
        msgs
    }

    /// Folds one finished request into the metrics registry. Phase durations
    /// are reconstructed from the record's phase *instants*: pull runs from
    /// packet arrival (plus controller processing), create from pull
    /// completion, scale-up between its issue/return instants, and the
    /// readiness wait is [`PhaseTimes::wait_time`].
    fn record_request_metrics(&mut self, rec: &RequestRecord) {
        let m = &mut self.telemetry.metrics;
        m.inc("requests_total");
        m.inc(match rec.kind {
            RequestKind::MemoryHit => "requests_memory_hit",
            RequestKind::Redirect => "requests_redirect",
            RequestKind::Waited => "requests_waited",
            RequestKind::Cloud => "requests_cloud",
            RequestKind::FallbackCloud => "requests_fallback_cloud",
            RequestKind::Unregistered => "requests_unregistered",
        });
        m.observe("answer_delay_ns", rec.answered_at.saturating_since(rec.at));
        let p = &rec.phases;
        if let Some(done) = p.pull_done {
            m.observe("deploy_pull_ns", done.saturating_since(rec.at));
        }
        if let Some(done) = p.create_done {
            m.observe("deploy_create_ns", done.saturating_since(p.pull_done.unwrap_or(rec.at)));
        }
        if let (Some(at), Some(done)) = (p.scale_up_at, p.scale_up_done) {
            m.observe("deploy_scale_up_ns", done.saturating_since(at));
        }
        if let Some(wait) = p.wait_time() {
            m.observe("deploy_wait_ns", wait);
        }
        if p.total_retries() > 0 {
            m.add("deploy_retries_total", u64::from(p.total_retries()));
        }
        if p.gave_up_at.is_some() {
            m.inc("deploys_gave_up");
        }
        if rec.background_ready.is_some() {
            m.inc("background_deploys");
        }
    }

    /// The egress port toward `cluster` on `ingress`, if one is mapped.
    /// This used to panic on a missing mapping; a malformed or
    /// misconfigured port map must never take the controller down, so
    /// callers now degrade to cloud forwarding and record a
    /// [`ControlPlaneError::MissingClusterPort`].
    fn cluster_port(&self, ingress: IngressId, cluster: usize) -> Option<u32> {
        self.ingresses
            .get(ingress.0 as usize)?
            .cluster_ports
            .get(self.clusters.get(cluster)?.name())
            .copied()
    }

    /// Records a missing-port inconsistency (see [`ControlPlaneError`]).
    fn note_missing_port(&mut self, ingress: IngressId, cluster: usize) {
        self.telemetry.metrics.inc("control_plane_errors");
        self.control_errors
            .push(ControlPlaneError::MissingClusterPort { ingress, cluster });
    }

    /// Builds the forward + reverse redirect flows (and a packet-out when the
    /// switch could not buffer).
    #[allow(clippy::too_many_arguments)]
    fn install_redirect(
        &mut self,
        ingress: IngressId,
        at: SimTime,
        buffer_id: u32,
        in_port: u32,
        frame: &TcpFrame,
        svc: &EdgeService,
        instance: InstanceAddr,
        cluster: usize,
    ) -> Vec<OutboundMessage> {
        let Some(out_port) = self.cluster_port(ingress, cluster) else {
            self.note_missing_port(ingress, cluster);
            return self.install_cloud_path(ingress, at, buffer_id, in_port, frame);
        };

        let fwd_actions = vec![
            Action::SetField(OxmField::EthDst(instance.mac.octets())),
            Action::SetField(OxmField::Ipv4Dst(instance.ip.octets())),
            Action::SetField(OxmField::TcpDst(instance.port)),
            Action::output(out_port),
        ];
        let rev_actions = vec![
            // Replies must look like they come from the cloud service.
            Action::SetField(OxmField::EthSrc(frame.dst_mac.octets())),
            Action::SetField(OxmField::EthDst(frame.src_mac.octets())),
            Action::SetField(OxmField::Ipv4Src(svc.addr.ip.octets())),
            Action::SetField(OxmField::TcpSrc(svc.addr.port)),
            Action::output(in_port),
        ];
        let fwd_match = Match::connection(
            frame.src_ip.octets(),
            frame.src_port,
            svc.addr.ip.octets(),
            svc.addr.port,
        );
        let rev_match = Match::connection(
            instance.ip.octets(),
            instance.port,
            frame.src_ip.octets(),
            frame.src_port,
        );
        // Bookkeep the exact pair: switch-side deletion is exact-match, so
        // handover teardown and stale-redirect repair need it verbatim, and
        // reconciliation needs the full flow to re-install it.
        self.book_pair(
            frame.src_ip,
            ingress,
            &fwd_match,
            &fwd_actions,
            &rev_match,
            &rev_actions,
            self.config.flow_priority,
            svc.addr,
            Some(cluster),
            Some(instance),
            true,
        );
        self.install_pair(at, buffer_id, frame, fwd_match, fwd_actions, rev_match, rev_actions)
    }

    /// Rule-aggregation front end for ready-instance redirects
    /// ([`ControllerConfig::aggregate_rules`]). Three cases:
    ///
    /// * **covered** — an aggregate pair for `(ingress, service)` already
    ///   redirects to the very instance the scheduler chose, through the
    ///   same client-side port and gateway: release the packet with a bare
    ///   `PACKET_OUT`; the switch table does not grow at all;
    /// * **divergent** — an aggregate exists but this client's decision
    ///   differs (circuit-breaker redirect to another cluster, a different
    ///   uplink): fall back to an exact per-connection pair at base
    ///   priority, which shadows the aggregate for exactly this connection;
    /// * **first** — no aggregate yet: install one wildcard pair for the
    ///   whole `(service, ingress, instance)` population.
    ///
    /// The aggregate forward flow keeps the client's source MAC intact, so
    /// the instance's replies already carry each client's own address in
    /// `eth_dst` — which is why one reverse rule serves every client without
    /// a per-client rewrite.
    #[allow(clippy::too_many_arguments)]
    fn install_aggregate_or_exact(
        &mut self,
        ingress: IngressId,
        at: SimTime,
        buffer_id: u32,
        in_port: u32,
        frame: &TcpFrame,
        svc: &EdgeService,
        instance: InstanceAddr,
        cluster: usize,
    ) -> Vec<OutboundMessage> {
        match self.aggregates.get(&(ingress, svc.addr)) {
            Some(r) if r.instance == instance && r.in_port == in_port && r.gw_mac == frame.dst_mac => {
                let actions = r.fwd_actions.clone();
                let x = self.xid();
                let data = if buffer_id == OFP_NO_BUFFER {
                    // Nothing buffered at the switch: carry the packet back.
                    Message::PacketOut {
                        buffer_id: OFP_NO_BUFFER,
                        in_port: 0,
                        actions,
                        data: frame.encode(),
                    }
                    .encode(x)
                } else {
                    // Release the switch's buffered copy through the
                    // aggregate's rewrite; no table change.
                    Message::PacketOut {
                        buffer_id,
                        in_port: 0,
                        actions,
                        data: vec![],
                    }
                    .encode(x)
                };
                self.telemetry.metrics.inc("aggregate_covered");
                vec![OutboundMessage { at, data }]
            }
            Some(_) => {
                self.telemetry.metrics.inc("aggregate_divergent");
                self.install_redirect(ingress, at, buffer_id, in_port, frame, svc, instance, cluster)
            }
            None => self.install_aggregate(ingress, at, buffer_id, in_port, frame, svc, instance, cluster),
        }
    }

    /// Installs the aggregated wildcard pair for `(service, ingress,
    /// instance)` and anchors it in [`Self::aggregates`]. Two priority steps
    /// below the exact flows so both exact pairs (base) and per-client
    /// handover wildcards (base − 1) shadow it.
    ///
    /// The pair carries its own idle timeout, exactly like an exact pair —
    /// per *rule*, not per client: the rule stays hot as long as *any*
    /// client keeps using the service, which is precisely the aggregate's
    /// lifetime of interest. (A per-client timeout is meaningless here; the
    /// controller-side per-client state lives in the FlowMemory, which keeps
    /// its own per-flow idle accounting.)
    #[allow(clippy::too_many_arguments)]
    fn install_aggregate(
        &mut self,
        ingress: IngressId,
        at: SimTime,
        buffer_id: u32,
        in_port: u32,
        frame: &TcpFrame,
        svc: &EdgeService,
        instance: InstanceAddr,
        cluster: usize,
    ) -> Vec<OutboundMessage> {
        let Some(out_port) = self.cluster_port(ingress, cluster) else {
            self.note_missing_port(ingress, cluster);
            return self.install_cloud_path(ingress, at, buffer_id, in_port, frame);
        };
        // Any client, this service.
        let fwd_match = Match::service(svc.addr.ip.octets(), svc.addr.port);
        // Any client, replies from this instance.
        let rev_match = Match::any()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::IpProto(6))
            .with(OxmField::Ipv4Src(instance.ip.octets()))
            .with(OxmField::TcpSrc(instance.port));
        let fwd_actions = vec![
            Action::SetField(OxmField::EthDst(instance.mac.octets())),
            Action::SetField(OxmField::Ipv4Dst(instance.ip.octets())),
            Action::SetField(OxmField::TcpDst(instance.port)),
            Action::output(out_port),
        ];
        // No EthDst rewrite: the reply frame already addresses the client
        // (the instance answers to the MAC the forward path preserved).
        let rev_actions = vec![
            Action::SetField(OxmField::EthSrc(frame.dst_mac.octets())),
            Action::SetField(OxmField::Ipv4Src(svc.addr.ip.octets())),
            Action::SetField(OxmField::TcpSrc(svc.addr.port)),
            Action::output(in_port),
        ];
        let priority = self.config.flow_priority.saturating_sub(2);
        let rule = AggregateRule {
            instance,
            cluster,
            in_port,
            gw_mac: frame.dst_mac,
            fwd_actions: fwd_actions.clone(),
        };
        if self.journal.enabled() {
            self.journal.record(JournalEvent::AggregateSet {
                ingress,
                service: svc.addr,
                rule: rule.clone(),
            });
        }
        self.aggregates.insert((ingress, svc.addr), rule);
        self.book_pair(
            AGGREGATE_CLIENT,
            ingress,
            &fwd_match,
            &fwd_actions,
            &rev_match,
            &rev_actions,
            priority,
            svc.addr,
            Some(cluster),
            Some(instance),
            false,
        );
        self.telemetry.metrics.inc("aggregate_installed");
        let idle = openflow::timeout_secs(self.config.switch_flow_idle);
        self.flow_adds += 2;
        let mut msgs = Vec::with_capacity(3);
        // Reverse first, as everywhere: the reply path must exist before the
        // buffered packet is released through the forward flow.
        let x = self.xid();
        msgs.push(OutboundMessage {
            at,
            data: Message::FlowMod {
                cookie: 2,
                table_id: 0,
                command: openflow::messages::FlowModCommand::Add,
                idle_timeout: idle,
                hard_timeout: 0,
                priority,
                buffer_id: OFP_NO_BUFFER,
                flags: 0,
                match_: rev_match,
                instructions: vec![Instruction::ApplyActions(rev_actions)],
            }
            .encode(x),
        });
        let x = self.xid();
        msgs.push(OutboundMessage {
            at,
            data: Message::FlowMod {
                cookie: 1,
                table_id: 0,
                command: openflow::messages::FlowModCommand::Add,
                idle_timeout: idle,
                hard_timeout: 0,
                priority,
                buffer_id,
                flags: OFPFF_SEND_FLOW_REM,
                match_: fwd_match,
                instructions: vec![Instruction::ApplyActions(fwd_actions.clone())],
            }
            .encode(x),
        });
        if buffer_id == OFP_NO_BUFFER {
            let x = self.xid();
            msgs.push(OutboundMessage {
                at,
                data: Message::PacketOut {
                    buffer_id: OFP_NO_BUFFER,
                    in_port: 0,
                    actions: fwd_actions,
                    data: frame.encode(),
                }
                .encode(x),
            });
        }
        msgs
    }

    /// Files a forward/reverse pair into the bookkeeping. `fwd`/`rev` carry
    /// the conventions of [`install_pair`](Self::install_pair) /
    /// [`install_wildcard_pair`](Self::install_wildcard_pair): forward flows
    /// use cookie 1 and request `FLOW_REMOVED`, reverse flows cookie 2.
    #[allow(clippy::too_many_arguments)]
    fn book_pair(
        &mut self,
        client: Ipv4Addr,
        ingress: IngressId,
        fwd_match: &Match,
        fwd_actions: &[Action],
        rev_match: &Match,
        rev_actions: &[Action],
        priority: u16,
        service: ServiceAddr,
        cluster: Option<usize>,
        instance: Option<InstanceAddr>,
        teardown_on_handover: bool,
    ) {
        let pair = InstalledPair {
            fwd: InstalledFlow {
                match_: fwd_match.clone(),
                instructions: vec![Instruction::ApplyActions(fwd_actions.to_vec())],
                priority,
                cookie: 1,
                flags: OFPFF_SEND_FLOW_REM,
            },
            rev: InstalledFlow {
                match_: rev_match.clone(),
                instructions: vec![Instruction::ApplyActions(rev_actions.to_vec())],
                priority,
                cookie: 2,
                flags: 0,
            },
            service,
            cluster,
            instance,
            teardown_on_handover,
            dead: false,
        };
        if self.journal.enabled() {
            self.journal.record(JournalEvent::PairAdd {
                client,
                ingress,
                pair: pair.clone(),
            });
        }
        self.installed_shard_mut(ingress)
            .entry(client)
            .or_default()
            .push(pair);
    }

    /// Builds plain bidirectional cloud-forwarding flows.
    fn install_cloud_path(
        &mut self,
        ingress: IngressId,
        at: SimTime,
        buffer_id: u32,
        in_port: u32,
        frame: &TcpFrame,
    ) -> Vec<OutboundMessage> {
        let fwd = vec![Action::output(self.ingresses[ingress.0 as usize].cloud_port)];
        let rev = vec![Action::output(in_port)];
        let fwd_match = Match::connection(
            frame.src_ip.octets(),
            frame.src_port,
            frame.dst_ip.octets(),
            frame.dst_port,
        );
        let rev_match = Match::connection(
            frame.dst_ip.octets(),
            frame.dst_port,
            frame.src_ip.octets(),
            frame.src_port,
        );
        // Bookkept (reconciliation must not strict-delete live cloud paths
        // as orphans) but *not* handover-retired: these pairs were never
        // torn down by handovers, only idled out.
        self.book_pair(
            frame.src_ip,
            ingress,
            &fwd_match,
            &fwd,
            &rev_match,
            &rev,
            self.config.flow_priority,
            frame.dst_service(),
            None,
            None,
            false,
        );
        self.install_pair(at, buffer_id, frame, fwd_match, fwd, rev_match, rev)
    }

    #[allow(clippy::too_many_arguments)]
    fn install_pair(
        &mut self,
        at: SimTime,
        buffer_id: u32,
        frame: &TcpFrame,
        fwd_match: Match,
        fwd_actions: Vec<Action>,
        rev_match: Match,
        rev_actions: Vec<Action>,
    ) -> Vec<OutboundMessage> {
        let idle = openflow::timeout_secs(self.config.switch_flow_idle);
        self.flow_adds += 2;
        let mut msgs = Vec::with_capacity(3);
        // Reverse flow first: when the buffered packet is released through
        // the forward flow, the reply path must already exist.
        let x = self.xid();
        msgs.push(OutboundMessage {
            at,
            data: Message::FlowMod {
                cookie: 2,
                table_id: 0,
                command: openflow::messages::FlowModCommand::Add,
                idle_timeout: idle,
                hard_timeout: 0,
                priority: self.config.flow_priority,
                buffer_id: OFP_NO_BUFFER,
                flags: 0,
                match_: rev_match,
                instructions: vec![Instruction::ApplyActions(rev_actions)],
            }
            .encode(x),
        });
        let x = self.xid();
        msgs.push(OutboundMessage {
            at,
            data: Message::FlowMod {
                cookie: 1,
                table_id: 0,
                command: openflow::messages::FlowModCommand::Add,
                idle_timeout: idle,
                hard_timeout: 0,
                priority: self.config.flow_priority,
                buffer_id,
                flags: OFPFF_SEND_FLOW_REM,
                match_: fwd_match,
                instructions: vec![Instruction::ApplyActions(fwd_actions.clone())],
            }
            .encode(x),
        });
        if buffer_id == OFP_NO_BUFFER {
            // Nothing buffered: re-inject the original packet ourselves.
            let x = self.xid();
            msgs.push(OutboundMessage {
                at,
                data: Message::PacketOut {
                    buffer_id: OFP_NO_BUFFER,
                    in_port: 0,
                    actions: fwd_actions,
                    data: frame.encode(),
                }
                .encode(x),
            });
        }
        msgs
    }

    /// Hands a client's live sessions over from ingress `from` to ingress
    /// `to` — the 5G attachment change: the UE left one gNB's cell for
    /// another's, and its traffic will now enter the network at the new
    /// switch.
    ///
    /// The procedure is make-before-break. For every session the FlowMemory
    /// holds for the client at the old ingress, redirect flows are first
    /// installed at the **new** switch (wildcarded per client↔service, so
    /// every live connection of the pair is covered without knowing its
    /// ephemeral port), and only after the last install instant are the old
    /// switch's exact flows deleted — the session never has zero paths.
    /// Under [`HandoverPolicy::Anchored`] a session keeps its current
    /// instance while it is still up; under [`HandoverPolicy::Redispatch`]
    /// (and for anchored sessions whose instance vanished) the Global
    /// Scheduler is consulted with a [`RequestClass::Handover`] context and
    /// distances measured from the new ingress, re-using the on-demand
    /// deployment pipeline — retries, fallback and all — when the new zone
    /// has no instance yet.
    ///
    /// `client_mac`/`gw_mac` parameterize the wildcard reverse rewrite (no
    /// triggering frame exists to read them from); `new_in_port` is the
    /// client's uplink port at the new switch. The caller delivers
    /// `messages` to the switches they are tagged with.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_attachment_change(
        &mut self,
        now: SimTime,
        client: Ipv4Addr,
        client_mac: MacAddr,
        gw_mac: MacAddr,
        from: IngressId,
        to: IngressId,
        new_in_port: u32,
        policy: HandoverPolicy,
        rng: &mut SimRng,
    ) -> HandoverOutcome {
        self.next_request += 1;
        let request = self.next_request;
        let root = self.telemetry.span(request, SpanId::NONE, "handover", now);
        self.telemetry.event(root, "attachment-change", now, || {
            format!(
                "client={client} gnb {} -> {} ({})",
                from.0,
                to.0,
                policy.label()
            )
        });
        let t = now + self.config.processing.sample_duration(rng);
        // The tracker learns the new location *now*, so the client's first
        // packet-in at the new switch is not mistaken for an unannounced
        // move (which would flush the very memory we are migrating).
        self.clients.observe(client, to, new_in_port, t);
        self.journal_record(JournalEvent::ClientSeen {
            client,
            ingress: to,
            in_port: new_in_port,
            at: t,
        });
        self.client_macs.insert(client, (client_mac, gw_mac));
        self.journal_record(JournalEvent::MacsSeen {
            client,
            client_mac,
            gw_mac,
        });
        // Snapshot the old switch's exact matches before any new installs:
        // with `from == to` (a re-attach to the same cell) the new wildcard
        // pairs must not end up in their own teardown list. Cloud packet-in
        // pairs stay filed — handovers never tore those down (they idle out
        // and tombstone via `FLOW_REMOVED`), and reconciliation still needs
        // to claim them until then.
        let mut old_pairs = self.installed_shard_mut(from).remove(&client).unwrap_or_default();
        let kept: Vec<InstalledPair> = old_pairs
            .iter()
            .filter(|p| !p.teardown_on_handover)
            .cloned()
            .collect();
        old_pairs.retain(|p| p.teardown_on_handover);
        if !kept.is_empty() {
            self.installed_shard_mut(from).insert(client, kept);
        }
        self.journal_record(JournalEvent::HandoverSweep { client, from });

        let mut messages: Vec<(IngressId, OutboundMessage)> = Vec::new();
        let mut completed_at = t;
        let mut flows_migrated = 0usize;
        let mut redispatched = 0usize;
        let distances = self.distances_from(to);
        for (key, flow) in self.memory.flows_of_client_at(client, from) {
            let Some(svc) = self.services.get_shared(key.service) else {
                self.memory.forget(&key);
                continue;
            };
            // Anchoring keeps the session on its current instance — valid
            // only while that instance still serves.
            let anchored_instance = match policy {
                HandoverPolicy::Anchored if flow.cluster < self.clusters.len() => {
                    match self.clusters[flow.cluster].state(&svc, t) {
                        crate::cluster::InstanceState::Ready(inst) => Some(inst),
                        _ => None,
                    }
                }
                _ => None,
            };
            let installed_at = if let Some(instance) = anchored_instance {
                self.memory.rekey(&key, to, t);
                let msgs = self.install_handover_redirect(
                    to, t, client, client_mac, gw_mac, new_in_port, &svc, instance, flow.cluster,
                );
                messages.extend(msgs.into_iter().map(|m| (to, m)));
                self.telemetry.event(root, "anchored", t, || {
                    format!("{}: kept on cluster {}", svc.name, flow.cluster)
                });
                t
            } else {
                // Re-place the session through the scheduler, as a Handover.
                self.memory.forget(&key);
                let outcome = self.dispatcher.dispatch_at(
                    &svc,
                    client,
                    to,
                    distances.as_deref(),
                    RequestClass::Handover,
                    t,
                    &mut self.clusters,
                    &mut self.memory,
                    rng,
                    &mut self.telemetry,
                    request,
                    root,
                );
                redispatched += 1;
                match outcome.decision {
                    DispatchDecision::Redirect { instance, cluster } => {
                        let msgs = self.install_handover_redirect(
                            to, t, client, client_mac, gw_mac, new_in_port, &svc, instance, cluster,
                        );
                        messages.extend(msgs.into_iter().map(|m| (to, m)));
                        t
                    }
                    DispatchDecision::WaitThenRedirect { instance, cluster, ready_at } => {
                        let at = ready_at.max(t);
                        // Pin the service against the idle sweep until the
                        // deferred install goes out, as packet-ins do.
                        let hold = self.held.entry((key.service, cluster)).or_insert(at);
                        *hold = (*hold).max(at);
                        let msgs = self.install_handover_redirect(
                            to, at, client, client_mac, gw_mac, new_in_port, &svc, instance, cluster,
                        );
                        messages.extend(msgs.into_iter().map(|m| (to, m)));
                        at
                    }
                    DispatchDecision::ForwardToCloud => {
                        let msgs = self.install_handover_cloud(to, t, client, new_in_port, &svc);
                        messages.extend(msgs.into_iter().map(|m| (to, m)));
                        t
                    }
                    DispatchDecision::FallbackCloud { released_at } => {
                        let at = released_at.max(t);
                        let msgs = self.install_handover_cloud(to, at, client, new_in_port, &svc);
                        messages.extend(msgs.into_iter().map(|m| (to, m)));
                        at
                    }
                }
            };
            flows_migrated += 1;
            completed_at = completed_at.max(installed_at);
        }

        // Break strictly after the make: the old paths outlive the last
        // new-switch install by a guard interval sized to cover a full WAN
        // round-trip, so replies to requests still in flight via the old
        // cell (worst case: a cloud-served session) find their reverse
        // flows intact. Deleting long-gone flows is a no-op, so generosity
        // here costs nothing.
        let break_at = completed_at + Duration::from_millis(50);
        let n_old = old_pairs.len();
        for pair in old_pairs {
            for m in [pair.fwd.match_, pair.rev.match_] {
                let x = self.xid();
                messages.push((
                    from,
                    OutboundMessage {
                        at: break_at,
                        data: Message::FlowMod {
                            cookie: 0,
                            table_id: 0,
                            command: openflow::messages::FlowModCommand::Delete,
                            idle_timeout: 0,
                            hard_timeout: 0,
                            priority: 0,
                            buffer_id: OFP_NO_BUFFER,
                            flags: 0,
                            match_: m,
                            instructions: vec![],
                        }
                        .encode(x),
                    },
                ));
            }
        }

        let m = &mut self.telemetry.metrics;
        m.inc("handovers_total");
        m.add("flows_migrated", flows_migrated as u64);
        if redispatched > 0 {
            m.add("handover_redispatched_total", redispatched as u64);
        }
        m.observe("handover_interruption_ns", completed_at.saturating_since(now));
        self.telemetry.event(root, "break", break_at, || {
            format!("{n_old} exact pair(s) deleted at old gnb {}", from.0)
        });
        self.telemetry.end_span(root, completed_at);
        // The mobility trigger: sessions this move left anchored on a
        // cluster at least `mobility_hops` hops behind the best candidate
        // follow the client — snapshot, transfer, then flip at
        // [`Controller::migration_tick`]. Keyed off the *kept* placements,
        // so it composes with the anchored policy (redispatch already
        // re-placed everything).
        if self.migrate.live() {
            self.migrate_lagging_sessions(t, client, to, rng);
        }
        self.journal_sync();
        HandoverOutcome {
            at: now,
            completed_at,
            flows_migrated,
            redispatched,
            messages,
        }
    }

    /// Installs the wildcard (per client↔service) redirect pair at `ingress`
    /// for a handed-over session, bookkeeping the matches for the next
    /// teardown. One priority step below the exact per-connection flows, so
    /// any surviving exact flow still shadows it.
    #[allow(clippy::too_many_arguments)]
    fn install_handover_redirect(
        &mut self,
        ingress: IngressId,
        at: SimTime,
        client: Ipv4Addr,
        client_mac: MacAddr,
        gw_mac: MacAddr,
        in_port: u32,
        svc: &EdgeService,
        instance: InstanceAddr,
        cluster: usize,
    ) -> Vec<OutboundMessage> {
        let Some(out_port) = self.cluster_port(ingress, cluster) else {
            self.note_missing_port(ingress, cluster);
            return self.install_handover_cloud(ingress, at, client, in_port, svc);
        };
        let fwd_match = Match::service(svc.addr.ip.octets(), svc.addr.port)
            .with(OxmField::Ipv4Src(client.octets()));
        let rev_match = Match::any()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::IpProto(6))
            .with(OxmField::Ipv4Src(instance.ip.octets()))
            .with(OxmField::TcpSrc(instance.port))
            .with(OxmField::Ipv4Dst(client.octets()));
        let fwd_actions = vec![
            Action::SetField(OxmField::EthDst(instance.mac.octets())),
            Action::SetField(OxmField::Ipv4Dst(instance.ip.octets())),
            Action::SetField(OxmField::TcpDst(instance.port)),
            Action::output(out_port),
        ];
        let rev_actions = vec![
            Action::SetField(OxmField::EthSrc(gw_mac.octets())),
            Action::SetField(OxmField::EthDst(client_mac.octets())),
            Action::SetField(OxmField::Ipv4Src(svc.addr.ip.octets())),
            Action::SetField(OxmField::TcpSrc(svc.addr.port)),
            Action::output(in_port),
        ];
        self.book_pair(
            client,
            ingress,
            &fwd_match,
            &fwd_actions,
            &rev_match,
            &rev_actions,
            self.config.flow_priority.saturating_sub(1),
            svc.addr,
            Some(cluster),
            Some(instance),
            true,
        );
        self.install_wildcard_pair(at, fwd_match, fwd_actions, rev_match, rev_actions)
    }

    /// Installs a wildcard cloud-forwarding pair at `ingress` for a
    /// handed-over session whose edge placement fell through.
    fn install_handover_cloud(
        &mut self,
        ingress: IngressId,
        at: SimTime,
        client: Ipv4Addr,
        in_port: u32,
        svc: &EdgeService,
    ) -> Vec<OutboundMessage> {
        let fwd_match = Match::service(svc.addr.ip.octets(), svc.addr.port)
            .with(OxmField::Ipv4Src(client.octets()));
        let rev_match = Match::any()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::IpProto(6))
            .with(OxmField::Ipv4Src(svc.addr.ip.octets()))
            .with(OxmField::TcpSrc(svc.addr.port))
            .with(OxmField::Ipv4Dst(client.octets()));
        let fwd_actions = vec![Action::output(self.ingresses[ingress.0 as usize].cloud_port)];
        let rev_actions = vec![Action::output(in_port)];
        self.book_pair(
            client,
            ingress,
            &fwd_match,
            &fwd_actions,
            &rev_match,
            &rev_actions,
            self.config.flow_priority.saturating_sub(1),
            svc.addr,
            None,
            None,
            true,
        );
        self.install_wildcard_pair(at, fwd_match, fwd_actions, rev_match, rev_actions)
    }

    /// Encodes an add-pair (reverse first) without a buffered packet, at one
    /// priority step below the exact-flow priority.
    fn install_wildcard_pair(
        &mut self,
        at: SimTime,
        fwd_match: Match,
        fwd_actions: Vec<Action>,
        rev_match: Match,
        rev_actions: Vec<Action>,
    ) -> Vec<OutboundMessage> {
        let idle = openflow::timeout_secs(self.config.switch_flow_idle);
        let priority = self.config.flow_priority.saturating_sub(1);
        self.flow_adds += 2;
        let mut msgs = Vec::with_capacity(2);
        let x = self.xid();
        msgs.push(OutboundMessage {
            at,
            data: Message::FlowMod {
                cookie: 2,
                table_id: 0,
                command: openflow::messages::FlowModCommand::Add,
                idle_timeout: idle,
                hard_timeout: 0,
                priority,
                buffer_id: OFP_NO_BUFFER,
                flags: 0,
                match_: rev_match,
                instructions: vec![Instruction::ApplyActions(rev_actions)],
            }
            .encode(x),
        });
        let x = self.xid();
        msgs.push(OutboundMessage {
            at,
            data: Message::FlowMod {
                cookie: 1,
                table_id: 0,
                command: openflow::messages::FlowModCommand::Add,
                idle_timeout: idle,
                hard_timeout: 0,
                priority,
                buffer_id: OFP_NO_BUFFER,
                flags: OFPFF_SEND_FLOW_REM,
                match_: fwd_match,
                instructions: vec![Instruction::ApplyActions(fwd_actions)],
            }
            .encode(x),
        });
        msgs
    }

    /// Proactively deploys a service (prediction-driven, Sections I/VII):
    /// ensures an instance exists on the nearest cluster without a client
    /// request. Returns the instant the instance will be ready, or `None`
    /// if the service is unknown or already deployed/starting.
    pub fn proactive_deploy(
        &mut self,
        addr: ServiceAddr,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        let svc = self.services.get(addr)?.clone();
        let idx = (0..self.clusters.len()).min_by_key(|&i| self.clusters[i].latency())?;
        let cluster = &mut self.clusters[idx];
        let mut t = now;
        match cluster.state(&svc, now) {
            crate::cluster::InstanceState::Ready(_)
            | crate::cluster::InstanceState::Starting { .. } => None,
            crate::cluster::InstanceState::NotDeployed => {
                if !cluster.has_image_cached(&svc) {
                    t = cluster.pull(&svc, t, rng).ok()?;
                }
                t = cluster.create(&svc, t, rng).ok()?;
                let (_, ready) = cluster.scale_up(&svc, t, rng).ok()?;
                (ready != SimTime::MAX).then_some(ready)
            }
            crate::cluster::InstanceState::Created => {
                let (_, ready) = cluster.scale_up(&svc, t, rng).ok()?;
                (ready != SimTime::MAX).then_some(ready)
            }
        }
    }

    /// Periodic idle sweep: expires FlowMemory entries and scales down
    /// services whose last flow vanished. Returns what was scaled down.
    pub fn tick(&mut self, now: SimTime, rng: &mut SimRng) -> Vec<ScaleDownEvent> {
        let mut events = Vec::new();
        // Holds whose release instant has passed no longer pin anything.
        self.held.retain(|_, until| now < *until);
        if !self.config.scale_down_idle {
            self.memory.expire(now);
            self.journal_sync();
            return events;
        }
        let mut expired = self.memory.expire(now);
        // Re-examine deferred expiries whose hold has drained since.
        let ripe: Vec<(ServiceAddr, usize)> = self
            .deferred
            .keys()
            .filter(|k| !self.held.contains_key(k) && !self.migrate.pinned(k.0, k.1))
            .copied()
            .collect();
        for key in ripe {
            self.deferred.remove(&key);
            // Re-used while deferred? Then it is no longer idle.
            if self.memory.flows_for(key.0) > 0 {
                continue;
            }
            if !expired.contains(&key) {
                expired.push(key);
            }
        }
        for (svc_addr, cluster_idx) in expired {
            if self.held.contains_key(&(svc_addr, cluster_idx))
                || self.migrate.pinned(svc_addr, cluster_idx)
            {
                // A request is still held for this service, or the pool is
                // the source/target of an in-flight migration: defer the
                // scale-down until the hold releases / the flip completes.
                self.deferred.insert((svc_addr, cluster_idx), now);
                continue;
            }
            let Some(svc) = self.services.get(svc_addr).cloned() else {
                continue;
            };
            if cluster_idx < self.clusters.len() {
                self.clusters[cluster_idx].scale_down(&svc, now, rng);
                self.dispatcher.load_mut().remove_pool(svc_addr, cluster_idx, now);
                self.scaled_down.insert((svc_addr, cluster_idx), now);
                self.journal_record(JournalEvent::ScaledDown {
                    service: svc_addr,
                    cluster: cluster_idx,
                    at: now,
                });
                events.push(ScaleDownEvent {
                    at: now,
                    service: svc_addr,
                    cluster: self.clusters[cluster_idx].name().to_owned(),
                    action: LifecycleAction::ScaleDown,
                });
            }
        }
        // The Remove phase: services down long enough are deleted entirely.
        if let Some(after) = self.config.remove_after {
            let due: Vec<(ServiceAddr, usize)> = self
                .scaled_down
                .iter()
                .filter(|(_, &t)| now.saturating_since(t) >= after)
                .map(|(&k, _)| k)
                .collect();
            for (svc_addr, cluster_idx) in due {
                self.scaled_down.remove(&(svc_addr, cluster_idx));
                self.journal_record(JournalEvent::ScaleRestored {
                    service: svc_addr,
                    cluster: cluster_idx,
                });
                let Some(svc) = self.services.get(svc_addr).cloned() else {
                    continue;
                };
                if cluster_idx >= self.clusters.len() {
                    continue;
                }
                // Redeployed in the meantime? Then it is not removable.
                if matches!(
                    self.clusters[cluster_idx].state(&svc, now),
                    crate::cluster::InstanceState::Created
                ) {
                    self.clusters[cluster_idx].remove(&svc, now, rng);
                    events.push(ScaleDownEvent {
                        at: now,
                        service: svc_addr,
                        cluster: self.clusters[cluster_idx].name().to_owned(),
                        action: LifecycleAction::Remove,
                    });
                }
            }
        }
        for ev in &events {
            self.telemetry.metrics.inc(match ev.action {
                LifecycleAction::ScaleDown => "scale_downs",
                LifecycleAction::Remove => "removes",
            });
        }
        self.journal_sync();
        events
    }

    /// The load tracker: per-instance queues, admission counters, pools.
    pub fn load(&self) -> &LoadTracker {
        self.dispatcher.load()
    }

    /// Mutable load-tracker access (replica-second accrual needs `&mut`).
    pub fn load_mut(&mut self) -> &mut LoadTracker {
        self.dispatcher.load_mut()
    }

    /// The circuit-breaker state of `cluster` (telemetry snapshots).
    pub fn breaker_state(&self, cluster: usize) -> BreakerState {
        self.dispatcher.health().breaker_state(cluster)
    }

    /// The active health configuration (the harness schedules its detection
    /// sweep every `health_config().detect_interval`).
    pub fn health_config(&self) -> HealthConfig {
        self.dispatcher.health().config()
    }

    /// Fault injection: a *Ready* instance of `svc_addr` on `cluster`
    /// crashes while serving. The crash itself is silent — clients keep
    /// being redirected at the corpse until the next [`health_check`] sweep
    /// notices; the instant is recorded so `stale_redirect_repair_ns`
    /// measures crash→repair latency. Returns `false` if there was nothing
    /// running to kill.
    ///
    /// [`health_check`]: Self::health_check
    pub fn inject_instance_crash(
        &mut self,
        cluster: usize,
        svc_addr: ServiceAddr,
        now: SimTime,
        rng: &mut SimRng,
    ) -> bool {
        if cluster >= self.clusters.len() {
            return false;
        }
        let Some(svc) = self.services.get(svc_addr).cloned() else {
            return false;
        };
        let instance = self.clusters[cluster].instance_addr(&svc);
        if !self.clusters[cluster].fail_instance(&svc, now, rng) {
            return false;
        }
        if let Some(inst) = instance {
            self.crash_records.insert(inst, now);
        }
        true
    }

    /// The failure-detection sweep, run every `health.detect_interval`:
    /// walks every instance the FlowMemory still redirects clients at and
    /// repairs the state around each one that is no longer Ready — forgets
    /// its memory entries (no lookup ever returns the dead address again),
    /// tombstones and deletes the matching switch flows, and feeds the
    /// cluster's circuit breaker. Subsequent packets from the affected
    /// clients miss the table and re-enter the ordinary dispatch pipeline.
    /// Returns the Delete FlowMods, tagged with the ingress they go to.
    ///
    /// Ordinary idle scale-down cannot false-positive here: a service is
    /// only scaled down after its last memorized flow expired, so by then
    /// the memory holds nothing pointing at it.
    pub fn health_check(&mut self, now: SimTime) -> Vec<(IngressId, OutboundMessage)> {
        let mut out: Vec<(IngressId, OutboundMessage)> = Vec::new();
        for (cluster, inst, svc_addr) in self.memory.instances() {
            let mut alive = false;
            if cluster < self.clusters.len() {
                if let Some(svc) = self.services.get(svc_addr) {
                    // With autoscaling on, memorized addresses may be replica
                    // addresses derived from the Ready base; the pool vouches
                    // for those as long as the base instance itself is up.
                    alive = match self.clusters[cluster].state(svc, now) {
                        crate::cluster::InstanceState::Ready(i) => {
                            i == inst
                                || self
                                    .dispatcher
                                    .load()
                                    .index_of(svc_addr, cluster, inst)
                                    .is_some()
                        }
                        _ => false,
                    };
                }
            }
            if alive {
                continue;
            }
            // A crash mid-transfer retires the pool out from under its
            // migration: abandon it first (the pin lifts; session state
            // stays in the source ledger), then repair normally — repair
            // never runs *while* a migration holds the pool.
            let aborted = self.migrate.abort_involving(svc_addr, cluster);
            if aborted > 0 {
                self.telemetry.metrics.add("migrations_aborted", aborted as u64);
            }
            self.dispatcher.load_mut().remove_pool(svc_addr, cluster, now);
            out.extend(self.repair_dead_instance(cluster, inst, now));
        }
        self.journal_sync();
        out
    }

    /// Stale-redirect repair for one dead instance: forget its FlowMemory
    /// entries, tombstone + delete its switch flows everywhere, record the
    /// failure with the cluster's breaker, and update the repair metrics.
    fn repair_dead_instance(
        &mut self,
        cluster: usize,
        inst: InstanceAddr,
        now: SimTime,
    ) -> Vec<(IngressId, OutboundMessage)> {
        let victims = self.memory.forget_instance(inst);
        self.next_request += 1;
        let request = self.next_request;
        let root = self.telemetry.span(request, SpanId::NONE, "recovery", now);
        let n = victims.len();
        self.telemetry.event(root, "instance-failure", now, || {
            format!(
                "cluster {cluster}: instance {}:{} dead, {n} stale redirect(s)",
                inst.ip, inst.port
            )
        });
        // Tear down every bookkept pair aimed at the corpse — not only the
        // memorized ones: handover leftovers reference it too. Aggregated
        // pairs are filed under the sentinel client, so this sweep retires
        // them like any other pair; dropping the anchor below makes the next
        // packet-in install a fresh aggregate toward the replacement.
        let keys = self.installed_keys_sorted();
        let mut out = Vec::new();
        for (client, ing) in keys {
            out.extend(self.teardown_pairs_for(client, ing, |p| p.instance == Some(inst), now));
        }
        self.aggregates.retain(|_, r| r.instance != inst);
        self.journal_record(JournalEvent::AggregateRetainInstance { instance: inst });
        self.dispatcher.health_mut().record_failure(cluster, now);
        let m = &mut self.telemetry.metrics;
        m.inc("instance_failures_total");
        if n > 0 {
            m.add("stale_redirects_repaired", n as u64);
        }
        if let Some(crashed_at) = self.crash_records.remove(&inst) {
            m.observe("stale_redirect_repair_ns", now.saturating_since(crashed_at));
        }
        self.set_breaker_gauges();
        self.telemetry.event(root, "repaired", now, || {
            format!("{} flow delete(s) toward the switches", out.len())
        });
        self.telemetry.end_span(root, now);
        out
    }

    /// Declares `cluster` dark until `until` — the zone-outage fault: every
    /// Ready/Starting instance in the zone fails at once, all memorized
    /// redirects into it are forgotten, their switch flows torn down, and
    /// the zone is blocked for scheduling until the window passes (or
    /// [`end_zone_outage`] is called). Returns the Delete FlowMods per
    /// ingress.
    ///
    /// [`end_zone_outage`]: Self::end_zone_outage
    pub fn begin_zone_outage(
        &mut self,
        cluster: usize,
        now: SimTime,
        until: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(IngressId, OutboundMessage)> {
        if cluster >= self.clusters.len() {
            return vec![];
        }
        self.next_request += 1;
        let request = self.next_request;
        let root = self.telemetry.span(request, SpanId::NONE, "zone-outage", now);
        let svcs: Vec<EdgeService> = self.services.iter().cloned().collect();
        let mut failed = 0usize;
        for svc in &svcs {
            if self.clusters[cluster].fail_instance(svc, now, rng) {
                failed += 1;
            }
            self.dispatcher.load_mut().remove_pool(svc.addr, cluster, now);
        }
        let victims = self.memory.forget_cluster(cluster);
        // Migrations into or out of the dark zone cannot finish.
        let aborted = self.migrate.abort_cluster(cluster);
        if aborted > 0 {
            self.telemetry.metrics.add("migrations_aborted", aborted as u64);
        }
        self.telemetry.event(root, "zone-dark", now, || {
            format!(
                "cluster {cluster}: {failed} instance(s) down, {} stale redirect(s), until {until:?}",
                victims.len()
            )
        });
        let keys = self.installed_keys_sorted();
        let mut out = Vec::new();
        for (client, ing) in keys {
            out.extend(self.teardown_pairs_for(client, ing, |p| p.cluster == Some(cluster), now));
        }
        self.aggregates.retain(|_, r| r.cluster != cluster);
        self.journal_record(JournalEvent::AggregateRetainCluster { cluster });
        self.dispatcher.health_mut().begin_outage(cluster, until);
        let m = &mut self.telemetry.metrics;
        m.inc("zone_outages_total");
        if !victims.is_empty() {
            m.add("stale_redirects_repaired", victims.len() as u64);
        }
        self.telemetry.end_span(root, now);
        self.journal_sync();
        out
    }

    /// Clears a declared zone outage: the cluster becomes schedulable again
    /// immediately (its services were failed to Created, so the next request
    /// re-deploys through the ordinary pipeline).
    pub fn end_zone_outage(&mut self, cluster: usize) {
        self.dispatcher.health_mut().end_outage(cluster);
        self.journal_sync();
    }

    /// Flow-table reconciliation after an OpenFlow channel reconnect. The
    /// switch kept forwarding on its installed flows while control messages
    /// were lost, so its table and the controller's bookkeeping may have
    /// drifted: installs the controller sent into the void are *missing*,
    /// and switch flows whose teardown was lost are *orphans*. Compares
    /// `switch_flows` — the switch's current table — against the bookkeeping
    /// for `ingress`: live expected flows missing from the switch are
    /// re-installed verbatim, and switch entries the controller does not
    /// claim are strict-deleted. Expected pairs whose instance died while
    /// the channel was down are tombstoned here (their switch entries, if
    /// any, become orphans). A second pass right after the returned FlowMods
    /// are applied returns nothing.
    pub fn reconcile(
        &mut self,
        ingress: IngressId,
        switch_flows: &[FlowEntry],
        now: SimTime,
    ) -> Vec<OutboundMessage> {
        let mut clients: Vec<Ipv4Addr> = self
            .installed
            .get(ingress.0 as usize)
            .map(|shard| shard.keys().copied().collect())
            .unwrap_or_default();
        clients.sort();
        let mut claimed: Vec<(Match, u16)> = Vec::new();
        let mut missing: Vec<InstalledFlow> = Vec::new();
        let mut tombstoned: Vec<(Ipv4Addr, usize)> = Vec::new();
        for client in clients {
            let Some(pairs) = self
                .installed
                .get_mut(ingress.0 as usize)
                .and_then(|s| s.get_mut(&client))
            else {
                continue;
            };
            for (i, p) in pairs.iter_mut().enumerate() {
                if p.dead {
                    continue;
                }
                // A redirect pair is expected only while its instance still
                // serves; cloud pairs have nothing to die.
                if let (Some(c), Some(inst)) = (p.cluster, p.instance) {
                    let mut alive = false;
                    if c < self.clusters.len() {
                        if let Some(svc) = self.services.get(p.service) {
                            alive = matches!(
                                self.clusters[c].state(svc, now),
                                crate::cluster::InstanceState::Ready(i) if i == inst
                            );
                        }
                    }
                    if !alive {
                        p.dead = true;
                        tombstoned.push((client, i));
                        continue;
                    }
                }
                // Reverse before forward, as installs always go out: if both
                // directions are missing, the reply path comes back first.
                for f in [&p.rev, &p.fwd] {
                    claimed.push((f.match_.clone(), f.priority));
                    let on_switch = switch_flows
                        .iter()
                        .any(|e| e.priority == f.priority && e.match_ == f.match_);
                    if !on_switch {
                        missing.push(f.clone());
                    }
                }
            }
        }

        for (client, idx) in tombstoned {
            self.journal_record(JournalEvent::PairDead { client, ingress, idx });
        }

        let idle = openflow::timeout_secs(self.config.switch_flow_idle);
        let n_missing = missing.len();
        let mut msgs: Vec<OutboundMessage> = Vec::with_capacity(n_missing);
        for f in missing {
            let x = self.xid();
            msgs.push(OutboundMessage {
                at: now,
                data: Message::FlowMod {
                    cookie: f.cookie,
                    table_id: 0,
                    command: openflow::messages::FlowModCommand::Add,
                    idle_timeout: idle,
                    hard_timeout: 0,
                    priority: f.priority,
                    buffer_id: OFP_NO_BUFFER,
                    flags: f.flags,
                    match_: f.match_,
                    instructions: f.instructions,
                }
                .encode(x),
            });
        }
        // Strict-delete unclaimed switch entries. Switch-side deletion is by
        // exact match across every priority, so one Delete per distinct
        // match suffices.
        let mut deleted: Vec<Match> = Vec::new();
        let mut n_orphans = 0usize;
        for e in switch_flows {
            if claimed
                .iter()
                .any(|(m, pr)| *pr == e.priority && *m == e.match_)
            {
                continue;
            }
            n_orphans += 1;
            if deleted.contains(&e.match_) {
                continue;
            }
            deleted.push(e.match_.clone());
            let x = self.xid();
            msgs.push(OutboundMessage {
                at: now,
                data: Message::FlowMod {
                    cookie: 0,
                    table_id: 0,
                    command: openflow::messages::FlowModCommand::Delete,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority: 0,
                    buffer_id: OFP_NO_BUFFER,
                    flags: 0,
                    match_: e.match_.clone(),
                    instructions: vec![],
                }
                .encode(x),
            });
        }

        self.next_request += 1;
        let request = self.next_request;
        let root = self.telemetry.span(request, SpanId::NONE, "reconcile", now);
        self.telemetry.event(root, "diff", now, || {
            format!("ingress {}: {n_missing} missing, {n_orphans} orphan(s)", ingress.0)
        });
        self.telemetry.end_span(root, now);
        let m = &mut self.telemetry.metrics;
        m.inc("reconciliations_total");
        if n_missing > 0 {
            m.add("reconcile_reinstalled", n_missing as u64);
        }
        if n_orphans > 0 {
            m.add("reconcile_orphans_deleted", n_orphans as u64);
        }
        self.journal_sync();
        msgs
    }

    /// Tombstones every live pair at `(client, ingress)` matched by `pick`
    /// and emits exact Delete FlowMods for both directions.
    fn teardown_pairs_for(
        &mut self,
        client: Ipv4Addr,
        ingress: IngressId,
        pick: impl Fn(&InstalledPair) -> bool,
        at: SimTime,
    ) -> Vec<(IngressId, OutboundMessage)> {
        let mut doomed: Vec<(Match, Match)> = Vec::new();
        let mut dead_idx: Vec<usize> = Vec::new();
        if let Some(pairs) = self.installed_pairs_mut(client, ingress) {
            for (i, p) in pairs.iter_mut().enumerate() {
                if !p.dead && pick(p) {
                    p.dead = true;
                    dead_idx.push(i);
                    doomed.push((p.fwd.match_.clone(), p.rev.match_.clone()));
                }
            }
        }
        for idx in dead_idx {
            self.journal_record(JournalEvent::PairDead { client, ingress, idx });
        }
        let mut out = Vec::new();
        for (fwd, rev) in doomed {
            for m in [fwd, rev] {
                let x = self.xid();
                out.push((
                    ingress,
                    OutboundMessage {
                        at,
                        data: Message::FlowMod {
                            cookie: 0,
                            table_id: 0,
                            command: openflow::messages::FlowModCommand::Delete,
                            idle_timeout: 0,
                            hard_timeout: 0,
                            priority: 0,
                            buffer_id: OFP_NO_BUFFER,
                            flags: 0,
                            match_: m,
                            instructions: vec![],
                        }
                        .encode(x),
                    },
                ));
            }
        }
        out
    }

    /// One horizontal-autoscaler pass, run every `autoscale.sweep_interval`
    /// of simulated time: flexes each service's replica pool on queue depth
    /// and utilization (hysteresis + cooldown live in
    /// [`LoadTracker::sweep`](crate::autoscale::LoadTracker::sweep)), bumps
    /// the `autoscale_ups`/`autoscale_downs` counters, and refreshes the
    /// per-pool `replicas.{service}.{cluster}` gauges. A no-op while
    /// autoscaling is disabled (the default), so experiments that never
    /// opt in stay byte-identical.
    pub fn autoscale_sweep(&mut self, now: SimTime) -> Vec<ScaleEvent> {
        if !self.dispatcher.load().enabled() {
            return Vec::new();
        }
        let events = self.dispatcher.load_mut().sweep(now);
        for ev in &events {
            self.telemetry.metrics.inc(if ev.up {
                "autoscale_ups"
            } else {
                "autoscale_downs"
            });
        }
        let counts = self.dispatcher.load().replica_counts();
        for ((svc, cluster), n) in counts {
            self.telemetry.metrics.set_gauge(
                &format!("replicas.{}:{}.{cluster}", svc.ip, svc.port),
                n as f64,
            );
        }
        events
    }

    /// Refreshes the per-cluster breaker gauges (`breaker_state.{i}`).
    fn set_breaker_gauges(&mut self) {
        for i in 0..self.clusters.len() {
            let s = self.dispatcher.health().breaker_state(i);
            self.telemetry.metrics.set_gauge(&format!("breaker_state.{i}"), s.gauge());
        }
    }

    /// Earliest instant the next `tick` could have work.
    pub fn next_tick_at(&self) -> Option<SimTime> {
        let removal = self.config.remove_after.and_then(|after| {
            self.scaled_down.values().map(|&t| t + after).min()
        });
        // A deferred scale-down becomes actionable when its hold releases.
        let deferred = self
            .deferred
            .keys()
            .filter_map(|k| self.held.get(k).copied())
            .min();
        [self.memory.next_expiry(), removal, deferred]
            .into_iter()
            .flatten()
            .min()
    }

    /// Books one served request's worth of session state for
    /// `(svc_addr, cluster)` — the harness calls this when an edge
    /// instance answers. A no-op while migration is off or stateless, so
    /// the hot path costs one branch by default.
    pub fn note_served(&mut self, svc_addr: ServiceAddr, cluster: usize) {
        self.migrate.note_served(svc_addr, cluster);
        self.journal_sync();
    }

    /// Earliest instant an in-flight migration's flow flip becomes due
    /// (transfer landed *and* the warm-started target is ready). The
    /// harness schedules its migration tick from this, exactly like
    /// [`Controller::next_tick_at`] drives the idle sweep.
    pub fn next_migration_at(&self) -> Option<SimTime> {
        self.migrate.next_due()
    }

    /// Starts a live migration of `svc_addr`'s sessions from cluster
    /// `from` to `to` — the explicit API trigger; the mobility and
    /// breaker-open triggers funnel through here too. Warm-starts the
    /// target (pull/create/scale-up, whatever its state requires) and
    /// snapshots the session ledger; the make-before-break flow flip
    /// happens at [`Controller::migration_tick`] once both the state
    /// transfer and the warm start are done. Returns whether a migration
    /// actually started.
    pub fn begin_migration(
        &mut self,
        now: SimTime,
        svc_addr: ServiceAddr,
        from: usize,
        to: usize,
        reason: MigrationReason,
        rng: &mut SimRng,
    ) -> bool {
        if !self.config.migration.live()
            || from >= self.clusters.len()
            || to >= self.clusters.len()
            || !self.migrate.can_start(svc_addr, from, to, now)
        {
            return false;
        }
        let Some(svc) = self.services.get(svc_addr).cloned() else {
            return false;
        };
        if self.memory.entries_at(svc_addr, from).is_empty() {
            // Nothing anchored at the source: nothing worth moving.
            return false;
        }
        // Warm start: make sure the target will have a Ready instance.
        let mut t = now;
        let ready_at = match self.clusters[to].state(&svc, now) {
            crate::cluster::InstanceState::Ready(_) => now,
            crate::cluster::InstanceState::Starting { ready_at } => ready_at,
            crate::cluster::InstanceState::Created => {
                match self.clusters[to].scale_up(&svc, t, rng) {
                    Ok((_, ready)) => ready,
                    Err(_) => return false,
                }
            }
            crate::cluster::InstanceState::NotDeployed => {
                if !self.clusters[to].has_image_cached(&svc) {
                    match self.clusters[to].pull(&svc, t, rng) {
                        Ok(done) => t = done,
                        Err(_) => return false,
                    }
                }
                match self.clusters[to].create(&svc, t, rng) {
                    Ok(done) => t = done,
                    Err(_) => return false,
                }
                match self.clusters[to].scale_up(&svc, t, rng) {
                    Ok((_, ready)) => ready,
                    Err(_) => return false,
                }
            }
        };
        if ready_at == SimTime::MAX {
            return false;
        }
        self.next_request += 1;
        let request = self.next_request;
        let root = self.telemetry.span(request, SpanId::NONE, "migration", now);
        let m = self
            .migrate
            .begin(svc_addr, from, to, reason, now, ready_at, request);
        self.migration_spans.insert(request, root);
        self.telemetry.event(root, "snapshot", now, || {
            format!(
                "{svc_addr}: cluster {from} -> {to} ({}), {} byte(s)",
                reason.label(),
                m.state_bytes
            )
        });
        self.telemetry.event(root, "transfer-done", m.transfer_done, || {
            format!("state landed; warm target ready at {ready_at:?}")
        });
        self.telemetry.metrics.inc("migrations_total");
        self.journal_sync();
        true
    }

    /// Flips every migration whose transfer (and warm start) completed by
    /// `now`: repoints the memorized flows at the new instance, installs
    /// wildcard redirects at each affected client's switch, and deletes
    /// the old pairs strictly later (the same make-before-break guard
    /// interval the handover uses). Returns the FlowMods per ingress.
    pub fn migration_tick(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(IngressId, OutboundMessage)> {
        let due = self.migrate.take_due(now);
        let mut out = Vec::new();
        for m in due {
            out.extend(self.finish_migration(&m, now, rng));
        }
        self.journal_sync();
        out
    }

    /// The make-before-break flow flip of one due migration.
    fn finish_migration(
        &mut self,
        m: &Migration,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(IngressId, OutboundMessage)> {
        let root = self
            .migration_spans
            .remove(&m.request)
            .unwrap_or(SpanId::NONE);
        let svc = self.services.get_shared(m.service);
        let new_inst = svc.as_ref().and_then(|s| {
            if m.to >= self.clusters.len() {
                return None;
            }
            match self.clusters[m.to].state(s, now) {
                crate::cluster::InstanceState::Ready(inst) => Some(inst),
                _ => None,
            }
        });
        let (Some(svc), Some(new_inst)) = (svc, new_inst) else {
            // The warm start fell through — the target died or was scaled
            // away mid-transfer. State and flows stay at the source.
            self.migrate.abort(m);
            self.telemetry.metrics.inc("migrations_aborted");
            self.telemetry.event(root, "aborted", now, || {
                "target not ready at flip time".to_owned()
            });
            self.telemetry.end_span(root, now);
            return Vec::new();
        };
        let t = now + self.config.processing.sample_duration(rng);
        let break_at = t + Duration::from_millis(50);
        let mut out: Vec<(IngressId, OutboundMessage)> = Vec::new();
        let mut flipped = 0usize;
        for (key, _flow) in self.memory.entries_at(m.service, m.from) {
            // Make: repoint the memorized flow, and — where the client's
            // port and MACs are known — install the wildcard redirect
            // toward the new instance, one priority below the exact flows
            // it shadows (the handover machinery, reused verbatim).
            self.memory.repoint(&key, new_inst, m.to, t);
            flipped += 1;
            let client = key.client_ip;
            let macs = self.client_macs.get(&client).copied();
            let loc = self.clients.location(client);
            let mut installed = false;
            if let (Some((client_mac, gw_mac)), Some((ingress, in_port))) = (macs, loc) {
                // A client mid-handover is owned by that path; only flip
                // the switch state where the flow's ingress is current.
                if ingress == key.ingress {
                    let msgs = self.install_handover_redirect(
                        key.ingress,
                        t,
                        client,
                        client_mac,
                        gw_mac,
                        in_port,
                        &svc,
                        new_inst,
                        m.to,
                    );
                    out.extend(msgs.into_iter().map(|msg| (key.ingress, msg)));
                    installed = true;
                }
            }
            // Break, strictly later: the old pairs toward the source
            // outlive the installs by the guard interval, so replies to
            // requests still in flight find their reverse flows intact.
            out.extend(self.teardown_migrated_pairs(
                client, key.ingress, m.service, m.from, installed, break_at,
            ));
        }
        let moved = self.migrate.complete(m, t, flipped);
        let metrics = &mut self.telemetry.metrics;
        metrics.add("state_bytes_transferred", moved);
        metrics.add("migration_flows_flipped", flipped as u64);
        metrics.observe(
            "migration_transfer_ns",
            m.transfer_done.saturating_since(m.started_at),
        );
        metrics.observe("migration_interruption_ns", t.saturating_since(m.transfer_done));
        self.telemetry.event(root, "flip", t, || {
            format!(
                "{flipped} flow(s) repointed to cluster {}; {moved} byte(s) moved",
                m.to
            )
        });
        self.telemetry.end_span(root, t);
        out
    }

    /// The breaker-open trigger: every service the FlowMemory still
    /// anchors on a cluster whose circuit breaker is Open is live-migrated
    /// to the nearest serving cluster — instance-granular (each service
    /// moves individually), never to the cloud. Call right after a health
    /// sweep; a no-op unless `migration.policy` is `live`. Returns how
    /// many migrations started.
    pub fn migrate_on_breaker_open(&mut self, now: SimTime, rng: &mut SimRng) -> usize {
        if !self.migrate.live() {
            return 0;
        }
        let mut jobs: Vec<(ServiceAddr, usize)> = Vec::new();
        for (cluster, _inst, svc_addr) in self.memory.instances() {
            if self.dispatcher.health().breaker_state(cluster) == BreakerState::Open {
                jobs.push((svc_addr, cluster));
            }
        }
        jobs.sort_by_key(|(s, c)| (s.ip.octets(), s.port, *c));
        jobs.dedup();
        let mut started = 0usize;
        for (svc, from) in jobs {
            let Some(to) = self.migration_target(from, None, now) else {
                continue;
            };
            if self.begin_migration(now, svc, from, to, MigrationReason::BreakerOpen, rng) {
                started += 1;
            }
        }
        self.journal_sync();
        started
    }

    /// Scans the client's memorized flows after an announced move and
    /// starts a live migration for each session whose cluster fell at
    /// least `mobility_hops` clusters behind the nearest candidate, as
    /// seen from the new ingress.
    fn migrate_lagging_sessions(
        &mut self,
        now: SimTime,
        client: Ipv4Addr,
        ingress: IngressId,
        rng: &mut SimRng,
    ) {
        let distances = self.distances_from(ingress);
        let mut jobs: Vec<(ServiceAddr, usize)> = Vec::new();
        for (key, flow) in self.memory.flows_of_client_at(client, ingress) {
            if flow.cluster >= self.clusters.len() {
                continue;
            }
            let dist = |i: usize| {
                distances
                    .as_deref()
                    .and_then(|d| d.get(i).copied())
                    .unwrap_or_else(|| self.clusters[i].latency())
            };
            let here = dist(flow.cluster);
            let closer = (0..self.clusters.len()).filter(|&i| dist(i) < here).count();
            if closer >= self.config.migration.mobility_hops {
                jobs.push((key.service, flow.cluster));
            }
        }
        jobs.sort_by_key(|(s, c)| (s.ip.octets(), s.port, *c));
        jobs.dedup();
        for (svc, from) in jobs {
            let Some(to) = self.migration_target(from, distances.as_deref(), now) else {
                continue;
            };
            self.begin_migration(now, svc, from, to, MigrationReason::Mobility, rng);
        }
    }

    /// The migration break for one client: tombstones the pairs still
    /// aimed at the migration source and deletes their switch flows at
    /// `at`. One exception when a replacement wildcard was `installed`:
    /// a forward match identical to the replacement's (a leftover
    /// handover wildcard for the same client and service) was already
    /// replaced *in place* by the ADD — the switch keys flows by
    /// `(match, priority)` — and the table's delete removes every
    /// priority with an equal match, so deleting it here would take the
    /// fresh flow down with it. Its reverse flow (keyed by the old
    /// instance's address, so never colliding) is still deleted.
    fn teardown_migrated_pairs(
        &mut self,
        client: Ipv4Addr,
        ingress: IngressId,
        service: ServiceAddr,
        from: usize,
        installed: bool,
        at: SimTime,
    ) -> Vec<(IngressId, OutboundMessage)> {
        let replaced_fwd = installed.then(|| {
            Match::service(service.ip.octets(), service.port)
                .with(OxmField::Ipv4Src(client.octets()))
        });
        let mut doomed: Vec<Match> = Vec::new();
        let mut dead_idx: Vec<usize> = Vec::new();
        if let Some(pairs) = self.installed_pairs_mut(client, ingress) {
            for (i, p) in pairs.iter_mut().enumerate() {
                if !p.dead && p.service == service && p.cluster == Some(from) {
                    p.dead = true;
                    dead_idx.push(i);
                    if replaced_fwd.as_ref() != Some(&p.fwd.match_) {
                        doomed.push(p.fwd.match_.clone());
                    }
                    doomed.push(p.rev.match_.clone());
                }
            }
        }
        for idx in dead_idx {
            self.journal_record(JournalEvent::PairDead { client, ingress, idx });
        }
        let mut out = Vec::new();
        for m in doomed {
            let x = self.xid();
            out.push((
                ingress,
                OutboundMessage {
                    at,
                    data: Message::FlowMod {
                        cookie: 0,
                        table_id: 0,
                        command: openflow::messages::FlowModCommand::Delete,
                        idle_timeout: 0,
                        hard_timeout: 0,
                        priority: 0,
                        buffer_id: OFP_NO_BUFFER,
                        flags: 0,
                        match_: m,
                        instructions: vec![],
                    }
                    .encode(x),
                },
            ));
        }
        out
    }

    /// The migration-target choice: the nearest cluster that can serve —
    /// never one whose circuit breaker is Open or that sits in a declared
    /// outage window (the breaker-aware scheduler views enforce the same
    /// rule for dispatch).
    fn migration_target(
        &self,
        from: usize,
        distances: Option<&[Duration]>,
        now: SimTime,
    ) -> Option<usize> {
        let health = self.dispatcher.health();
        (0..self.clusters.len())
            .filter(|&i| i != from)
            .filter(|&i| {
                health.breaker_state(i) != BreakerState::Open && !health.in_outage(i, now)
            })
            .min_by_key(|&i| {
                distances
                    .and_then(|d| d.get(i).copied())
                    .unwrap_or_else(|| self.clusters[i].latency())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_deployment;
    use crate::cluster::DockerCluster;
    use crate::scheduler::ProximityScheduler;
    use dockersim::DockerEngine;
    use netsim::addr::MacAddr;
    use netsim::TcpFlags;
    use ovs::{Effect, Switch, SwitchConfig};

    const CLIENT_PORT: u32 = 1;
    const EDGE_PORT: u32 = 2;
    const CLOUD_PORT: u32 = 3;

    fn make_service(key: &str, port: u16) -> EdgeService {
        let profile = containerd::ServiceSet::by_key(key).unwrap();
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), port);
        let yaml = format!(
            "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
            profile.manifests[0].reference, profile.listen_port
        );
        let annotated = annotate_deployment(&yaml, addr, None).unwrap();
        EdgeService {
            addr,
            name: annotated.service_name.clone(),
            annotated,
            profile,
        }
    }

    fn setup(rng: &mut SimRng) -> (Controller, Switch) {
        setup_with(rng, ControllerConfig::default())
    }

    fn setup_with(rng: &mut SimRng, config: ControllerConfig) -> (Controller, Switch) {
        let mut engine = DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, rng);
        let cluster = DockerCluster::new(
            "edge-docker",
            engine,
            MacAddr::from_id(200),
            Ipv4Addr::new(10, 0, 0, 10),
            Duration::from_micros(150),
        );
        let mut ctl = Controller::new(
            Box::<ProximityScheduler>::default(),
            PortMap {
                cluster_ports: HashMap::new(),
                cloud_port: CLOUD_PORT,
            },
            config,
        );
        ctl.add_cluster(Box::new(cluster), EDGE_PORT);
        ctl.register_service(make_service("asm", 80));
        let sw = Switch::new(SwitchConfig {
            datapath_id: 1,
            n_buffers: 64,
            miss_send_len: 0xffff,
            ports: vec![CLIENT_PORT, EDGE_PORT, CLOUD_PORT],
        });
        (ctl, sw)
    }

    fn client_syn(src_port: u16) -> TcpFrame {
        TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(99), // perceived cloud gateway
            Ipv4Addr::new(192, 168, 1, 20),
            src_port,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        )
    }

    /// Full round: client SYN → switch miss → controller → deployment →
    /// flows installed → buffered packet released toward the edge, rewritten.
    #[test]
    fn end_to_end_on_demand_with_waiting() {
        let mut rng = SimRng::new(1);
        let (mut ctl, mut sw) = setup(&mut rng);
        let t0 = SimTime::from_secs(1);

        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else {
            panic!("expected packet-in");
        };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        assert_eq!(out.len(), 2, "reverse + forward flow (buffered packet)");
        let answered = out[0].at;
        assert!(answered > t0, "with waiting: answered later");
        assert!(answered - t0 < Duration::from_secs(1), "sub-second for cached asm");

        // Deliver the flow mods to the switch at their scheduled time.
        let mut forwards = Vec::new();
        for m in &out {
            forwards.extend(sw.handle_controller(m.at, &m.data).unwrap());
        }
        // The buffered SYN was released, rewritten toward the edge instance.
        let fwd = forwards
            .iter()
            .find_map(|e| match e {
                Effect::Forward { port, data } => Some((*port, data.clone())),
                _ => None,
            })
            .expect("buffered packet released");
        assert_eq!(fwd.0, EDGE_PORT);
        let f = TcpFrame::decode(&fwd.1).unwrap();
        assert_eq!(f.dst_ip, Ipv4Addr::new(10, 0, 0, 10));
        assert_eq!(f.dst_port, 31000);
        assert_eq!(f.dst_mac, MacAddr::from_id(200));
        assert_eq!(f.src_ip, Ipv4Addr::new(192, 168, 1, 20), "client src kept");

        // Server reply is rewritten back to the cloud address (reverse flow).
        let reply = f.reply(TcpFlags::SYN_ACK, Vec::new());
        let effects = sw.handle_frame(answered, EDGE_PORT, &reply.encode());
        let Effect::Forward { port, data } = &effects[0] else {
            panic!("reply should flow back: {effects:?}");
        };
        assert_eq!(*port, CLIENT_PORT);
        let r = TcpFrame::decode(data).unwrap();
        assert_eq!(r.src_ip, Ipv4Addr::new(203, 0, 113, 10), "masqueraded");
        assert_eq!(r.src_port, 80);
        assert_eq!(r.dst_mac, MacAddr::from_id(1));

        // Subsequent client packets take the switch fast path (no packet-in).
        let misses_before = sw.table_misses;
        let mut ack = client_syn(50000);
        ack.flags = TcpFlags::ACK;
        ack.payload = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        let effects = sw.handle_frame(answered + Duration::from_millis(1), CLIENT_PORT, &ack.encode());
        assert!(matches!(effects[0], Effect::Forward { port: EDGE_PORT, .. }));
        assert_eq!(sw.table_misses, misses_before);

        // Controller recorded the request as Waited with phase data.
        assert_eq!(ctl.records.len(), 1);
        let rec = &ctl.records[0];
        assert_eq!(rec.kind, RequestKind::Waited);
        assert!(rec.phases.wait_time().is_some());
        assert_eq!(rec.cluster, Some(0));
    }

    #[test]
    fn second_connection_is_memory_hit_and_fast() {
        let mut rng = SimRng::new(2);
        let (mut ctl, mut sw) = setup(&mut rng);
        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        let answered = out[0].at;
        for m in &out {
            sw.handle_controller(m.at, &m.data).unwrap();
        }

        // New connection (different src port) later: flows for it are new,
        // but the FlowMemory answers instantly — no deployment.
        let t1 = answered + Duration::from_secs(5);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &client_syn(50001).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap();
        assert!(out[0].at - t1 < Duration::from_millis(20), "instant answer");
        assert_eq!(ctl.records[1].kind, RequestKind::MemoryHit);
    }

    #[test]
    fn unregistered_service_goes_to_cloud() {
        let mut rng = SimRng::new(3);
        let (mut ctl, mut sw) = setup(&mut rng);
        let mut frame = client_syn(50000);
        frame.dst_port = 443; // not registered
        let effects = sw.handle_frame(SimTime::from_secs(1), CLIENT_PORT, &frame.encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl
            .handle_switch_message(SimTime::from_secs(1), pkt_in, &mut rng)
            .unwrap();
        let mut released = Vec::new();
        for m in &out {
            released.extend(sw.handle_controller(m.at, &m.data).unwrap());
        }
        let Effect::Forward { port, data } = &released[0] else {
            panic!("expected forward: {released:?}")
        };
        assert_eq!(*port, CLOUD_PORT);
        // Untouched: still addressed to the original destination.
        let f = TcpFrame::decode(data).unwrap();
        assert_eq!(f.dst_port, 443);
        assert_eq!(ctl.records[0].kind, RequestKind::Unregistered);
    }

    #[test]
    fn idle_sweep_scales_down_and_next_request_redeploys() {
        let mut rng = SimRng::new(4);
        let (mut ctl, mut sw) = setup(&mut rng);
        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        let answered = out[0].at;
        assert_eq!(ctl.memory().len(), 1);

        // Idle past the memory timeout: service gets scaled down.
        let idle_at = answered + Duration::from_secs(61);
        let events = ctl.tick(idle_at, &mut rng);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cluster, "edge-docker");
        assert!(ctl.memory().is_empty());

        // Next request must deploy again (Waited, not MemoryHit).
        let t1 = idle_at + Duration::from_secs(5);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &client_syn(50002).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap();
        assert_eq!(ctl.records[1].kind, RequestKind::Waited);
    }

    #[test]
    fn echo_and_bootstrap() {
        let mut rng = SimRng::new(5);
        let (mut ctl, _) = setup(&mut rng);
        let boot = ctl.bootstrap();
        assert_eq!(boot.len(), 2);
        let (_, m, _) = Message::decode(&boot[0].data).unwrap();
        assert_eq!(m, Message::Hello);
        let out = ctl
            .handle_switch_message(
                SimTime::ZERO,
                &Message::EchoRequest(b"ka".to_vec()).encode(7),
                &mut rng,
            )
            .unwrap();
        let (_, m, _) = Message::decode(&out[0].data).unwrap();
        assert_eq!(m, Message::EchoReply(b"ka".to_vec()));
    }

    #[test]
    fn flow_stats_round_trip_through_the_switch() {
        let mut rng = SimRng::new(8);
        let (mut ctl, mut sw) = setup(&mut rng);
        // Deploy + install flows for one connection.
        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        for m in &out {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        // Query stats and feed the reply back.
        let q = ctl.request_flow_stats(SimTime::from_secs(5));
        let effects = sw.handle_controller(q.at, &q.data).unwrap();
        let Effect::ToController(reply) = &effects[0] else { panic!() };
        ctl.handle_switch_message(SimTime::from_secs(5), reply, &mut rng)
            .unwrap();
        let stats = ctl.last_flow_stats.as_ref().expect("stats recorded");
        assert_eq!(stats.len(), 2, "forward + reverse flow");
        assert!(stats.iter().any(|f| f.cookie == 1));
        assert!(stats.iter().any(|f| f.cookie == 2));
    }

    #[test]
    fn switch_errors_are_recorded() {
        let mut rng = SimRng::new(9);
        let (mut ctl, _) = setup(&mut rng);
        let err = Message::Error {
            error_type: openflow::messages::ErrorType::FlowModFailed,
            code: 6,
            data: vec![1, 2, 3],
        };
        ctl.handle_switch_message(SimTime::ZERO, &err.encode(4), &mut rng)
            .unwrap();
        assert_eq!(
            ctl.switch_errors,
            vec![(openflow::messages::ErrorType::FlowModFailed, 6)]
        );
    }

    #[test]
    fn client_mobility_flushes_memory_and_reschedules() {
        let mut rng = SimRng::new(10);
        let (mut ctl, mut sw) = setup(&mut rng);
        let t0 = SimTime::from_secs(1);
        // First request from port 1.
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        let answered = out[0].at;
        assert_eq!(ctl.memory().len(), 1);
        assert_eq!(
            ctl.clients.location(Ipv4Addr::new(192, 168, 1, 20)),
            Some((IngressId::DEFAULT, CLIENT_PORT))
        );

        // Same client shows up on a *different* ingress port (mobility):
        // its memorized flows must be flushed and the request rescheduled.
        let t1 = answered + Duration::from_secs(3);
        let effects = sw.handle_frame(t1, CLOUD_PORT, &client_syn(50001).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap();
        assert_eq!(ctl.clients.moves().len(), 1);
        assert_eq!(
            ctl.clients.location(Ipv4Addr::new(192, 168, 1, 20)),
            Some((IngressId::DEFAULT, CLOUD_PORT))
        );
        // Rescheduled (Redirect via scheduler), not a memory hit.
        assert_eq!(ctl.records[1].kind, RequestKind::Redirect);
    }

    /// Anchored handover across two ingress switches: make-before-break, the
    /// memory entry re-keyed, the session carried by wildcard flows at the
    /// new switch, and the old switch's exact flows torn down afterwards.
    #[test]
    fn handover_is_make_before_break_and_rekeys_memory() {
        let mut rng = SimRng::new(11);
        let (mut ctl, mut sw0) = setup(&mut rng);
        // Second gNB, fronting the same cluster on the same port numbers.
        let g1 = ctl.add_ingress(PortMap {
            cluster_ports: HashMap::from([("edge-docker".into(), EDGE_PORT)]),
            cloud_port: CLOUD_PORT,
        });
        let mut sw1 = Switch::new(SwitchConfig {
            datapath_id: 2,
            n_buffers: 64,
            miss_send_len: 0xffff,
            ports: vec![CLIENT_PORT, EDGE_PORT, CLOUD_PORT],
        });
        ctl.telemetry = Telemetry::recording();

        // Session established at gNB 0.
        let t0 = SimTime::from_secs(1);
        let effects = sw0.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        for m in &out {
            sw0.handle_controller(m.at, &m.data).unwrap();
        }
        let answered = out.iter().map(|m| m.at).max().unwrap();
        assert_eq!(ctl.memory().len(), 1);

        // The client attaches to gNB 1.
        let t1 = answered + Duration::from_secs(2);
        let client = Ipv4Addr::new(192, 168, 1, 20);
        let ho = ctl.handle_attachment_change(
            t1,
            client,
            MacAddr::from_id(1),
            MacAddr::from_id(99),
            IngressId::DEFAULT,
            g1,
            CLIENT_PORT,
            HandoverPolicy::Anchored,
            &mut rng,
        );
        assert_eq!(ho.flows_migrated, 1);
        assert_eq!(ho.redispatched, 0, "anchored: instance kept");
        assert!(ho.completed_at >= t1);

        // Make-before-break: every install at the new switch precedes every
        // delete at the old one.
        let adds: Vec<_> = ho.messages.iter().filter(|(g, _)| *g == g1).collect();
        let dels: Vec<_> =
            ho.messages.iter().filter(|(g, _)| *g == IngressId::DEFAULT).collect();
        assert_eq!(adds.len(), 2, "wildcard pair at the new gNB");
        assert_eq!(dels.len(), 2, "exact pair deleted at the old gNB");
        let last_add = adds.iter().map(|(_, m)| m.at).max().unwrap();
        let first_del = dels.iter().map(|(_, m)| m.at).min().unwrap();
        assert!(last_add < first_del, "break strictly after make");
        assert_eq!(last_add, ho.completed_at);

        // Memory re-keyed to the new ingress — nothing left on the old one.
        assert_eq!(ctl.memory().len(), 1);
        assert!(ctl.memory.flows_of_client_at(client, IngressId::DEFAULT).is_empty());
        assert_eq!(ctl.memory.flows_of_client_at(client, g1).len(), 1);

        // Deliver the messages. The in-flight session (same src port, a later
        // packet) flows through the new switch without a packet-in.
        for (g, m) in &ho.messages {
            let sw = if *g == g1 { &mut sw1 } else { &mut sw0 };
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        let t2 = first_del + Duration::from_millis(1);
        let mut pkt = client_syn(50000);
        pkt.flags = TcpFlags::ACK;
        let effects = sw1.handle_frame(t2, CLIENT_PORT, &pkt.encode());
        let Effect::Forward { port, data } = &effects[0] else {
            panic!("handed-over packet should flow: {effects:?}");
        };
        assert_eq!(*port, EDGE_PORT);
        let f = TcpFrame::decode(data).unwrap();
        assert_eq!(f.dst_ip, Ipv4Addr::new(10, 0, 0, 10), "rewritten to instance");
        // And a *new* connection of the same pair is also covered (wildcard).
        let effects = sw1.handle_frame(t2, CLIENT_PORT, &client_syn(51000).encode());
        assert!(
            matches!(&effects[0], Effect::Forward { port, .. } if *port == EDGE_PORT),
            "wildcard covers new src ports: {effects:?}"
        );
        // The old switch no longer carries the session.
        let effects = sw0.handle_frame(t2, CLIENT_PORT, &pkt.encode());
        assert!(
            matches!(&effects[0], Effect::ToController(_)),
            "old exact flows deleted: {effects:?}"
        );

        // Reverse direction at the new switch masquerades back to the cloud
        // address (transparency preserved across the handover).
        let reply = f.reply(TcpFlags::ACK, vec![1, 2, 3]);
        let effects = sw1.handle_frame(t2, EDGE_PORT, &reply.encode());
        let Effect::Forward { port, data } = &effects[0] else {
            panic!("reply should flow back: {effects:?}");
        };
        assert_eq!(*port, CLIENT_PORT);
        let r = TcpFrame::decode(data).unwrap();
        assert_eq!(r.src_ip, Ipv4Addr::new(203, 0, 113, 10), "masqueraded");
        assert_eq!(r.dst_mac, MacAddr::from_id(1));

        assert_eq!(ctl.telemetry.metrics.counter("handovers_total"), 1);
        assert_eq!(ctl.telemetry.metrics.counter("flows_migrated"), 1);
        let log = ctl.telemetry.span_log().unwrap();
        assert!(log.check().ok(), "handover spans well-formed");
    }

    /// Redispatch handover consults the scheduler with the Handover class
    /// and re-places the session through the normal dispatch pipeline.
    #[test]
    fn handover_redispatch_replaces_the_session() {
        let mut rng = SimRng::new(12);
        let (mut ctl, mut sw0) = setup(&mut rng);
        let g1 = ctl.add_ingress(PortMap {
            cluster_ports: HashMap::from([("edge-docker".into(), EDGE_PORT)]),
            cloud_port: CLOUD_PORT,
        });

        let t0 = SimTime::from_secs(1);
        let effects = sw0.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        let answered = out.iter().map(|m| m.at).max().unwrap();
        assert_eq!(ctl.memory().len(), 1);

        let t1 = answered + Duration::from_secs(2);
        let ho = ctl.handle_attachment_change(
            t1,
            Ipv4Addr::new(192, 168, 1, 20),
            MacAddr::from_id(1),
            MacAddr::from_id(99),
            IngressId::DEFAULT,
            g1,
            CLIENT_PORT,
            HandoverPolicy::Redispatch,
            &mut rng,
        );
        assert_eq!(ho.flows_migrated, 1);
        assert_eq!(ho.redispatched, 1, "scheduler consulted");
        // The re-dispatched session was memorized under the new ingress.
        assert_eq!(
            ctl.memory
                .flows_of_client_at(Ipv4Addr::new(192, 168, 1, 20), g1)
                .len(),
            1
        );
        assert!(!ho.messages.is_empty());
    }

    #[test]
    fn remove_phase_deletes_after_grace_period() {
        let mut rng = SimRng::new(11);
        let mut engine = DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, &mut rng);
        let cluster = DockerCluster::new(
            "edge-docker",
            engine,
            MacAddr::from_id(200),
            Ipv4Addr::new(10, 0, 0, 10),
            Duration::from_micros(150),
        );
        let mut ctl = Controller::new(
            Box::<ProximityScheduler>::default(),
            PortMap { cluster_ports: HashMap::new(), cloud_port: CLOUD_PORT },
            ControllerConfig {
                memory_idle: Duration::from_secs(20),
                remove_after: Duration::from_secs(30).into(),
                ..ControllerConfig::default()
            },
        );
        ctl.add_cluster(Box::new(cluster), EDGE_PORT);
        ctl.register_service(make_service("asm", 80));
        let mut sw = Switch::new(SwitchConfig {
            datapath_id: 1,
            n_buffers: 64,
            miss_send_len: 0xffff,
            ports: vec![CLIENT_PORT, EDGE_PORT, CLOUD_PORT],
        });
        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();

        // Idle sweep at t=25: scale-down only.
        let ev = ctl.tick(SimTime::from_secs(25), &mut rng);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].action, LifecycleAction::ScaleDown);
        let svc = ctl.services().get(ev[0].service).cloned().unwrap();
        assert!(matches!(
            ctl.cluster(0).state(&svc, SimTime::from_secs(26)),
            crate::cluster::InstanceState::Created
        ));
        // next_tick_at points at the pending removal.
        assert_eq!(ctl.next_tick_at(), Some(SimTime::from_secs(55)));

        // Sweep past the grace period: removed entirely.
        let ev = ctl.tick(SimTime::from_secs(56), &mut rng);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].action, LifecycleAction::Remove);
        assert!(matches!(
            ctl.cluster(0).state(&svc, SimTime::from_secs(57)),
            crate::cluster::InstanceState::NotDeployed
        ));
        // The next request redeploys through the full Create + Scale Up.
        let t1 = SimTime::from_secs(60);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &client_syn(50002).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap();
        let rec = ctl.records.last().unwrap();
        assert_eq!(rec.kind, RequestKind::Waited);
        assert!(rec.phases.create_done.is_some(), "create ran again");
    }

    #[test]
    fn flow_removed_is_counted() {
        let mut rng = SimRng::new(6);
        let (mut ctl, _) = setup(&mut rng);
        let fr = Message::FlowRemoved {
            cookie: 1,
            priority: 100,
            reason: openflow::messages::RemovedReason::IdleTimeout,
            table_id: 0,
            duration_sec: 10,
            duration_nsec: 0,
            idle_timeout: 10,
            hard_timeout: 0,
            packet_count: 5,
            byte_count: 500,
            match_: Match::any(),
        };
        ctl.handle_switch_message(SimTime::ZERO, &fr.encode(9), &mut rng)
            .unwrap();
        assert_eq!(ctl.flows_removed, 1);
    }

    /// A with-waiting deployment that exhausts its retries releases the held
    /// request toward the cloud, and later requests inside the failure
    /// window coalesce on the same verdict.
    #[test]
    fn exhausted_deployment_releases_the_request_to_the_cloud() {
        let mut rng = SimRng::new(21);
        let plan = desim::FaultPlan {
            create_failure: 1.0,
            ..desim::FaultPlan::uniform(0.0, 77)
        };
        let mut engine = DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, &mut rng);
        engine.node_mut().set_faults(plan.injector(1));
        let cluster = DockerCluster::new(
            "edge-docker",
            engine,
            MacAddr::from_id(200),
            Ipv4Addr::new(10, 0, 0, 10),
            Duration::from_micros(150),
        );
        let mut ctl = Controller::new(
            Box::<ProximityScheduler>::default(),
            PortMap { cluster_ports: HashMap::new(), cloud_port: CLOUD_PORT },
            ControllerConfig::default(),
        );
        ctl.add_cluster(Box::new(cluster), EDGE_PORT);
        ctl.register_service(make_service("asm", 80));
        let mut sw = Switch::new(SwitchConfig {
            datapath_id: 1,
            n_buffers: 64,
            miss_send_len: 0xffff,
            ports: vec![CLIENT_PORT, EDGE_PORT, CLOUD_PORT],
        });

        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();

        let rec = &ctl.records[0];
        assert_eq!(rec.kind, RequestKind::FallbackCloud);
        assert_eq!(rec.cluster, None);
        assert_eq!(
            rec.phases.create_retries,
            ctl.config.retry.max_attempts - 1,
            "every allowed retry was spent on the create phase"
        );
        let released = rec.phases.gave_up_at.expect("deployment gave up");
        assert_eq!(rec.answered_at, released.max(rec.at));
        assert!(ctl.memory().is_empty(), "failed deployments are not memorized");

        // The buffered SYN is released through a plain cloud path, with the
        // original destination untouched.
        let mut released_fx = Vec::new();
        for m in &out {
            released_fx.extend(sw.handle_controller(m.at, &m.data).unwrap());
        }
        let Effect::Forward { port, data } = released_fx
            .iter()
            .find(|e| matches!(e, Effect::Forward { .. }))
            .expect("buffered packet released")
        else {
            unreachable!()
        };
        assert_eq!(*port, CLOUD_PORT);
        let f = TcpFrame::decode(data).unwrap();
        assert_eq!(f.dst_ip, Ipv4Addr::new(203, 0, 113, 10));
        assert_eq!(f.dst_port, 80);

        // A second request inside the failure window coalesces: same
        // release instant, no fresh deployment attempt.
        let t1 = t0 + Duration::from_millis(5);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &client_syn(50001).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap();
        assert_eq!(ctl.coalesced_count(), 1);
        assert_eq!(ctl.records[1].kind, RequestKind::FallbackCloud);
        assert_eq!(ctl.records[1].answered_at, ctl.records[0].answered_at);
    }

    /// Regression: the idle sweep must not scale a service down while a
    /// with-waiting request is held — the held client would be redirected
    /// to a stopped instance. The expiry is deferred until the hold drains.
    #[test]
    fn scale_down_is_deferred_while_a_request_is_held() {
        let mut rng = SimRng::new(22);
        let mut engine = DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, &mut rng);
        let cluster = DockerCluster::new(
            "edge-docker",
            engine,
            MacAddr::from_id(200),
            Ipv4Addr::new(10, 0, 0, 10),
            Duration::from_micros(150),
        );
        let mut ctl = Controller::new(
            Box::<ProximityScheduler>::default(),
            PortMap { cluster_ports: HashMap::new(), cloud_port: CLOUD_PORT },
            ControllerConfig {
                // Tiny idle timeout so a stale entry can expire mid-hold.
                memory_idle: Duration::from_millis(1),
                ..ControllerConfig::default()
            },
        );
        ctl.add_cluster(Box::new(cluster), EDGE_PORT);
        ctl.register_service(make_service("asm", 80));
        let mut sw = Switch::new(SwitchConfig {
            datapath_id: 1,
            n_buffers: 64,
            miss_send_len: 0xffff,
            ports: vec![CLIENT_PORT, EDGE_PORT, CLOUD_PORT],
        });

        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        assert_eq!(ctl.records[0].kind, RequestKind::Waited);
        let held_until = out[0].at;

        // The waiting client moves away (its own entry is flushed) and a
        // stale entry from another client expires while the hold is live.
        ctl.memory.forget_client(Ipv4Addr::new(192, 168, 1, 20));
        let svc = ctl
            .services()
            .get(ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80))
            .cloned()
            .unwrap();
        let inst = ctl.cluster(0).instance_addr(&svc).unwrap();
        ctl.memory.memorize(
            crate::flowmemory::FlowKey {
                ingress: IngressId::DEFAULT,
                client_ip: Ipv4Addr::new(192, 168, 1, 99),
                service: svc.addr,
            },
            inst,
            0,
            t0,
        );

        // Mid-hold sweep: the expiry fires but the scale-down is deferred.
        let mid = t0 + (held_until - t0) / 2;
        let ev = ctl.tick(mid, &mut rng);
        assert!(ev.is_empty(), "scale-down deferred while the request is held");
        assert!(
            matches!(
                ctl.cluster(0).state(&svc, mid),
                crate::cluster::InstanceState::Ready(_)
                    | crate::cluster::InstanceState::Starting { .. }
            ),
            "instance still up for the held client"
        );
        // The deferral is visible to the event loop.
        assert_eq!(ctl.next_tick_at(), Some(held_until));

        // Once the hold drains the idle scale-down proceeds.
        let after = held_until + Duration::from_millis(10);
        let ev = ctl.tick(after, &mut rng);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].action, LifecycleAction::ScaleDown);
        assert!(matches!(
            ctl.cluster(0).state(&svc, after + Duration::from_millis(1)),
            crate::cluster::InstanceState::Created
        ));
    }

    /// FlowMemory expiry racing a held (with-waiting) request, traced: the
    /// expiry/deferral machinery must not disturb the span ledger — every
    /// request's root span closes exactly once, and the scale-down that the
    /// hold deferred still lands in the metrics.
    #[test]
    fn spans_close_once_across_expiry_and_held_requests() {
        let mut rng = SimRng::new(23);
        let mut engine = DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, &mut rng);
        let cluster = DockerCluster::new(
            "edge-docker",
            engine,
            MacAddr::from_id(200),
            Ipv4Addr::new(10, 0, 0, 10),
            Duration::from_micros(150),
        );
        let mut ctl = Controller::new(
            Box::<ProximityScheduler>::default(),
            PortMap { cluster_ports: HashMap::new(), cloud_port: CLOUD_PORT },
            ControllerConfig {
                memory_idle: Duration::from_millis(1),
                ..ControllerConfig::default()
            },
        );
        ctl.telemetry = Telemetry::recording();
        ctl.add_cluster(Box::new(cluster), EDGE_PORT);
        ctl.register_service(make_service("asm", 80));
        let mut sw = Switch::new(SwitchConfig {
            datapath_id: 1,
            n_buffers: 64,
            miss_send_len: 0xffff,
            ports: vec![CLIENT_PORT, EDGE_PORT, CLOUD_PORT],
        });

        // Request 1: on-demand deployment with waiting (held).
        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        assert_eq!(ctl.records[0].kind, RequestKind::Waited);
        let held_until = out[0].at;

        // A stale entry from another client expires mid-hold: deferred.
        ctl.memory.forget_client(Ipv4Addr::new(192, 168, 1, 20));
        let svc = ctl
            .services()
            .get(ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80))
            .cloned()
            .unwrap();
        let inst = ctl.cluster(0).instance_addr(&svc).unwrap();
        ctl.memory.memorize(
            crate::flowmemory::FlowKey {
                ingress: IngressId::DEFAULT,
                client_ip: Ipv4Addr::new(192, 168, 1, 99),
                service: svc.addr,
            },
            inst,
            0,
            t0,
        );
        let mid = t0 + (held_until - t0) / 2;
        assert!(ctl.tick(mid, &mut rng).is_empty(), "deferred while held");

        // Request 2 after the hold drains and the service scaled down:
        // a fresh deployment (the memory has long expired).
        let after = held_until + Duration::from_millis(10);
        assert_eq!(ctl.tick(after, &mut rng).len(), 1);
        let t1 = after + Duration::from_secs(1);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &client_syn(50002).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap();
        assert_eq!(ctl.records[1].kind, RequestKind::Waited);

        // The span ledger: one root span per request, each closed exactly
        // once, no orphans.
        let log = ctl.telemetry.span_log().expect("recording endpoint");
        let check = log.check();
        assert!(check.ok(), "clean span log: {}", check.to_json_line());
        let roots: Vec<_> = log.spans().filter(|s| s.name == "request").collect();
        assert_eq!(roots.len(), ctl.records.len());
        for (root, rec) in roots.iter().zip(&ctl.records) {
            assert_eq!(root.end, Some(rec.answered_at), "closed at the answer instant");
        }
        assert_eq!(log.request_ids(), vec![1, 2]);
        // The deferred scale-down still landed in the metrics.
        assert_eq!(ctl.telemetry.metrics.counter("scale_downs"), 1);
        assert_eq!(ctl.telemetry.metrics.counter("requests_waited"), 2);
    }

    /// A traced FallbackCloud release: the root span's close instant lies in
    /// the sim-future at dispatch time (the give-up instant), yet it closes
    /// exactly once — and the coalesced second request gets its own span.
    #[test]
    fn fallback_cloud_spans_close_once() {
        let mut rng = SimRng::new(24);
        let plan = desim::FaultPlan {
            create_failure: 1.0,
            ..desim::FaultPlan::uniform(0.0, 77)
        };
        let mut engine = DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, &mut rng);
        engine.node_mut().set_faults(plan.injector(1));
        let cluster = DockerCluster::new(
            "edge-docker",
            engine,
            MacAddr::from_id(200),
            Ipv4Addr::new(10, 0, 0, 10),
            Duration::from_micros(150),
        );
        let mut ctl = Controller::new(
            Box::<ProximityScheduler>::default(),
            PortMap { cluster_ports: HashMap::new(), cloud_port: CLOUD_PORT },
            ControllerConfig::default(),
        );
        ctl.telemetry = Telemetry::recording();
        ctl.add_cluster(Box::new(cluster), EDGE_PORT);
        ctl.register_service(make_service("asm", 80));
        let mut sw = Switch::new(SwitchConfig {
            datapath_id: 1,
            n_buffers: 64,
            miss_send_len: 0xffff,
            ports: vec![CLIENT_PORT, EDGE_PORT, CLOUD_PORT],
        });

        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        assert_eq!(ctl.records[0].kind, RequestKind::FallbackCloud);

        // Second request coalesces onto the cached failure.
        let t1 = t0 + Duration::from_millis(5);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &client_syn(50001).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap();
        assert_eq!(ctl.records[1].kind, RequestKind::FallbackCloud);

        let log = ctl.telemetry.span_log().unwrap();
        let check = log.check();
        assert!(check.ok(), "clean span log: {}", check.to_json_line());
        for request in [1u64, 2] {
            let roots: Vec<_> = log
                .spans_for_request(request)
                .filter(|s| s.name == "request")
                .collect();
            assert_eq!(roots.len(), 1, "one root per request");
            assert_eq!(
                roots[0].end,
                Some(ctl.records[request as usize - 1].answered_at),
                "closed at the (future) release instant"
            );
        }
        // Retry attempts and the give-up verdict reached the metrics. The
        // coalesced request inherits the cached failure's phase data, so it
        // reports the same retry spend.
        assert_eq!(ctl.telemetry.metrics.counter("requests_fallback_cloud"), 2);
        assert_eq!(
            ctl.telemetry.metrics.counter("deploy_retries_total"),
            2 * u64::from(ctl.config.retry.max_attempts - 1)
        );
        assert_eq!(ctl.telemetry.metrics.counter("deploys_gave_up"), 2);
    }

    /// Drives one request to completion and delivers its flows to the
    /// switch; returns the answer instant.
    fn serve_one(
        ctl: &mut Controller,
        sw: &mut Switch,
        at: SimTime,
        src_port: u16,
        rng: &mut SimRng,
    ) -> SimTime {
        let effects = sw.handle_frame(at, CLIENT_PORT, &client_syn(src_port).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(at, pkt_in, rng).unwrap();
        let answered = out[0].at;
        for m in &out {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        answered
    }

    /// The runtime-failure tentpole, end to end at the unit level: a Ready
    /// instance crashes while serving; the next health sweep forgets its
    /// memorized redirects, deletes its switch flows, feeds the breaker and
    /// the metrics; the client's next packet re-enters dispatch and
    /// redeploys.
    #[test]
    fn crashed_instance_is_detected_and_repaired() {
        let mut rng = SimRng::new(31);
        let (mut ctl, mut sw) = setup(&mut rng);
        ctl.telemetry = Telemetry::recording();
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        assert_eq!(ctl.memory().len(), 1);
        let flows_before = sw.table().entries().count();
        assert!(flows_before >= 2);

        // Crash while serving — silent until the next sweep.
        let svc_addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        let crash_at = answered + Duration::from_secs(1);
        assert!(ctl.inject_instance_crash(0, svc_addr, crash_at, &mut rng));
        assert_eq!(ctl.memory().len(), 1, "not yet detected");

        // Detection sweep: memory purged, exact deletes emitted.
        let detect_at = crash_at + ctl.health_config().detect_interval;
        let repairs = ctl.health_check(detect_at);
        assert!(ctl.memory().is_empty(), "no lookup returns the dead address");
        assert_eq!(repairs.len(), 2, "fwd + rev delete");
        for (ing, m) in &repairs {
            assert_eq!(*ing, IngressId::DEFAULT);
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        assert_eq!(sw.table().entries().count(), flows_before - 2);
        // A second sweep finds nothing left to repair.
        assert!(ctl.health_check(detect_at + ctl.health_config().detect_interval).is_empty());

        // One failure is below the breaker threshold: cluster still offered.
        assert_eq!(ctl.breaker_state(0), BreakerState::Closed);
        assert_eq!(ctl.telemetry.metrics.counter("instance_failures_total"), 1);
        assert_eq!(ctl.telemetry.metrics.counter("stale_redirects_repaired"), 1);
        let hist = ctl.telemetry.metrics.histogram("stale_redirect_repair_ns").unwrap();
        assert_eq!(hist.count(), 1, "crash→repair latency observed");

        // The client's next connection redeploys through the pipeline.
        let t1 = detect_at + Duration::from_secs(1);
        serve_one(&mut ctl, &mut sw, t1, 50001, &mut rng);
        let rec = ctl.records.last().unwrap();
        assert_eq!(rec.kind, RequestKind::Waited, "fresh deployment, not a stale hit");
        assert_eq!(rec.cluster, Some(0));
        // The recovery span closed cleanly.
        let log = ctl.telemetry.span_log().unwrap();
        assert!(log.check().ok());
        assert!(log.spans().any(|s| s.name == "recovery"));
    }

    /// Repeated crashes trip the cluster's breaker: the scheduler stops
    /// seeing the zone and requests go to the cloud until the cooldown
    /// half-opens it again.
    #[test]
    fn breaker_trips_after_repeated_crashes_and_probes_after_cooldown() {
        let mut rng = SimRng::new(32);
        let (mut ctl, mut sw) = setup(&mut rng);
        let svc_addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        let threshold = ctl.health_config().breaker_threshold;
        let mut t = SimTime::from_secs(1);
        // Alternating crash/redeploy cycles never trip the breaker: each
        // successful redeployment resets the failure streak.
        for i in 0..threshold {
            let answered = serve_one(&mut ctl, &mut sw, t, 50000 + i as u16, &mut rng);
            let crash_at = answered + Duration::from_secs(1);
            assert!(ctl.inject_instance_crash(0, svc_addr, crash_at, &mut rng));
            t = crash_at + ctl.health_config().detect_interval;
            for (_, m) in ctl.health_check(t) {
                sw.handle_controller(m.at, &m.data).unwrap();
            }
            t += Duration::from_secs(1);
        }
        assert_eq!(ctl.breaker_state(0), BreakerState::Closed);

        // K *consecutive* failures with no success in between do trip it
        // (the same record_failure path the health sweep and the
        // deployment give-up feed).
        for i in 0..threshold {
            ctl.dispatcher
                .health_mut()
                .record_failure(0, t + Duration::from_millis(u64::from(i)));
        }
        assert_eq!(ctl.breaker_state(0), BreakerState::Open);

        // Open breaker: the scheduler sees no clusters; requests go cloud.
        let t1 = t + Duration::from_secs(1);
        serve_one(&mut ctl, &mut sw, t1, 51000, &mut rng);
        assert_eq!(ctl.records.last().unwrap().kind, RequestKind::Cloud);

        // After the cooldown the half-open probe lets a deployment through,
        // and its success closes the breaker.
        let t2 = t + ctl.health_config().breaker_cooldown + Duration::from_secs(1);
        serve_one(&mut ctl, &mut sw, t2, 51001, &mut rng);
        assert_eq!(ctl.records.last().unwrap().kind, RequestKind::Waited);
        assert_eq!(ctl.breaker_state(0), BreakerState::Closed);
    }

    /// A declared zone outage tears everything down at once, blocks the zone
    /// for scheduling for the window, and the zone serves again afterwards.
    #[test]
    fn zone_outage_blocks_scheduling_until_it_ends() {
        let mut rng = SimRng::new(33);
        let (mut ctl, mut sw) = setup(&mut rng);
        ctl.telemetry = Telemetry::recording();
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        let flows_before = sw.table().entries().count();

        let dark_at = answered + Duration::from_secs(1);
        let until = dark_at + Duration::from_secs(30);
        let repairs = ctl.begin_zone_outage(0, dark_at, until, &mut rng);
        assert!(ctl.memory().is_empty());
        assert_eq!(repairs.len(), 2);
        for (_, m) in &repairs {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        assert_eq!(sw.table().entries().count(), flows_before - 2);
        assert_eq!(ctl.telemetry.metrics.counter("zone_outages_total"), 1);

        // During the window: the zone is not offered; requests go cloud.
        serve_one(&mut ctl, &mut sw, dark_at + Duration::from_secs(5), 50001, &mut rng);
        assert_eq!(ctl.records.last().unwrap().kind, RequestKind::Cloud);

        // After the window passes, the next request redeploys at the edge.
        serve_one(&mut ctl, &mut sw, until + Duration::from_secs(1), 50002, &mut rng);
        let rec = ctl.records.last().unwrap();
        assert_eq!(rec.kind, RequestKind::Waited);
        assert_eq!(rec.cluster, Some(0));

        // An explicit early end also restores the zone.
        let dark2 = until + Duration::from_secs(40);
        ctl.begin_zone_outage(0, dark2, dark2 + Duration::from_secs(60), &mut rng);
        ctl.end_zone_outage(0);
        serve_one(&mut ctl, &mut sw, dark2 + Duration::from_secs(1), 50003, &mut rng);
        assert_eq!(ctl.records.last().unwrap().kind, RequestKind::Waited);
    }

    /// Channel-reconnect reconciliation: flows the switch lost while the
    /// channel was down are re-installed verbatim; switch entries the
    /// controller does not claim are strict-deleted; a second pass is a
    /// no-op — the table and the bookkeeping agree exactly.
    #[test]
    fn reconcile_reinstalls_missing_and_deletes_orphans() {
        let mut rng = SimRng::new(34);
        let (mut ctl, mut sw) = setup(&mut rng);
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        let flows_before: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        assert!(flows_before.len() >= 2);

        // The switch flows idle out *with the channel down*: the
        // FLOW_REMOVED effects are never delivered, so the controller's
        // bookkeeping still claims the pair.
        let lost_at = answered + ctl.config.switch_flow_idle + Duration::from_secs(1);
        let _undelivered = sw.expire_flows(lost_at);
        assert_eq!(sw.table().entries().count(), 0, "switch lost everything");

        // An orphan the controller never installed (its teardown was lost).
        let orphan = Message::FlowMod {
            cookie: 7,
            table_id: 0,
            command: openflow::messages::FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 42,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: Match::connection([1, 2, 3, 4], 9, [5, 6, 7, 8], 10),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(CLOUD_PORT)])],
        };
        sw.handle_controller(lost_at, &orphan.encode(1234)).unwrap();

        // Reconnect: diff the switch table against the bookkeeping.
        let reconnect_at = lost_at + Duration::from_secs(1);
        let table: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        let fixes = ctl.reconcile(IngressId::DEFAULT, &table, reconnect_at);
        assert_eq!(fixes.len(), 3, "2 re-adds + 1 orphan delete");
        for m in &fixes {
            sw.handle_controller(m.at, &m.data).unwrap();
        }

        // The repaired table matches what was installed originally, modulo
        // bookkeeping fields the switch resets (timestamps, counters).
        let repaired: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        assert_eq!(repaired.len(), flows_before.len());
        for b in &flows_before {
            assert!(
                repaired.iter().any(|a| a.match_ == b.match_
                    && a.priority == b.priority
                    && a.instructions == b.instructions
                    && a.flags == b.flags),
                "original flow missing after repair: {:?}",
                b.match_
            );
        }
        // Traffic flows again without a packet-in.
        let misses_before = sw.table_misses;
        let mut ack = client_syn(50000);
        ack.flags = TcpFlags::ACK;
        let fx = sw.handle_frame(reconnect_at + Duration::from_millis(1), CLIENT_PORT, &ack.encode());
        assert!(matches!(fx[0], Effect::Forward { port: EDGE_PORT, .. }));
        assert_eq!(sw.table_misses, misses_before);

        // Convergence: a second pass finds nothing to fix.
        let table: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        assert!(ctl.reconcile(IngressId::DEFAULT, &table, reconnect_at + Duration::from_secs(1)).is_empty());
    }

    /// A delivered FLOW_REMOVED tombstones its pair: reconciliation does not
    /// resurrect flows the switch legitimately expired.
    #[test]
    fn flow_removed_tombstones_so_reconcile_does_not_resurrect() {
        let mut rng = SimRng::new(35);
        let (mut ctl, mut sw) = setup(&mut rng);
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);

        // The flows idle out and the notification *is* delivered.
        let expire_at = answered + ctl.config.switch_flow_idle + Duration::from_secs(1);
        for fx in sw.expire_flows(expire_at) {
            if let Effect::ToController(bytes) = fx {
                ctl.handle_switch_message(expire_at, &bytes, &mut rng).unwrap();
            }
        }
        assert!(ctl.flows_removed > 0);
        assert_eq!(sw.table().entries().count(), 0);

        // Reconciliation agrees with the switch: nothing to re-install.
        let table: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        let fixes = ctl.reconcile(IngressId::DEFAULT, &table, expire_at + Duration::from_secs(1));
        assert!(fixes.is_empty(), "expired pairs are tombstoned, not resurrected: {}", fixes.len());
    }

    /// Reconciliation tombstones pairs whose instance died while the channel
    /// was down: their surviving switch flows become orphans and are
    /// deleted, not re-installed.
    #[test]
    fn reconcile_drops_pairs_of_dead_instances() {
        let mut rng = SimRng::new(36);
        let (mut ctl, mut sw) = setup(&mut rng);
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        let svc_addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);

        // The instance dies while the channel is down — no repair Deletes
        // could be delivered, so the switch still redirects at the corpse.
        let crash_at = answered + Duration::from_secs(1);
        assert!(ctl.inject_instance_crash(0, svc_addr, crash_at, &mut rng));
        assert!(sw.table().entries().count() >= 2, "stale flows survive on the switch");

        // On reconnect, reconciliation deletes them instead of re-adding.
        let table: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        let fixes = ctl.reconcile(IngressId::DEFAULT, &table, crash_at + Duration::from_secs(2));
        assert!(!fixes.is_empty());
        for m in &fixes {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        assert_eq!(sw.table().entries().count(), 0, "stale redirects purged");
        let table: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        assert!(ctl.reconcile(IngressId::DEFAULT, &table, crash_at + Duration::from_secs(3)).is_empty());
    }

    /// A SYN from an arbitrary client toward the registered service.
    fn syn_from(client_id: u32, src_port: u16) -> TcpFrame {
        TcpFrame::syn(
            MacAddr::from_id(client_id),
            MacAddr::from_id(99),
            Ipv4Addr::new(192, 168, 1, client_id as u8),
            src_port,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        )
    }

    fn aggregate_config() -> ControllerConfig {
        ControllerConfig {
            aggregate_rules: true,
            ..ControllerConfig::default()
        }
    }

    /// Rule aggregation end to end: the first shared-decision client puts
    /// one wildcard pair on the switch; every later client rides it with no
    /// table growth — their packets do not even miss — and replies are still
    /// rewritten transparently per client.
    #[test]
    fn aggregated_rules_collapse_per_client_pairs() {
        let mut rng = SimRng::new(41);
        let (mut ctl, mut sw) = setup_with(&mut rng, aggregate_config());
        let t0 = SimTime::from_secs(1);
        // Client 20 deploys the service (Waited keeps exact pairs: the
        // deferred release predates any aggregate decision).
        let answered = serve_one(&mut ctl, &mut sw, t0, 50000, &mut rng);
        let after_first = sw.table().entries().count();
        assert_eq!(after_first, 2, "exact pair for the deploying client");

        // Client 21 is a fresh Redirect: the aggregate pair goes in.
        let t1 = answered + Duration::from_secs(1);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &syn_from(21, 51000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap();
        let mut released = Vec::new();
        for m in &out {
            released.extend(sw.handle_controller(m.at, &m.data).unwrap());
        }
        assert_eq!(sw.table().entries().count(), after_first + 2, "one aggregate pair");
        let fwd = released
            .iter()
            .find_map(|e| match e {
                Effect::Forward { port, data } => Some((*port, data.clone())),
                _ => None,
            })
            .expect("buffered packet released through the aggregate");
        assert_eq!(fwd.0, EDGE_PORT);
        let f = TcpFrame::decode(&fwd.1).unwrap();
        assert_eq!(f.dst_ip, Ipv4Addr::new(10, 0, 0, 10), "rewritten toward the instance");
        assert_eq!(f.src_mac, MacAddr::from_id(21), "client source kept");

        // Client 22 never even misses: the wildcard already covers it.
        let misses_before = sw.table_misses;
        let t2 = t1 + Duration::from_secs(1);
        let effects = sw.handle_frame(t2, CLIENT_PORT, &syn_from(22, 52000).encode());
        assert!(
            matches!(effects[0], Effect::Forward { port: EDGE_PORT, .. }),
            "no packet-in for covered clients: {effects:?}"
        );
        assert_eq!(sw.table_misses, misses_before);
        assert_eq!(sw.table().entries().count(), after_first + 2, "table did not grow");

        // Transparency per client: the instance's reply to client 22 leaves
        // re-sourced from the cloud address, addressed to 22's own MAC.
        let reply = TcpFrame::decode(&match &effects[0] {
            Effect::Forward { data, .. } => data.clone(),
            _ => unreachable!(),
        })
        .unwrap()
        .reply(TcpFlags::SYN_ACK, Vec::new());
        let effects = sw.handle_frame(t2, EDGE_PORT, &reply.encode());
        let Effect::Forward { port, data } = &effects[0] else {
            panic!("reply must flow back: {effects:?}");
        };
        assert_eq!(*port, CLIENT_PORT);
        let r = TcpFrame::decode(data).unwrap();
        assert_eq!(r.src_ip, Ipv4Addr::new(203, 0, 113, 10), "masqueraded");
        assert_eq!(r.src_port, 80);
        assert_eq!(r.dst_mac, MacAddr::from_id(22), "per-client reply without a per-client rule");
    }

    /// A covered packet-in (the race where a packet missed before the
    /// aggregate landed) is answered with a bare `PACKET_OUT` — nothing is
    /// added to the table.
    #[test]
    fn covered_packet_in_installs_nothing() {
        let mut rng = SimRng::new(42);
        let (mut ctl, mut sw) = setup_with(&mut rng, aggregate_config());
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        // Install the aggregate via client 21.
        let t1 = answered + Duration::from_secs(1);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &syn_from(21, 51000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        for m in ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap() {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        let table_before = sw.table().entries().count();
        let adds_before = ctl.flow_adds;

        // Hand-built packet-in for client 23 — as if its SYN raced the
        // aggregate install.
        let frame = syn_from(23, 53000);
        let pkt_in = Message::PacketIn {
            buffer_id: OFP_NO_BUFFER,
            total_len: frame.encode().len() as u16,
            reason: openflow::PacketInReason::NoMatch,
            table_id: 0,
            cookie: 0,
            match_: Match::any().with(OxmField::InPort(CLIENT_PORT)),
            data: frame.encode(),
        }
        .encode(777);
        let t2 = t1 + Duration::from_secs(1);
        let out = ctl.handle_switch_message(t2, &pkt_in, &mut rng).unwrap();
        assert_eq!(out.len(), 1, "one PACKET_OUT, no FlowMods: {out:?}");
        let (_, decoded, _) = Message::decode(&out[0].data).unwrap();
        assert!(matches!(decoded, Message::PacketOut { .. }));
        assert_eq!(ctl.flow_adds, adds_before, "no table space claimed");

        // The released packet still reaches the edge, rewritten.
        let released = sw.handle_controller(out[0].at, &out[0].data).unwrap();
        let Effect::Forward { port, data } = &released[0] else {
            panic!("released: {released:?}");
        };
        assert_eq!(*port, EDGE_PORT);
        assert_eq!(TcpFrame::decode(data).unwrap().dst_port, 31000);
        assert_eq!(sw.table().entries().count(), table_before);
    }

    /// A client whose decision differs from the aggregate's anchor (here: a
    /// different perceived gateway) falls back to exact pairs at base
    /// priority, which shadow the aggregate for exactly that connection.
    #[test]
    fn divergent_client_falls_back_to_exact_pairs() {
        let mut rng = SimRng::new(43);
        let (mut ctl, mut sw) = setup_with(&mut rng, aggregate_config());
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        let t1 = answered + Duration::from_secs(1);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &syn_from(21, 51000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        for m in ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap() {
            sw.handle_controller(m.at, &m.data).unwrap();
        }

        // Client 24 sits behind a different gateway: the aggregate's reverse
        // rewrite would mis-source its replies, so it must not be covered.
        let mut frame = syn_from(24, 54000);
        frame.dst_mac = MacAddr::from_id(98);
        let pkt_in = Message::PacketIn {
            buffer_id: OFP_NO_BUFFER,
            total_len: frame.encode().len() as u16,
            reason: openflow::PacketInReason::NoMatch,
            table_id: 0,
            cookie: 0,
            match_: Match::any().with(OxmField::InPort(CLIENT_PORT)),
            data: frame.encode(),
        }
        .encode(778);
        let t2 = t1 + Duration::from_secs(1);
        let out = ctl.handle_switch_message(t2, &pkt_in, &mut rng).unwrap();
        let kinds: Vec<&'static str> = out
            .iter()
            .map(|m| match Message::decode(&m.data).unwrap().1 {
                Message::FlowMod { priority, .. } => {
                    assert_eq!(priority, ctl.config.flow_priority, "exact pairs at base priority");
                    "flowmod"
                }
                Message::PacketOut { .. } => "packetout",
                other => panic!("unexpected: {other:?}"),
            })
            .collect();
        assert_eq!(kinds, ["flowmod", "flowmod", "packetout"]);
    }

    /// Repairing a dead instance retires its aggregate like any other pair:
    /// the switch-side wildcards are deleted and the next shared decision
    /// re-installs a fresh aggregate toward the replacement.
    #[test]
    fn aggregates_are_retired_with_their_instance() {
        let mut rng = SimRng::new(44);
        let (mut ctl, mut sw) = setup_with(&mut rng, aggregate_config());
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        let t1 = answered + Duration::from_secs(1);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &syn_from(21, 51000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        for m in ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap() {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        assert_eq!(sw.table().entries().count(), 4, "exact pair + aggregate pair");

        let svc_addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        let crash_at = t1 + Duration::from_secs(1);
        assert!(ctl.inject_instance_crash(0, svc_addr, crash_at, &mut rng));
        let detect_at = crash_at + ctl.health_config().detect_interval;
        let repairs = ctl.health_check(detect_at);
        assert_eq!(repairs.len(), 4, "deletes for the exact AND the aggregate pair");
        for (_, m) in &repairs {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        assert_eq!(sw.table().entries().count(), 0, "no stale wildcard survives");
        assert!(ctl.aggregates.is_empty(), "anchor dropped with the instance");
    }

    /// Reconciliation treats aggregate pairs like any bookkept pair: lost
    /// installs are re-added verbatim and a second pass is empty.
    #[test]
    fn reconcile_reinstalls_lost_aggregate_pairs() {
        let mut rng = SimRng::new(45);
        let (mut ctl, mut sw) = setup_with(&mut rng, aggregate_config());
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        let t1 = answered + Duration::from_secs(1);
        let effects = sw.handle_frame(t1, CLIENT_PORT, &syn_from(21, 51000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        for m in ctl.handle_switch_message(t1, pkt_in, &mut rng).unwrap() {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        let flows_before: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        assert_eq!(flows_before.len(), 4);

        // The whole table idles out with the channel down.
        let lost_at = t1 + ctl.config.switch_flow_idle + Duration::from_secs(1);
        let _undelivered = sw.expire_flows(lost_at);
        assert_eq!(sw.table().entries().count(), 0);

        let table: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        let fixes = ctl.reconcile(IngressId::DEFAULT, &table, lost_at + Duration::from_secs(1));
        assert_eq!(fixes.len(), 4, "both pairs re-added");
        for m in &fixes {
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        let repaired: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        assert_eq!(repaired.len(), flows_before.len());
        for b in &flows_before {
            assert!(repaired
                .iter()
                .any(|a| a.match_ == b.match_ && a.priority == b.priority));
        }
        let table: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        assert!(ctl
            .reconcile(IngressId::DEFAULT, &table, lost_at + Duration::from_secs(2))
            .is_empty());
    }

    /// Regression for the idle-timeout truncation bug: a sub-second
    /// `switch_flow_idle` used to floor to 0 seconds on the wire — OpenFlow's
    /// "never expire" — so switch flows leaked forever. It must clamp up to
    /// 1 s and provably expire at the switch.
    #[test]
    fn sub_second_idle_config_provably_expires_switch_flows() {
        let mut rng = SimRng::new(46);
        let cfg = ControllerConfig {
            switch_flow_idle: Duration::from_millis(500),
            ..ControllerConfig::default()
        };
        let (mut ctl, mut sw) = setup_with(&mut rng, cfg);
        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        let answered = out[0].at;
        for m in &out {
            let (_, decoded, _) = Message::decode(&m.data).unwrap();
            if let Message::FlowMod { idle_timeout, .. } = decoded {
                assert_eq!(idle_timeout, 1, "500 ms clamps up to 1 s, never 0");
            }
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        assert_eq!(sw.table().entries().count(), 2);

        // Idle past the clamped timeout: the flows actually expire.
        let effects = sw.expire_flows(answered + Duration::from_millis(1600));
        assert!(
            effects.iter().any(|e| matches!(e, Effect::ToController(_))),
            "FLOW_REMOVED reported: {effects:?}"
        );
        assert_eq!(sw.table().entries().count(), 0, "sub-second config expires flows");
    }

    /// The other end of the truncation bug: a 20-hour idle config used to
    /// wrap modulo 65536 to ~6464 s. It must saturate at `u16::MAX` seconds.
    #[test]
    fn multi_hour_idle_config_saturates_at_u16_max() {
        let mut rng = SimRng::new(47);
        let cfg = ControllerConfig {
            switch_flow_idle: Duration::from_secs(20 * 3600),
            ..ControllerConfig::default()
        };
        let (mut ctl, mut sw) = setup_with(&mut rng, cfg);
        let t0 = SimTime::from_secs(1);
        let effects = sw.handle_frame(t0, CLIENT_PORT, &client_syn(50000).encode());
        let Effect::ToController(pkt_in) = &effects[0] else { panic!() };
        let out = ctl.handle_switch_message(t0, pkt_in, &mut rng).unwrap();
        let answered = out[0].at;
        for m in &out {
            let (_, decoded, _) = Message::decode(&m.data).unwrap();
            if let Message::FlowMod { idle_timeout, .. } = decoded {
                assert_eq!(idle_timeout, u16::MAX, "20 h saturates, never wraps");
            }
            sw.handle_controller(m.at, &m.data).unwrap();
        }
        // Still alive where the wrapped value (~6464 s) would have expired.
        sw.expire_flows(answered + Duration::from_secs(60_000));
        assert_eq!(sw.table().entries().count(), 2, "no premature expiry from wraparound");
        // And genuinely idle-expires once 65535 s pass.
        sw.expire_flows(answered + Duration::from_secs(70_000));
        assert_eq!(sw.table().entries().count(), 0);
    }

    /// `record_requests: false` keeps the metrics but drops the unbounded
    /// per-request retention — the fleet-scale memory gate.
    #[test]
    fn record_requests_off_keeps_metrics_only() {
        let mut rng = SimRng::new(48);
        let cfg = ControllerConfig {
            record_requests: false,
            ..ControllerConfig::default()
        };
        let (mut ctl, mut sw) = setup_with(&mut rng, cfg);
        let answered = serve_one(&mut ctl, &mut sw, SimTime::from_secs(1), 50000, &mut rng);
        serve_one(&mut ctl, &mut sw, answered + Duration::from_secs(1), 50001, &mut rng);
        assert!(ctl.records.is_empty(), "no per-request retention");
        assert_eq!(ctl.telemetry.metrics.counter("requests_total"), 2);
        assert_eq!(ctl.telemetry.metrics.counter("requests_memory_hit"), 1);
    }
}
