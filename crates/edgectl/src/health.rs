//! Runtime health: per-cluster circuit breakers and zone-outage tracking.
//!
//! PR 2 made the *deployment* pipeline fault-tolerant; this module covers
//! the runtime side. Once instances are `Ready` they can still die — a
//! crashed container, a node loss, a whole zone going dark — and the
//! control plane must (a) stop redirecting clients at the corpse and
//! (b) stop *scheduling* onto a zone that keeps failing. The first job is
//! the controller's repair loop (see `controller::health_check`); the
//! second is the [`HealthMonitor`] here: one circuit breaker per cluster,
//! consulted by the Dispatcher before any cluster is offered to the Global
//! Scheduler.
//!
//! The breaker is the classic three-state machine:
//!
//! ```text
//!            K consecutive failures
//!   Closed ──────────────────────────▶ Open
//!      ▲                                │ cooldown elapses
//!      │ success                        ▼
//!      └───────────────────────────  HalfOpen
//!                 failure: back to Open (fresh cooldown)
//! ```
//!
//! A zone outage is tracked separately from the breaker: an outaged
//! cluster is unavailable *by declaration* (the harness knows the zone is
//! dark) rather than by inference, and becomes schedulable again the
//! instant the outage window ends.

use desim::{Duration, SimTime};

/// Tunables for the health monitor — the `health:` YAML block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthConfig {
    /// How often the controller sweeps instance liveness (the failure
    /// *detection* interval: a crash surfaces at the next sweep tick).
    pub detect_interval: Duration,
    /// Consecutive failures that trip a cluster's breaker Open.
    pub breaker_threshold: u32,
    /// How long an Open breaker blocks its cluster before allowing a
    /// half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            detect_interval: Duration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(10),
        }
    }
}

/// Circuit-breaker state for one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Tripped: the cluster is not offered to the scheduler until the
    /// cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe deployment is allowed through; its
    /// outcome decides between Closed and Open.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding for telemetry: Closed = 0, HalfOpen = 1, Open = 2.
    pub fn gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }

    /// Short lowercase label for trace events.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half-open",
            BreakerState::Open => "open",
        }
    }
}

/// One health-state mutation, as appended to the controller's write-ahead
/// journal (see [`crate::journal`]). Replaying the stream on a fresh
/// monitor reproduces every breaker and outage window exactly.
#[derive(Clone, Copy, Debug)]
pub enum HealthOp {
    /// A failure was recorded against `cluster` at `at`.
    Failure {
        /// The failing cluster.
        cluster: usize,
        /// When (fixes the Open cooldown deadline on replay).
        at: SimTime,
    },
    /// A success was recorded (breaker closed, streak reset).
    Success {
        /// The recovering cluster.
        cluster: usize,
    },
    /// An Open breaker's cooldown elapsed inside
    /// [`HealthMonitor::available`] and it moved to HalfOpen.
    HalfOpen {
        /// The probing cluster.
        cluster: usize,
    },
    /// A zone outage was declared until `until`.
    OutageBegin {
        /// The dark cluster.
        cluster: usize,
        /// Declared end of the window.
        until: SimTime,
    },
    /// A declared outage was cleared early.
    OutageEnd {
        /// The recovered cluster.
        cluster: usize,
    },
}

/// Plain-data snapshot of one breaker — the journal's snapshot encoding of
/// [`HealthMonitor`] state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive-failure streak.
    pub consecutive_failures: u32,
    /// Cooldown deadline (meaningful while Open).
    pub open_until: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    open_until: SimTime,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: SimTime::ZERO,
        }
    }
}

/// Per-cluster circuit breakers plus declared zone-outage windows. Owned by
/// the Dispatcher (it gates scheduling); the controller reaches it through
/// [`crate::Dispatcher::health_mut`] to declare outages and report runtime
/// crashes.
pub struct HealthMonitor {
    config: HealthConfig,
    breakers: Vec<Breaker>,
    /// Declared outage end per cluster (`None` = zone up).
    outages: Vec<Option<SimTime>>,
    /// Mutation log drained by the controller's journal; `None` (the
    /// default) keeps the breaker hot path free of logging work.
    log: Option<Vec<HealthOp>>,
}

impl HealthMonitor {
    /// Creates a monitor; breaker slots grow on demand as cluster indices
    /// are first seen.
    pub fn new(config: HealthConfig) -> HealthMonitor {
        HealthMonitor {
            config,
            breakers: Vec::new(),
            outages: Vec::new(),
            log: None,
        }
    }

    /// Turns mutation logging on or off (off discards undrained ops).
    pub fn set_logging(&mut self, on: bool) {
        self.log = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the ops accumulated since the last drain. Empty when logging
    /// is off.
    pub fn take_ops(&mut self) -> Vec<HealthOp> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Breakers and outage windows as plain data — the snapshot export.
    pub fn export_state(&self) -> (Vec<BreakerSnapshot>, Vec<Option<SimTime>>) {
        let breakers = self
            .breakers
            .iter()
            .map(|b| BreakerSnapshot {
                state: b.state,
                consecutive_failures: b.consecutive_failures,
                open_until: b.open_until,
            })
            .collect();
        (breakers, self.outages.clone())
    }

    /// Restores a snapshot taken by [`export_state`](Self::export_state).
    pub fn restore_state(&mut self, breakers: &[BreakerSnapshot], outages: &[Option<SimTime>]) {
        self.breakers = breakers
            .iter()
            .map(|s| Breaker {
                state: s.state,
                consecutive_failures: s.consecutive_failures,
                open_until: s.open_until,
            })
            .collect();
        self.outages = outages.to_vec();
    }

    /// Applies one logged mutation — the journal replay primitive. Call on
    /// a non-logging instance, or the replayed ops are re-logged.
    pub fn apply(&mut self, op: &HealthOp) {
        match *op {
            HealthOp::Failure { cluster, at } => self.record_failure(cluster, at),
            HealthOp::Success { cluster } => self.record_success(cluster),
            HealthOp::HalfOpen { cluster } => {
                self.grow(cluster);
                self.breakers[cluster].state = BreakerState::HalfOpen;
            }
            HealthOp::OutageBegin { cluster, until } => self.begin_outage(cluster, until),
            HealthOp::OutageEnd { cluster } => self.end_outage(cluster),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Replaces the configuration (applied to future decisions; existing
    /// breaker state is kept).
    pub fn set_config(&mut self, config: HealthConfig) {
        self.config = config;
    }

    fn grow(&mut self, cluster: usize) {
        if self.breakers.len() <= cluster {
            self.breakers.resize_with(cluster + 1, Breaker::new);
            self.outages.resize(cluster + 1, None);
        }
    }

    /// Records a failure against `cluster` (an exhausted deployment or a
    /// detected runtime crash). The K-th consecutive failure — or any
    /// failure during a half-open probe — trips the breaker Open.
    pub fn record_failure(&mut self, cluster: usize, now: SimTime) {
        self.grow(cluster);
        let threshold = self.config.breaker_threshold;
        let cooldown = self.config.breaker_cooldown;
        let b = &mut self.breakers[cluster];
        b.consecutive_failures += 1;
        if b.state == BreakerState::HalfOpen || b.consecutive_failures >= threshold {
            b.state = BreakerState::Open;
            b.open_until = now + cooldown;
        }
        if let Some(log) = &mut self.log {
            log.push(HealthOp::Failure { cluster, at: now });
        }
    }

    /// Records a success (a deployment reached Ready): closes the breaker
    /// and resets the failure streak.
    pub fn record_success(&mut self, cluster: usize) {
        self.grow(cluster);
        let b = &mut self.breakers[cluster];
        b.state = BreakerState::Closed;
        b.consecutive_failures = 0;
        if let Some(log) = &mut self.log {
            log.push(HealthOp::Success { cluster });
        }
    }

    /// Whether `cluster` may be offered to the scheduler at `now`. An Open
    /// breaker whose cooldown has elapsed transitions to HalfOpen here (the
    /// caller's next deployment is the probe). Outaged zones are never
    /// available.
    pub fn available(&mut self, cluster: usize, now: SimTime) -> bool {
        self.grow(cluster);
        if self.in_outage(cluster, now) {
            return false;
        }
        let b = &mut self.breakers[cluster];
        match b.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= b.open_until {
                    b.state = BreakerState::HalfOpen;
                    if let Some(log) = &mut self.log {
                        log.push(HealthOp::HalfOpen { cluster });
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The breaker state of `cluster`, without side effects.
    pub fn breaker_state(&self, cluster: usize) -> BreakerState {
        self.breakers
            .get(cluster)
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// Declares `cluster` dark until `until` (a zone outage).
    pub fn begin_outage(&mut self, cluster: usize, until: SimTime) {
        self.grow(cluster);
        self.outages[cluster] = Some(until);
        if let Some(log) = &mut self.log {
            log.push(HealthOp::OutageBegin { cluster, until });
        }
    }

    /// Clears a declared outage (the zone returned).
    pub fn end_outage(&mut self, cluster: usize) {
        self.grow(cluster);
        self.outages[cluster] = None;
        if let Some(log) = &mut self.log {
            log.push(HealthOp::OutageEnd { cluster });
        }
    }

    /// `true` while a declared outage window covers `now`.
    pub fn in_outage(&self, cluster: usize, now: SimTime) -> bool {
        self.outages
            .get(cluster)
            .copied()
            .flatten()
            .is_some_and(|until| now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthConfig::default())
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut h = monitor();
        let t = SimTime::from_secs(1);
        assert!(h.available(0, t));
        h.record_failure(0, t);
        h.record_failure(0, t);
        assert!(h.available(0, t), "below threshold: still closed");
        assert_eq!(h.breaker_state(0), BreakerState::Closed);
        h.record_failure(0, t);
        assert_eq!(h.breaker_state(0), BreakerState::Open);
        assert!(!h.available(0, t), "tripped: blocked");
        // The neighbouring cluster is unaffected.
        assert!(h.available(1, t));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut h = monitor();
        let t = SimTime::from_secs(1);
        h.record_failure(0, t);
        h.record_failure(0, t);
        h.record_success(0);
        h.record_failure(0, t);
        h.record_failure(0, t);
        assert_eq!(h.breaker_state(0), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn half_open_probe_after_cooldown_then_close_or_reopen() {
        let mut h = monitor();
        let t = SimTime::from_secs(1);
        for _ in 0..3 {
            h.record_failure(0, t);
        }
        assert!(!h.available(0, t + Duration::from_secs(9)));
        // Cooldown elapsed: one probe allowed, state HalfOpen.
        let probe_at = t + Duration::from_secs(10);
        assert!(h.available(0, probe_at));
        assert_eq!(h.breaker_state(0), BreakerState::HalfOpen);
        // A failing probe re-opens with a fresh cooldown.
        h.record_failure(0, probe_at);
        assert_eq!(h.breaker_state(0), BreakerState::Open);
        assert!(!h.available(0, probe_at + Duration::from_secs(9)));
        // The next probe succeeds: closed again.
        let again = probe_at + Duration::from_secs(10);
        assert!(h.available(0, again));
        h.record_success(0);
        assert_eq!(h.breaker_state(0), BreakerState::Closed);
        assert!(h.available(0, again));
    }

    #[test]
    fn outage_blocks_regardless_of_breaker_and_clears() {
        let mut h = monitor();
        let t = SimTime::from_secs(5);
        h.begin_outage(2, t + Duration::from_secs(30));
        assert!(h.in_outage(2, t));
        assert!(!h.available(2, t));
        assert_eq!(h.breaker_state(2), BreakerState::Closed, "outage is not a breaker trip");
        // The window passing (or an explicit end) restores availability.
        assert!(!h.in_outage(2, t + Duration::from_secs(30)));
        assert!(h.available(2, t + Duration::from_secs(30)));
        h.begin_outage(2, t + Duration::from_secs(60));
        h.end_outage(2);
        assert!(h.available(2, t + Duration::from_secs(1)));
    }

    #[test]
    fn gauge_and_label_encodings() {
        assert_eq!(BreakerState::Closed.gauge(), 0.0);
        assert_eq!(BreakerState::HalfOpen.gauge(), 1.0);
        assert_eq!(BreakerState::Open.gauge(), 2.0);
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::HalfOpen.label(), "half-open");
        assert_eq!(BreakerState::Open.label(), "open");
    }
}
