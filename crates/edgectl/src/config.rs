//! Controller configuration files.
//!
//! The reference controller reads its configuration — which Global Scheduler
//! to load dynamically, the per-cluster Local Scheduler, the timeouts — from
//! a file. [`EdgeConfig`] is that file, in the same YAML dialect as the
//! service definitions:
//!
//! ```yaml
//! scheduler: proximity
//! predictor: none
//! flowIdleTimeout: 10        # seconds, installed into switch flows
//! memoryIdleTimeout: 60      # seconds, FlowMemory / scale-down trigger
//! removeAfter: 600           # seconds from scale-down to full removal
//! pollIntervalMs: 25         # readiness port-probe interval
//! scaleDownIdle: true
//! aggregateRules: false      # fleet-scale wildcard rule aggregation
//! recordRequests: true       # per-request records for the harness
//! retry:                     # deployment retry/backoff policy
//!   maxAttempts: 3           # total attempts per phase
//!   baseMs: 250
//!   multiplier: 2.0
//!   capMs: 5000
//!   jitter: 0.25
//!   phaseDeadline: 30        # seconds
//! faults:                    # chaos testing (all rates default to 0)
//!   seed: 7
//!   pullFailure: 0.1
//!   createFailure: 0.1
//!   startFailure: 0.1
//!   crashAfterStart: 0.05
//!   scaleUpRejection: 0.1
//!   probeFlap: 0.1
//!   crashWhileServing: 0.05  # runtime faults: post-Ready instance crash,
//!   zoneOutage: 0.02         # whole-zone outage window,
//!   channelLoss: 0.02        # control-channel drop + reconnect
//!   zoneOutageWindowMs: 30000
//!   channelReconnectDelayMs: 5000
//! health:                    # runtime failure detection / circuit breaker
//!   detectIntervalMs: 500
//!   breakerThreshold: 3
//!   breakerCooldownMs: 10000
//! autoscale:                 # horizontal autoscaling (off by default)
//!   enabled: true
//!   minReplicas: 1
//!   maxReplicas: 4
//!   scaleUpUtilization: 0.8  # mean pool utilization that triggers +1
//!   scaleDownUtilization: 0.2
//!   scaleUpBacklog: 4        # queued requests that trigger +1 regardless
//!   cooldownMs: 5000         # minimum gap between scalings of one pool
//!   sweepIntervalMs: 1000
//!   serviceTimeMs: 20        # deterministic per-request service time
//!   concurrency: 4           # in-flight slots per replica
//!   backlog: 8               # queue depth beyond which requests reject
//! migration:                 # live zone-to-zone migration (off by default)
//!   policy: live             # anchored | redispatch | live
//!   stateBytesPerRequest: 4096
//!   transferPropagationMs: 2 # metro-link one-way propagation
//!   transferBandwidthMbps: 10000
//!   maxConcurrent: 2         # simultaneous in-flight migrations
//!   mobilityHops: 1          # clusters-closer threshold for the trigger
//! journal:                   # crash-recovery write-ahead journal (off by default)
//!   enabled: true
//!   snapshotEvery: 256       # tail events between compacted snapshots
//! clusters:
//!   - name: egs-docker
//!     kind: docker
//!   - name: egs-k8s
//!     kind: k8s
//!     localScheduler: edge-pack-scheduler
//! ```

use crate::controller::ControllerConfig;
use crate::migrate::MigrationPolicy;
use desim::{Duration, FaultPlan};
use yamlite::Value;

/// A cluster declaration in the configuration file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterDecl {
    /// Cluster name.
    pub name: String,
    /// `"docker"` or `"k8s"`.
    pub kind: String,
    /// Optional Local Scheduler (Kubernetes `schedulerName`).
    pub local_scheduler: Option<String>,
}

/// Parsed controller configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeConfig {
    /// Global Scheduler name (see [`crate::scheduler_by_name`]).
    pub scheduler: String,
    /// Predictor name (see [`crate::predictor_by_name`]).
    pub predictor: String,
    /// Controller timing/behaviour knobs.
    pub controller: ControllerConfig,
    /// Fault-injection plan for chaos testing (all rates 0 = disabled).
    pub faults: FaultPlan,
    /// Declared clusters.
    pub clusters: Vec<ClusterDecl>,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            scheduler: "proximity".to_owned(),
            predictor: "none".to_owned(),
            controller: ControllerConfig::default(),
            faults: FaultPlan::default(),
            clusters: Vec::new(),
        }
    }
}

/// Errors from loading a configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// YAML syntax error.
    Yaml(yamlite::ParseError),
    /// A field had the wrong type or an invalid value.
    Invalid(String),
    /// The named scheduler/predictor is not known.
    Unknown(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Yaml(e) => write!(f, "{e}"),
            ConfigError::Invalid(m) => write!(f, "invalid config: {m}"),
            ConfigError::Unknown(m) => write!(f, "unknown component: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<yamlite::ParseError> for ConfigError {
    fn from(e: yamlite::ParseError) -> Self {
        ConfigError::Yaml(e)
    }
}

impl EdgeConfig {
    /// Parses a configuration file. Missing keys fall back to the defaults;
    /// unknown scheduler/predictor names are rejected eagerly (the reference
    /// controller fails at dynamic-load time — we fail at parse time).
    pub fn from_yaml(text: &str) -> Result<EdgeConfig, ConfigError> {
        let doc = yamlite::parse_str(text)?;
        let mut cfg = EdgeConfig::default();
        if doc.is_null() {
            return Ok(cfg);
        }
        if doc.as_map().is_none() {
            return Err(ConfigError::Invalid("config must be a mapping".into()));
        }

        if let Some(s) = doc["scheduler"].as_str() {
            // The typed error carries the known-name list; surface it whole.
            if let Err(e) = crate::scheduler_by_name(s) {
                return Err(ConfigError::Unknown(e.to_string()));
            }
            cfg.scheduler = s.to_owned();
        }
        if let Some(p) = doc["predictor"].as_str() {
            if let Err(e) = crate::predictor_by_name(p) {
                return Err(ConfigError::Unknown(e.to_string()));
            }
            cfg.predictor = p.to_owned();
        }

        let secs = |v: &Value, key: &str| -> Result<Option<Duration>, ConfigError> {
            match &v[key] {
                Value::Null => Ok(None),
                Value::Int(s) if *s >= 0 => Ok(Some(Duration::from_secs(*s as u64))),
                Value::Float(s) if *s >= 0.0 => Ok(Some(Duration::from_secs_f64(*s))),
                other => Err(ConfigError::Invalid(format!(
                    "{key}: expected a non-negative number, got {other:?}"
                ))),
            }
        };
        if let Some(d) = secs(&doc, "flowIdleTimeout")? {
            cfg.controller.switch_flow_idle = d;
        }
        if let Some(d) = secs(&doc, "memoryIdleTimeout")? {
            cfg.controller.memory_idle = d;
        }
        if let Some(d) = secs(&doc, "removeAfter")? {
            cfg.controller.remove_after = Some(d);
        }
        match &doc["pollIntervalMs"] {
            Value::Null => {}
            Value::Int(ms) if *ms > 0 => {
                cfg.controller.poll_interval = Duration::from_millis(*ms as u64);
            }
            other => {
                return Err(ConfigError::Invalid(format!(
                    "pollIntervalMs: expected a positive integer, got {other:?}"
                )))
            }
        }
        if let Some(b) = doc["scaleDownIdle"].as_bool() {
            cfg.controller.scale_down_idle = b;
        }
        if let Some(b) = doc["aggregateRules"].as_bool() {
            cfg.controller.aggregate_rules = b;
        }
        if let Some(b) = doc["recordRequests"].as_bool() {
            cfg.controller.record_requests = b;
        }

        let millis = |v: &Value, key: &str| -> Result<Option<Duration>, ConfigError> {
            match &v[key] {
                Value::Null => Ok(None),
                Value::Int(ms) if *ms >= 0 => Ok(Some(Duration::from_millis(*ms as u64))),
                other => Err(ConfigError::Invalid(format!(
                    "{key}: expected a non-negative integer (milliseconds), got {other:?}"
                ))),
            }
        };
        let fraction = |v: &Value, key: &str| -> Result<Option<f64>, ConfigError> {
            match &v[key] {
                Value::Null => Ok(None),
                Value::Int(n) if (0..=1).contains(n) => Ok(Some(*n as f64)),
                Value::Float(p) if (0.0..=1.0).contains(p) => Ok(Some(*p)),
                other => Err(ConfigError::Invalid(format!(
                    "{key}: expected a number in [0, 1], got {other:?}"
                ))),
            }
        };

        let retry = &doc["retry"];
        if !retry.is_null() {
            if retry.as_map().is_none() {
                return Err(ConfigError::Invalid("retry must be a mapping".into()));
            }
            match &retry["maxAttempts"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => cfg.controller.retry.max_attempts = *n as u32,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "retry.maxAttempts: expected a positive integer, got {other:?}"
                    )))
                }
            }
            if let Some(d) = millis(retry, "baseMs")? {
                cfg.controller.retry.base = d;
            }
            if let Some(d) = millis(retry, "capMs")? {
                cfg.controller.retry.cap = d;
            }
            match &retry["multiplier"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => cfg.controller.retry.multiplier = *n as f64,
                Value::Float(m) if *m >= 1.0 => cfg.controller.retry.multiplier = *m,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "retry.multiplier: expected a number >= 1, got {other:?}"
                    )))
                }
            }
            if let Some(j) = fraction(retry, "jitter")? {
                cfg.controller.retry.jitter = j;
            }
            if let Some(d) = secs(retry, "phaseDeadline")? {
                cfg.controller.retry.phase_deadline = d;
            }
        }

        let faults = &doc["faults"];
        if !faults.is_null() {
            if faults.as_map().is_none() {
                return Err(ConfigError::Invalid("faults must be a mapping".into()));
            }
            match &faults["seed"] {
                Value::Null => {}
                Value::Int(s) if *s >= 0 => cfg.faults.seed = *s as u64,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "faults.seed: expected a non-negative integer, got {other:?}"
                    )))
                }
            }
            for (key, slot) in [
                ("pullFailure", &mut cfg.faults.pull_failure),
                ("pullSlowdown", &mut cfg.faults.pull_slowdown),
                ("createFailure", &mut cfg.faults.create_failure),
                ("startFailure", &mut cfg.faults.start_failure),
                ("crashAfterStart", &mut cfg.faults.crash_after_start),
                ("scaleUpRejection", &mut cfg.faults.scale_up_rejection),
                ("probeFlap", &mut cfg.faults.probe_flap),
                ("crashWhileServing", &mut cfg.faults.crash_while_serving),
                ("zoneOutage", &mut cfg.faults.zone_outage),
                ("channelLoss", &mut cfg.faults.channel_loss),
            ] {
                if let Some(p) = fraction(faults, key)? {
                    *slot = p;
                }
            }
            match &faults["pullSlowdownFactor"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => cfg.faults.pull_slowdown_factor = *n as f64,
                Value::Float(m) if *m >= 1.0 => cfg.faults.pull_slowdown_factor = *m,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "faults.pullSlowdownFactor: expected a number >= 1, got {other:?}"
                    )))
                }
            }
            if let Some(d) = millis(faults, "probeFlapDelayMs")? {
                cfg.faults.probe_flap_delay = d;
            }
            if let Some(d) = millis(faults, "zoneOutageWindowMs")? {
                cfg.faults.zone_outage_window = d;
            }
            if let Some(d) = millis(faults, "channelReconnectDelayMs")? {
                cfg.faults.channel_reconnect_delay = d;
            }
        }

        let health = &doc["health"];
        if !health.is_null() {
            if health.as_map().is_none() {
                return Err(ConfigError::Invalid("health must be a mapping".into()));
            }
            match &health["detectIntervalMs"] {
                Value::Null => {}
                Value::Int(ms) if *ms > 0 => {
                    cfg.controller.health.detect_interval = Duration::from_millis(*ms as u64);
                }
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "health.detectIntervalMs: expected a positive integer, got {other:?}"
                    )))
                }
            }
            match &health["breakerThreshold"] {
                Value::Null => {}
                Value::Int(k) if *k >= 1 => {
                    cfg.controller.health.breaker_threshold = *k as u32;
                }
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "health.breakerThreshold: expected an integer >= 1, got {other:?}"
                    )))
                }
            }
            match &health["breakerCooldownMs"] {
                Value::Null => {}
                Value::Int(ms) if *ms > 0 => {
                    cfg.controller.health.breaker_cooldown = Duration::from_millis(*ms as u64);
                }
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "health.breakerCooldownMs: expected a positive integer, got {other:?}"
                    )))
                }
            }
        }

        let autoscale = &doc["autoscale"];
        if !autoscale.is_null() {
            if autoscale.as_map().is_none() {
                return Err(ConfigError::Invalid("autoscale must be a mapping".into()));
            }
            let a = &mut cfg.controller.autoscale;
            if let Some(b) = autoscale["enabled"].as_bool() {
                a.enabled = b;
            }
            let replicas = |key: &str| -> Result<Option<usize>, ConfigError> {
                match &autoscale[key] {
                    Value::Null => Ok(None),
                    Value::Int(n) if *n >= 1 => Ok(Some(*n as usize)),
                    other => Err(ConfigError::Invalid(format!(
                        "autoscale.{key}: expected an integer >= 1, got {other:?}"
                    ))),
                }
            };
            if let Some(n) = replicas("minReplicas")? {
                a.min_replicas = n;
            }
            if let Some(n) = replicas("maxReplicas")? {
                a.max_replicas = n;
            }
            if a.max_replicas < a.min_replicas {
                return Err(ConfigError::Invalid(format!(
                    "autoscale.maxReplicas ({}) must be >= minReplicas ({})",
                    a.max_replicas, a.min_replicas
                )));
            }
            if let Some(p) = fraction(autoscale, "scaleUpUtilization")? {
                a.scale_up_utilization = p;
            }
            if let Some(p) = fraction(autoscale, "scaleDownUtilization")? {
                a.scale_down_utilization = p;
            }
            if a.scale_down_utilization >= a.scale_up_utilization {
                return Err(ConfigError::Invalid(format!(
                    "autoscale.scaleDownUtilization ({}) must be below \
                     scaleUpUtilization ({}) — the hysteresis band must not collapse",
                    a.scale_down_utilization, a.scale_up_utilization
                )));
            }
            match &autoscale["scaleUpBacklog"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => a.scale_up_backlog = *n as usize,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "autoscale.scaleUpBacklog: expected an integer >= 1, got {other:?}"
                    )))
                }
            }
            if let Some(d) = millis(autoscale, "cooldownMs")? {
                a.cooldown = d;
            }
            match &autoscale["sweepIntervalMs"] {
                Value::Null => {}
                Value::Int(ms) if *ms > 0 => a.sweep_interval = Duration::from_millis(*ms as u64),
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "autoscale.sweepIntervalMs: expected a positive integer, got {other:?}"
                    )))
                }
            }
            match &autoscale["serviceTimeMs"] {
                Value::Null => {}
                Value::Int(ms) if *ms > 0 => {
                    a.queue.service_time = Duration::from_millis(*ms as u64);
                }
                Value::Float(ms) if *ms > 0.0 => {
                    a.queue.service_time = Duration::from_millis_f64(*ms);
                }
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "autoscale.serviceTimeMs: expected a positive number, got {other:?}"
                    )))
                }
            }
            match &autoscale["concurrency"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => a.queue.concurrency = *n as usize,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "autoscale.concurrency: expected an integer >= 1, got {other:?}"
                    )))
                }
            }
            match &autoscale["backlog"] {
                Value::Null => {}
                Value::Int(n) if *n >= 0 => a.queue.backlog = *n as usize,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "autoscale.backlog: expected a non-negative integer, got {other:?}"
                    )))
                }
            }
        }

        let migration = &doc["migration"];
        if !migration.is_null() {
            if migration.as_map().is_none() {
                return Err(ConfigError::Invalid("migration must be a mapping".into()));
            }
            let m = &mut cfg.controller.migration;
            match &migration["policy"] {
                Value::Null => {}
                Value::Str(s) => {
                    m.policy = match s.as_str() {
                        "anchored" => MigrationPolicy::Anchored,
                        "redispatch" => MigrationPolicy::Redispatch,
                        "live" => MigrationPolicy::Live,
                        other => {
                            return Err(ConfigError::Invalid(format!(
                                "migration.policy: must be anchored|redispatch|live, got `{other}`"
                            )))
                        }
                    };
                }
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "migration.policy: expected a string, got {other:?}"
                    )))
                }
            }
            match &migration["stateBytesPerRequest"] {
                Value::Null => {}
                Value::Int(n) if *n >= 0 => m.state_bytes_per_request = *n as u64,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "migration.stateBytesPerRequest: expected a non-negative integer, \
                         got {other:?}"
                    )))
                }
            }
            if let Some(d) = millis(migration, "transferPropagationMs")? {
                m.transfer_propagation = d;
            }
            match &migration["transferBandwidthMbps"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => m.transfer_bandwidth_bps = *n as u64 * 1_000_000,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "migration.transferBandwidthMbps: expected an integer >= 1, got {other:?}"
                    )))
                }
            }
            match &migration["maxConcurrent"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => m.max_concurrent = *n as usize,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "migration.maxConcurrent: expected an integer >= 1, got {other:?}"
                    )))
                }
            }
            match &migration["mobilityHops"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => m.mobility_hops = *n as usize,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "migration.mobilityHops: expected an integer >= 1, got {other:?}"
                    )))
                }
            }
        }

        let journal = &doc["journal"];
        if !journal.is_null() {
            if journal.as_map().is_none() {
                return Err(ConfigError::Invalid("journal must be a mapping".into()));
            }
            let j = &mut cfg.controller.journal;
            if let Some(b) = journal["enabled"].as_bool() {
                j.enabled = b;
            }
            match &journal["snapshotEvery"] {
                Value::Null => {}
                Value::Int(n) if *n >= 1 => j.snapshot_every = *n as usize,
                other => {
                    return Err(ConfigError::Invalid(format!(
                        "journal.snapshotEvery: expected an integer >= 1, got {other:?}"
                    )))
                }
            }
        }

        if let Some(clusters) = doc["clusters"].as_seq() {
            for (i, c) in clusters.iter().enumerate() {
                let name = c["name"]
                    .as_str()
                    .ok_or_else(|| ConfigError::Invalid(format!("clusters[{i}]: missing name")))?;
                let kind = c["kind"]
                    .as_str()
                    .ok_or_else(|| ConfigError::Invalid(format!("clusters[{i}]: missing kind")))?;
                if kind != "docker" && kind != "k8s" {
                    return Err(ConfigError::Invalid(format!(
                        "clusters[{i}]: kind must be docker|k8s, got `{kind}`"
                    )));
                }
                cfg.clusters.push(ClusterDecl {
                    name: name.to_owned(),
                    kind: kind.to_owned(),
                    local_scheduler: c["localScheduler"].as_str().map(str::to_owned),
                });
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_is_defaults() {
        let cfg = EdgeConfig::from_yaml("").unwrap();
        assert_eq!(cfg, EdgeConfig::default());
        assert_eq!(cfg.scheduler, "proximity");
        assert_eq!(cfg.controller.memory_idle, Duration::from_secs(60));
    }

    #[test]
    fn full_config_parses() {
        let cfg = EdgeConfig::from_yaml(
            "
scheduler: latency-aware
predictor: recency
flowIdleTimeout: 5
memoryIdleTimeout: 120
removeAfter: 900
pollIntervalMs: 10
scaleDownIdle: false
clusters:
  - name: egs-docker
    kind: docker
  - name: egs-k8s
    kind: k8s
    localScheduler: edge-pack-scheduler
",
        )
        .unwrap();
        assert_eq!(cfg.scheduler, "latency-aware");
        assert_eq!(cfg.predictor, "recency");
        assert_eq!(cfg.controller.switch_flow_idle, Duration::from_secs(5));
        assert_eq!(cfg.controller.memory_idle, Duration::from_secs(120));
        assert_eq!(cfg.controller.remove_after, Some(Duration::from_secs(900)));
        assert_eq!(cfg.controller.poll_interval, Duration::from_millis(10));
        assert!(!cfg.controller.scale_down_idle);
        assert_eq!(cfg.clusters.len(), 2);
        assert_eq!(cfg.clusters[1].local_scheduler.as_deref(), Some("edge-pack-scheduler"));
    }

    #[test]
    fn retry_and_faults_blocks_parse() {
        let cfg = EdgeConfig::from_yaml(
            "
retry:
  maxAttempts: 5
  baseMs: 100
  multiplier: 1.5
  capMs: 2000
  jitter: 0.1
  phaseDeadline: 12
faults:
  seed: 42
  pullFailure: 0.2
  createFailure: 0.1
  startFailure: 0.05
  crashAfterStart: 0.01
  scaleUpRejection: 0.3
  probeFlap: 0.15
  pullSlowdownFactor: 4.0
  probeFlapDelayMs: 750
  crashWhileServing: 0.05
  zoneOutage: 0.02
  channelLoss: 0.03
  zoneOutageWindowMs: 45000
  channelReconnectDelayMs: 2500
health:
  detectIntervalMs: 250
  breakerThreshold: 5
  breakerCooldownMs: 30000
",
        )
        .unwrap();
        assert_eq!(cfg.controller.retry.max_attempts, 5);
        assert_eq!(cfg.controller.retry.base, Duration::from_millis(100));
        assert_eq!(cfg.controller.retry.multiplier, 1.5);
        assert_eq!(cfg.controller.retry.cap, Duration::from_secs(2));
        assert_eq!(cfg.controller.retry.jitter, 0.1);
        assert_eq!(cfg.controller.retry.phase_deadline, Duration::from_secs(12));
        assert_eq!(cfg.faults.seed, 42);
        assert_eq!(cfg.faults.pull_failure, 0.2);
        assert_eq!(cfg.faults.create_failure, 0.1);
        assert_eq!(cfg.faults.start_failure, 0.05);
        assert_eq!(cfg.faults.crash_after_start, 0.01);
        assert_eq!(cfg.faults.scale_up_rejection, 0.3);
        assert_eq!(cfg.faults.probe_flap, 0.15);
        assert_eq!(cfg.faults.pull_slowdown_factor, 4.0);
        assert_eq!(cfg.faults.probe_flap_delay, Duration::from_millis(750));
        assert_eq!(cfg.faults.crash_while_serving, 0.05);
        assert_eq!(cfg.faults.zone_outage, 0.02);
        assert_eq!(cfg.faults.channel_loss, 0.03);
        assert_eq!(cfg.faults.zone_outage_window, Duration::from_secs(45));
        assert_eq!(cfg.faults.channel_reconnect_delay, Duration::from_millis(2500));
        assert!(cfg.faults.enabled());
        assert!(cfg.faults.runtime_enabled());
        assert_eq!(cfg.controller.health.detect_interval, Duration::from_millis(250));
        assert_eq!(cfg.controller.health.breaker_threshold, 5);
        assert_eq!(cfg.controller.health.breaker_cooldown, Duration::from_secs(30));
    }

    #[test]
    fn missing_retry_and_faults_keep_defaults() {
        let cfg = EdgeConfig::from_yaml("scheduler: proximity").unwrap();
        assert_eq!(cfg.controller.retry, desim::RetryPolicy::default());
        assert_eq!(cfg.faults, FaultPlan::default());
        assert!(!cfg.faults.enabled());
    }

    #[test]
    fn invalid_retry_and_fault_values_rejected() {
        assert!(EdgeConfig::from_yaml("retry:\n  maxAttempts: 0").is_err());
        assert!(EdgeConfig::from_yaml("retry:\n  multiplier: 0.5").is_err());
        assert!(EdgeConfig::from_yaml("retry:\n  baseMs: -10").is_err());
        assert!(EdgeConfig::from_yaml("retry: fast").is_err());
        assert!(EdgeConfig::from_yaml("faults:\n  pullFailure: 1.5").is_err());
        assert!(EdgeConfig::from_yaml("faults:\n  createFailure: -0.1").is_err());
        assert!(EdgeConfig::from_yaml("faults:\n  seed: -1").is_err());
        assert!(EdgeConfig::from_yaml("faults: chaos").is_err());
    }

    #[test]
    fn invalid_runtime_fault_and_health_values_rejected() {
        // Probabilities outside [0, 1] are typed errors, not clamps.
        for bad in [
            "faults:\n  crashWhileServing: 1.5",
            "faults:\n  zoneOutage: -0.2",
            "faults:\n  channelLoss: 2",
            "faults:\n  zoneOutageWindowMs: -5",
            "faults:\n  channelReconnectDelayMs: soon",
        ] {
            let err = EdgeConfig::from_yaml(bad).unwrap_err();
            assert!(matches!(err, ConfigError::Invalid(_)), "{bad}: {err}");
        }
        // A zero detection interval would mean a busy-looping health sweep;
        // a zero threshold would trip the breaker before any failure.
        for bad in [
            "health:\n  detectIntervalMs: 0",
            "health:\n  detectIntervalMs: -100",
            "health:\n  breakerThreshold: 0",
            "health:\n  breakerCooldownMs: 0",
            "health: robust",
        ] {
            let err = EdgeConfig::from_yaml(bad).unwrap_err();
            assert!(matches!(err, ConfigError::Invalid(_)), "{bad}: {err}");
        }
        // Error messages name the offending key.
        let err = EdgeConfig::from_yaml("health:\n  detectIntervalMs: 0").unwrap_err();
        assert!(err.to_string().contains("detectIntervalMs"), "{err}");
        let err = EdgeConfig::from_yaml("faults:\n  crashWhileServing: 1.5").unwrap_err();
        assert!(err.to_string().contains("crashWhileServing"), "{err}");
    }

    #[test]
    fn missing_health_block_keeps_defaults() {
        let cfg = EdgeConfig::from_yaml("scheduler: proximity").unwrap();
        assert_eq!(cfg.controller.health, crate::health::HealthConfig::default());
        assert!(!cfg.faults.runtime_enabled());
    }

    #[test]
    fn fractional_timeouts_accepted() {
        let cfg = EdgeConfig::from_yaml("memoryIdleTimeout: 2.5").unwrap();
        assert_eq!(cfg.controller.memory_idle, Duration::from_millis(2500));
    }

    #[test]
    fn unknown_scheduler_rejected() {
        let err = EdgeConfig::from_yaml("scheduler: quantum").unwrap_err();
        assert!(matches!(err, ConfigError::Unknown(_)), "{err}");
        // The message names the offender and lists every known scheduler.
        let msg = err.to_string();
        assert!(msg.contains("`quantum`"), "{msg}");
        for known in crate::scheduler::KNOWN_SCHEDULERS {
            assert!(msg.contains(known), "{msg} should list {known}");
        }
        let err = EdgeConfig::from_yaml("predictor: psychic").unwrap_err();
        assert!(matches!(err, ConfigError::Unknown(_)));
    }

    #[test]
    fn invalid_values_rejected() {
        assert!(EdgeConfig::from_yaml("pollIntervalMs: 0").is_err());
        assert!(EdgeConfig::from_yaml("pollIntervalMs: fast").is_err());
        assert!(EdgeConfig::from_yaml("flowIdleTimeout: -3").is_err());
        assert!(EdgeConfig::from_yaml("- a\n- b").is_err());
        assert!(EdgeConfig::from_yaml("clusters:\n  - kind: docker").is_err());
        assert!(EdgeConfig::from_yaml("clusters:\n  - name: x\n    kind: vm").is_err());
    }

    #[test]
    fn yaml_errors_propagate() {
        assert!(matches!(
            EdgeConfig::from_yaml("scheduler: [unclosed"),
            Err(ConfigError::Yaml(_))
        ));
    }

    /// Sub-second and multi-hour `flowIdleTimeout` values parse exactly as
    /// written: the config layer carries the full `Duration`; only the wire
    /// encoding clamps (to `[1, 65535]` s — see `openflow::timeout_secs`).
    #[test]
    fn sub_second_and_multi_hour_flow_idle_parse() {
        let cfg = EdgeConfig::from_yaml("flowIdleTimeout: 0.5").unwrap();
        assert_eq!(cfg.controller.switch_flow_idle, Duration::from_millis(500));
        assert_eq!(openflow::timeout_secs(cfg.controller.switch_flow_idle), 1);

        let cfg = EdgeConfig::from_yaml("flowIdleTimeout: 72000").unwrap();
        assert_eq!(cfg.controller.switch_flow_idle, Duration::from_secs(72_000));
        assert_eq!(
            openflow::timeout_secs(cfg.controller.switch_flow_idle),
            u16::MAX,
            "20 h saturates instead of wrapping mod 65536"
        );

        // Boundary: exactly one second and exactly u16::MAX seconds survive
        // the wire encoding unclamped.
        assert_eq!(openflow::timeout_secs(Duration::from_secs(1)), 1);
        assert_eq!(openflow::timeout_secs(Duration::from_secs(65_535)), u16::MAX);
    }

    #[test]
    fn health_intervals_parse_across_magnitudes() {
        let cfg = EdgeConfig::from_yaml(
            "health:\n  detectIntervalMs: 250\n  breakerCooldownMs: 7200000\n",
        )
        .unwrap();
        assert_eq!(cfg.controller.health.detect_interval, Duration::from_millis(250));
        assert_eq!(cfg.controller.health.breaker_cooldown, Duration::from_secs(7200));
    }

    #[test]
    fn autoscale_block_parses() {
        let cfg = EdgeConfig::from_yaml(
            "
autoscale:
  enabled: true
  minReplicas: 2
  maxReplicas: 6
  scaleUpUtilization: 0.75
  scaleDownUtilization: 0.25
  scaleUpBacklog: 3
  cooldownMs: 2500
  sweepIntervalMs: 500
  serviceTimeMs: 15
  concurrency: 8
  backlog: 16
",
        )
        .unwrap();
        let a = &cfg.controller.autoscale;
        assert!(a.enabled);
        assert_eq!(a.min_replicas, 2);
        assert_eq!(a.max_replicas, 6);
        assert_eq!(a.scale_up_utilization, 0.75);
        assert_eq!(a.scale_down_utilization, 0.25);
        assert_eq!(a.scale_up_backlog, 3);
        assert_eq!(a.cooldown, Duration::from_millis(2500));
        assert_eq!(a.sweep_interval, Duration::from_millis(500));
        assert_eq!(a.queue.service_time, Duration::from_millis(15));
        assert_eq!(a.queue.concurrency, 8);
        assert_eq!(a.queue.backlog, 16);
    }

    #[test]
    fn autoscale_defaults_to_disabled() {
        let cfg = EdgeConfig::from_yaml("scheduler: proximity").unwrap();
        assert_eq!(cfg.controller.autoscale, crate::AutoscaleConfig::default());
        assert!(!cfg.controller.autoscale.enabled);
        // Partial blocks inherit every unset knob from the defaults.
        let cfg = EdgeConfig::from_yaml("autoscale:\n  maxReplicas: 8").unwrap();
        assert!(!cfg.controller.autoscale.enabled);
        assert_eq!(cfg.controller.autoscale.max_replicas, 8);
        assert_eq!(cfg.controller.autoscale.min_replicas, 1);
    }

    #[test]
    fn invalid_autoscale_values_rejected() {
        for bad in [
            "autoscale: always",
            "autoscale:\n  minReplicas: 0",
            "autoscale:\n  maxReplicas: 0",
            "autoscale:\n  minReplicas: 4\n  maxReplicas: 2",
            "autoscale:\n  scaleUpUtilization: 1.5",
            "autoscale:\n  scaleDownUtilization: -0.1",
            "autoscale:\n  scaleUpUtilization: 0.3\n  scaleDownUtilization: 0.6",
            "autoscale:\n  scaleUpBacklog: 0",
            "autoscale:\n  cooldownMs: -1",
            "autoscale:\n  sweepIntervalMs: 0",
            "autoscale:\n  serviceTimeMs: 0",
            "autoscale:\n  concurrency: 0",
            "autoscale:\n  backlog: -1",
        ] {
            let err = EdgeConfig::from_yaml(bad).unwrap_err();
            assert!(matches!(err, ConfigError::Invalid(_)), "{bad}: {err}");
        }
        // The hysteresis-band error names both thresholds.
        let err = EdgeConfig::from_yaml(
            "autoscale:\n  scaleUpUtilization: 0.3\n  scaleDownUtilization: 0.6",
        )
        .unwrap_err();
        assert!(err.to_string().contains("hysteresis"), "{err}");
    }

    #[test]
    fn migration_block_parses() {
        let cfg = EdgeConfig::from_yaml(
            "
migration:
  policy: live
  stateBytesPerRequest: 4096
  transferPropagationMs: 5
  transferBandwidthMbps: 200
  maxConcurrent: 4
  mobilityHops: 2
",
        )
        .unwrap();
        let m = &cfg.controller.migration;
        assert_eq!(m.policy, MigrationPolicy::Live);
        assert!(m.live());
        assert_eq!(m.state_bytes_per_request, 4096);
        assert_eq!(m.transfer_propagation, Duration::from_millis(5));
        assert_eq!(m.transfer_bandwidth_bps, 200_000_000);
        assert_eq!(m.max_concurrent, 4);
        assert_eq!(m.mobility_hops, 2);
    }

    #[test]
    fn migration_defaults_to_off() {
        let cfg = EdgeConfig::from_yaml("scheduler: proximity").unwrap();
        assert_eq!(cfg.controller.migration, crate::MigrationConfig::default());
        assert!(!cfg.controller.migration.live());
        // Partial blocks inherit every unset knob from the defaults —
        // naming a state size does not switch the policy to live.
        let cfg = EdgeConfig::from_yaml("migration:\n  stateBytesPerRequest: 1024").unwrap();
        assert!(!cfg.controller.migration.live());
        assert_eq!(cfg.controller.migration.state_bytes_per_request, 1024);
    }

    #[test]
    fn invalid_migration_values_rejected() {
        for bad in [
            "migration: always",
            "migration:\n  policy: teleport",
            "migration:\n  policy: 3",
            "migration:\n  stateBytesPerRequest: -1",
            "migration:\n  transferPropagationMs: -1",
            "migration:\n  transferBandwidthMbps: 0",
            "migration:\n  maxConcurrent: 0",
            "migration:\n  mobilityHops: 0",
        ] {
            let err = EdgeConfig::from_yaml(bad).unwrap_err();
            assert!(matches!(err, ConfigError::Invalid(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn journal_block_parses_and_defaults_to_off() {
        let cfg = EdgeConfig::from_yaml("journal:\n  enabled: true\n  snapshotEvery: 64\n").unwrap();
        assert!(cfg.controller.journal.enabled);
        assert_eq!(cfg.controller.journal.snapshot_every, 64);
        // Off by default — parsing a config without the block must leave
        // every journal hook a never-taken branch.
        let cfg = EdgeConfig::from_yaml("scheduler: proximity").unwrap();
        assert_eq!(cfg.controller.journal, crate::JournalConfig::default());
        assert!(!cfg.controller.journal.enabled);
        // Partial blocks inherit the unset knobs.
        let cfg = EdgeConfig::from_yaml("journal:\n  snapshotEvery: 16").unwrap();
        assert!(!cfg.controller.journal.enabled);
        assert_eq!(cfg.controller.journal.snapshot_every, 16);
        for bad in [
            "journal: durable",
            "journal:\n  snapshotEvery: 0",
            "journal:\n  snapshotEvery: -4",
            "journal:\n  snapshotEvery: often",
        ] {
            let err = EdgeConfig::from_yaml(bad).unwrap_err();
            assert!(matches!(err, ConfigError::Invalid(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn fleet_flags_parse() {
        let cfg = EdgeConfig::from_yaml("aggregateRules: true\nrecordRequests: false").unwrap();
        assert!(cfg.controller.aggregate_rules);
        assert!(!cfg.controller.record_requests);
        // Defaults: exact rules, full records.
        let cfg = EdgeConfig::from_yaml("scheduler: proximity").unwrap();
        assert!(!cfg.controller.aggregate_rules);
        assert!(cfg.controller.record_requests);
    }
}
