//! Controller configuration files.
//!
//! The reference controller reads its configuration — which Global Scheduler
//! to load dynamically, the per-cluster Local Scheduler, the timeouts — from
//! a file. [`EdgeConfig`] is that file, in the same YAML dialect as the
//! service definitions:
//!
//! ```yaml
//! scheduler: proximity
//! predictor: none
//! flowIdleTimeout: 10        # seconds, installed into switch flows
//! memoryIdleTimeout: 60      # seconds, FlowMemory / scale-down trigger
//! removeAfter: 600           # seconds from scale-down to full removal
//! pollIntervalMs: 25         # readiness port-probe interval
//! scaleDownIdle: true
//! clusters:
//!   - name: egs-docker
//!     kind: docker
//!   - name: egs-k8s
//!     kind: k8s
//!     localScheduler: edge-pack-scheduler
//! ```

use crate::controller::ControllerConfig;
use desim::Duration;
use yamlite::Value;

/// A cluster declaration in the configuration file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterDecl {
    /// Cluster name.
    pub name: String,
    /// `"docker"` or `"k8s"`.
    pub kind: String,
    /// Optional Local Scheduler (Kubernetes `schedulerName`).
    pub local_scheduler: Option<String>,
}

/// Parsed controller configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeConfig {
    /// Global Scheduler name (see [`crate::scheduler_by_name`]).
    pub scheduler: String,
    /// Predictor name (see [`crate::predictor_by_name`]).
    pub predictor: String,
    /// Controller timing/behaviour knobs.
    pub controller: ControllerConfig,
    /// Declared clusters.
    pub clusters: Vec<ClusterDecl>,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            scheduler: "proximity".to_owned(),
            predictor: "none".to_owned(),
            controller: ControllerConfig::default(),
            clusters: Vec::new(),
        }
    }
}

/// Errors from loading a configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// YAML syntax error.
    Yaml(yamlite::ParseError),
    /// A field had the wrong type or an invalid value.
    Invalid(String),
    /// The named scheduler/predictor is not known.
    Unknown(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Yaml(e) => write!(f, "{e}"),
            ConfigError::Invalid(m) => write!(f, "invalid config: {m}"),
            ConfigError::Unknown(m) => write!(f, "unknown component: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<yamlite::ParseError> for ConfigError {
    fn from(e: yamlite::ParseError) -> Self {
        ConfigError::Yaml(e)
    }
}

impl EdgeConfig {
    /// Parses a configuration file. Missing keys fall back to the defaults;
    /// unknown scheduler/predictor names are rejected eagerly (the reference
    /// controller fails at dynamic-load time — we fail at parse time).
    pub fn from_yaml(text: &str) -> Result<EdgeConfig, ConfigError> {
        let doc = yamlite::parse_str(text)?;
        let mut cfg = EdgeConfig::default();
        if doc.is_null() {
            return Ok(cfg);
        }
        if doc.as_map().is_none() {
            return Err(ConfigError::Invalid("config must be a mapping".into()));
        }

        if let Some(s) = doc["scheduler"].as_str() {
            if crate::scheduler_by_name(s).is_none() {
                return Err(ConfigError::Unknown(format!("scheduler `{s}`")));
            }
            cfg.scheduler = s.to_owned();
        }
        if let Some(p) = doc["predictor"].as_str() {
            if crate::predictor_by_name(p).is_none() {
                return Err(ConfigError::Unknown(format!("predictor `{p}`")));
            }
            cfg.predictor = p.to_owned();
        }

        let secs = |v: &Value, key: &str| -> Result<Option<Duration>, ConfigError> {
            match &v[key] {
                Value::Null => Ok(None),
                Value::Int(s) if *s >= 0 => Ok(Some(Duration::from_secs(*s as u64))),
                Value::Float(s) if *s >= 0.0 => Ok(Some(Duration::from_secs_f64(*s))),
                other => Err(ConfigError::Invalid(format!(
                    "{key}: expected a non-negative number, got {other:?}"
                ))),
            }
        };
        if let Some(d) = secs(&doc, "flowIdleTimeout")? {
            cfg.controller.switch_flow_idle = d;
        }
        if let Some(d) = secs(&doc, "memoryIdleTimeout")? {
            cfg.controller.memory_idle = d;
        }
        if let Some(d) = secs(&doc, "removeAfter")? {
            cfg.controller.remove_after = Some(d);
        }
        match &doc["pollIntervalMs"] {
            Value::Null => {}
            Value::Int(ms) if *ms > 0 => {
                cfg.controller.poll_interval = Duration::from_millis(*ms as u64);
            }
            other => {
                return Err(ConfigError::Invalid(format!(
                    "pollIntervalMs: expected a positive integer, got {other:?}"
                )))
            }
        }
        if let Some(b) = doc["scaleDownIdle"].as_bool() {
            cfg.controller.scale_down_idle = b;
        }

        if let Some(clusters) = doc["clusters"].as_seq() {
            for (i, c) in clusters.iter().enumerate() {
                let name = c["name"]
                    .as_str()
                    .ok_or_else(|| ConfigError::Invalid(format!("clusters[{i}]: missing name")))?;
                let kind = c["kind"]
                    .as_str()
                    .ok_or_else(|| ConfigError::Invalid(format!("clusters[{i}]: missing kind")))?;
                if kind != "docker" && kind != "k8s" {
                    return Err(ConfigError::Invalid(format!(
                        "clusters[{i}]: kind must be docker|k8s, got `{kind}`"
                    )));
                }
                cfg.clusters.push(ClusterDecl {
                    name: name.to_owned(),
                    kind: kind.to_owned(),
                    local_scheduler: c["localScheduler"].as_str().map(str::to_owned),
                });
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_is_defaults() {
        let cfg = EdgeConfig::from_yaml("").unwrap();
        assert_eq!(cfg, EdgeConfig::default());
        assert_eq!(cfg.scheduler, "proximity");
        assert_eq!(cfg.controller.memory_idle, Duration::from_secs(60));
    }

    #[test]
    fn full_config_parses() {
        let cfg = EdgeConfig::from_yaml(
            "
scheduler: latency-aware
predictor: recency
flowIdleTimeout: 5
memoryIdleTimeout: 120
removeAfter: 900
pollIntervalMs: 10
scaleDownIdle: false
clusters:
  - name: egs-docker
    kind: docker
  - name: egs-k8s
    kind: k8s
    localScheduler: edge-pack-scheduler
",
        )
        .unwrap();
        assert_eq!(cfg.scheduler, "latency-aware");
        assert_eq!(cfg.predictor, "recency");
        assert_eq!(cfg.controller.switch_flow_idle, Duration::from_secs(5));
        assert_eq!(cfg.controller.memory_idle, Duration::from_secs(120));
        assert_eq!(cfg.controller.remove_after, Some(Duration::from_secs(900)));
        assert_eq!(cfg.controller.poll_interval, Duration::from_millis(10));
        assert!(!cfg.controller.scale_down_idle);
        assert_eq!(cfg.clusters.len(), 2);
        assert_eq!(cfg.clusters[1].local_scheduler.as_deref(), Some("edge-pack-scheduler"));
    }

    #[test]
    fn fractional_timeouts_accepted() {
        let cfg = EdgeConfig::from_yaml("memoryIdleTimeout: 2.5").unwrap();
        assert_eq!(cfg.controller.memory_idle, Duration::from_millis(2500));
    }

    #[test]
    fn unknown_scheduler_rejected() {
        let err = EdgeConfig::from_yaml("scheduler: quantum").unwrap_err();
        assert!(matches!(err, ConfigError::Unknown(_)), "{err}");
        let err = EdgeConfig::from_yaml("predictor: psychic").unwrap_err();
        assert!(matches!(err, ConfigError::Unknown(_)));
    }

    #[test]
    fn invalid_values_rejected() {
        assert!(EdgeConfig::from_yaml("pollIntervalMs: 0").is_err());
        assert!(EdgeConfig::from_yaml("pollIntervalMs: fast").is_err());
        assert!(EdgeConfig::from_yaml("flowIdleTimeout: -3").is_err());
        assert!(EdgeConfig::from_yaml("- a\n- b").is_err());
        assert!(EdgeConfig::from_yaml("clusters:\n  - kind: docker").is_err());
        assert!(EdgeConfig::from_yaml("clusters:\n  - name: x\n    kind: vm").is_err());
    }

    #[test]
    fn yaml_errors_propagate() {
        assert!(matches!(
            EdgeConfig::from_yaml("scheduler: [unclosed"),
            Err(ConfigError::Yaml(_))
        ));
    }
}
