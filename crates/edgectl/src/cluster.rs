//! The [`EdgeCluster`] abstraction: one interface, two cluster types.
//!
//! The controller manipulates every edge cluster through the paper's
//! deployment phases (Fig. 4):
//!
//! * **Pull** — download missing image layers;
//! * **Create** — Docker: create the containers; Kubernetes: create the
//!   `Deployment` + `Service` with zero replicas;
//! * **Scale Up** — Docker: start the containers; Kubernetes: set
//!   `replicas = 1`;
//! * **Scale Down** / **Remove** — the reverse, driven by idle-flow expiry.
//!
//! The same annotated service definition drives both implementations.

use crate::annotate::EDGE_SERVICE_LABEL;
use crate::service::EdgeService;
use containerd::{RuntimeError, ServiceProfile};
use desim::{Duration, LogNormal, Sample, SimRng, SimTime};
use dockersim::{DockerEngine, DockerError};
use k8ssim::objects::{PodContainer, PodTemplate};
use k8ssim::{ClusterEvent, K8sCluster};
use netsim::addr::{Ipv4Addr, MacAddr};
use registry::{ImageManifest, ImageRef};
use std::collections::BTreeMap;

/// Where a ready instance can be reached by the data plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceAddr {
    /// MAC to address frames to (the cluster host's NIC).
    pub mac: MacAddr,
    /// Instance IP (host IP for Docker, pod IP for Kubernetes).
    pub ip: Ipv4Addr,
    /// TCP port the instance serves on.
    pub port: u16,
}

/// Deployment state of a service on one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceState {
    /// Nothing deployed.
    NotDeployed,
    /// Created (containers exist / Deployment at zero replicas).
    Created,
    /// Scale-up in progress; ready at the contained instant.
    Starting {
        /// When the instance will accept connections.
        ready_at: SimTime,
    },
    /// Serving.
    Ready(InstanceAddr),
}

impl InstanceState {
    /// `true` if the instance serves traffic.
    pub fn is_ready(&self) -> bool {
        matches!(self, InstanceState::Ready(_))
    }
}

/// The deployment phase a failure surfaced in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeployPhase {
    /// Image download.
    Pull,
    /// Container / Deployment object creation.
    Create,
    /// Scale-up (start / replicas=1).
    ScaleUp,
}

impl std::fmt::Display for DeployPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployPhase::Pull => write!(f, "pull"),
            DeployPhase::Create => write!(f, "create"),
            DeployPhase::ScaleUp => write!(f, "scale-up"),
        }
    }
}

/// A failed deployment phase. The cluster has already rolled back any
/// partial work, so a retry starting at `at` sees a clean slate.
#[derive(Clone, Debug, PartialEq)]
pub struct DeployError {
    /// When the failure (including rollback) finished surfacing.
    pub at: SimTime,
    /// Which phase failed.
    pub phase: DeployPhase,
    /// Human-readable cause.
    pub reason: String,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Same human-scale unit selection as every other duration the repo
        // prints (see [`desim::fmt_duration`]).
        write!(
            f,
            "{} phase failed at t={}: {}",
            self.phase,
            desim::fmt_duration(self.at.saturating_since(SimTime::ZERO)),
            self.reason
        )
    }
}

impl std::error::Error for DeployError {}

/// A deployable edge cluster.
pub trait EdgeCluster {
    /// Cluster name (unique within the controller).
    fn name(&self) -> &str;

    /// `"docker"` or `"k8s"`.
    fn kind(&self) -> &'static str;

    /// One-way latency from the ingress switch to this cluster (the Global
    /// Scheduler's distance metric; hierarchical far-away clusters have
    /// larger values).
    fn latency(&self) -> Duration;

    /// `true` if every image layer of the service is cached here.
    fn has_image_cached(&self, svc: &EdgeService) -> bool;

    /// Deployment state of `svc` at `now`.
    fn state(&self, svc: &EdgeService, now: SimTime) -> InstanceState;

    /// **Pull** phase. Returns its completion instant (`now` when cached),
    /// or a [`DeployError`] when an injected registry fault drops the
    /// transfer (nothing is cached from the failed attempt).
    fn pull(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng)
        -> Result<SimTime, DeployError>;

    /// **Create** phase. Returns its completion instant. A runtime fault
    /// rolls back any partially created containers before the error
    /// surfaces, so the phase can be retried.
    ///
    /// # Panics
    /// Panics if the service is already created (phases are explicit).
    fn create(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng)
        -> Result<SimTime, DeployError>;

    /// **Scale Up** phase. Returns `(command_done, ready_at)`:
    /// `command_done` is when the scale-up API call returns to the
    /// controller (Docker: `docker start` completed; Kubernetes: the scale
    /// request was acknowledged), `ready_at` when the instance actually
    /// accepts connections. The controller discovers the latter by port
    /// polling from `command_done` onward — the gap is the paper's *wait
    /// time* (Figs. 14/15).
    ///
    /// A genuinely unschedulable service is **not** an error: it returns
    /// `ready_at = SimTime::MAX` and callers time out. Injected faults
    /// (start failures, crashes, scheduling rejections) surface as
    /// [`DeployError`] after rolling back, leaving the service Created.
    fn scale_up(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng)
        -> Result<(SimTime, SimTime), DeployError>;

    /// **Scale Down** phase. Returns its completion instant.
    fn scale_down(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> SimTime;

    /// A *runtime crash*: the instance dies in place (node failure, OOM
    /// kill, zone power loss) rather than being scaled down in an orderly
    /// way. The service drops back to `Created` so the normal Scale Up path
    /// can redeploy it; returns `true` if an instance was actually running
    /// (Ready or Starting). Only called by fault-injection harnesses, never
    /// on the fault-free path.
    fn fail_instance(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> bool {
        match self.state(svc, now) {
            InstanceState::Ready(_) | InstanceState::Starting { .. } => {
                self.scale_down(svc, now, rng);
                true
            }
            InstanceState::NotDeployed | InstanceState::Created => false,
        }
    }

    /// **Remove** phase. Returns its completion instant.
    fn remove(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> SimTime;

    /// The address a (ready or starting) instance serves at.
    fn instance_addr(&self, svc: &EdgeService) -> Option<InstanceAddr>;

    /// Number of services currently scaled up (scheduler load metric).
    fn load(&self) -> usize;

    /// Point-in-time operation counters and cache rates for telemetry
    /// snapshots, as `(name, value)` pairs. Snapshots fold them into the
    /// metrics registry as `cluster.<cluster-name>.<name>` gauges.
    fn telemetry_stats(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// Readiness model for sidecar containers without a listen port.
fn sidecar_ready() -> LogNormal {
    LogNormal::from_median(0.25, 0.25)
}

/// Finds the manifest of `image` within a service profile.
fn manifest_for<'a>(image: &ImageRef, profile: &'a ServiceProfile) -> &'a ImageManifest {
    profile
        .manifests
        .iter()
        .find(|m| m.reference == *image)
        .unwrap_or_else(|| panic!("image {image} not part of service profile {}", profile.key))
}

// ---------------------------------------------------------------------------
// Docker
// ---------------------------------------------------------------------------

struct DockerEntry {
    host_port: u16,
    containers: Vec<String>, // engine names, serving container first
    created: bool,
    running: bool,
    ready_at: SimTime,
}

/// A Docker-based edge cluster (the lightweight, fast-start option).
pub struct DockerCluster {
    name: String,
    engine: DockerEngine,
    host_mac: MacAddr,
    host_ip: Ipv4Addr,
    latency: Duration,
    next_port: u16,
    entries: BTreeMap<String, DockerEntry>,
}

impl DockerCluster {
    /// Creates a Docker cluster on a host reachable at `host_ip`/`host_mac`.
    /// On-demand services get host ports allocated from 31000 upward.
    pub fn new(
        name: impl Into<String>,
        engine: DockerEngine,
        host_mac: MacAddr,
        host_ip: Ipv4Addr,
        latency: Duration,
    ) -> DockerCluster {
        DockerCluster {
            name: name.into(),
            engine,
            host_mac,
            host_ip,
            latency,
            next_port: 31000,
            entries: BTreeMap::new(),
        }
    }

    /// Access to the engine (image pre-seeding, assertions).
    pub fn engine_mut(&mut self) -> &mut DockerEngine {
        &mut self.engine
    }

    fn serving_container<'a>(&self, svc: &'a EdgeService) -> &'a containerd::ContainerSpec {
        svc.annotated
            .containers
            .iter()
            .find(|c| c.listen_port.is_some())
            .unwrap_or(&svc.annotated.containers[0])
    }
}

impl EdgeCluster for DockerCluster {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &'static str {
        "docker"
    }

    fn latency(&self) -> Duration {
        self.latency
    }

    fn has_image_cached(&self, svc: &EdgeService) -> bool {
        svc.profile
            .manifests
            .iter()
            .all(|m| self.engine.node().store().has_image(m))
    }

    fn state(&self, svc: &EdgeService, now: SimTime) -> InstanceState {
        match self.entries.get(&svc.name) {
            None => InstanceState::NotDeployed,
            Some(e) if !e.running => InstanceState::Created,
            Some(e) => {
                let serving = self.serving_container(svc);
                let port = serving.listen_port.unwrap_or(svc.annotated.target_port);
                if self.engine.port_open(&serving.name, port, now) {
                    InstanceState::Ready(InstanceAddr {
                        mac: self.host_mac,
                        ip: self.host_ip,
                        port: e.host_port,
                    })
                } else {
                    InstanceState::Starting { ready_at: e.ready_at }
                }
            }
        }
    }

    fn pull(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> Result<SimTime, DeployError> {
        match self.engine.try_pull(&svc.profile.manifests, rng) {
            Ok(d) => Ok(now + d),
            Err(e) => Err(DeployError {
                at: now + e.elapsed,
                phase: DeployPhase::Pull,
                reason: e.reason,
            }),
        }
    }

    fn create(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> Result<SimTime, DeployError> {
        assert!(
            !self.entries.contains_key(&svc.name),
            "service {} already created on {}",
            svc.name,
            self.name
        );
        let mut t = now;
        let mut names = Vec::new();
        // Serving container first so readiness probes target it.
        let mut specs: Vec<_> = svc.annotated.containers.iter().collect();
        specs.sort_by_key(|c| c.listen_port.is_none());
        for spec in specs {
            let manifest = manifest_for(&spec.image, &svc.profile).clone();
            match self.engine.create(spec.clone(), &manifest, t, rng) {
                Ok((_, done)) => {
                    t = done;
                    names.push(spec.name.clone());
                }
                Err(e) => {
                    let mut at = match &e {
                        DockerError::Runtime(RuntimeError::Injected { at, .. }) => *at,
                        _ => t,
                    };
                    // Remove the containers created so far, so a retry does
                    // not trip over name conflicts.
                    for n in &names {
                        at = self
                            .engine
                            .remove(n, at, rng)
                            .expect("partially created container exists");
                    }
                    return Err(DeployError {
                        at,
                        phase: DeployPhase::Create,
                        reason: e.to_string(),
                    });
                }
            }
        }
        let host_port = self.next_port;
        self.next_port += 1;
        self.entries.insert(
            svc.name.clone(),
            DockerEntry {
                host_port,
                containers: names,
                created: true,
                running: false,
                ready_at: SimTime::MAX,
            },
        );
        Ok(t)
    }

    fn scale_up(
        &mut self,
        svc: &EdgeService,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<(SimTime, SimTime), DeployError> {
        let entry = self
            .entries
            .get(&svc.name)
            .unwrap_or_else(|| panic!("scale_up before create for {}", svc.name));
        assert!(entry.created && !entry.running, "bad phase order");
        let containers = entry.containers.clone();
        let mut t = now;
        let mut ready = now;
        let mut started = Vec::new();
        for name in &containers {
            // The serving container draws from the service profile; sidecars
            // from the generic sidecar model.
            let serving = self.serving_container(svc).name == *name;
            let delay = if serving {
                svc.profile.ready_delay.sample_duration(rng)
            } else {
                sidecar_ready().sample_duration(rng)
            };
            match self.engine.start(name, t, delay, rng) {
                Ok((s, r)) => {
                    t = s;
                    if serving {
                        ready = ready.max(r);
                    }
                    started.push(name.clone());
                }
                Err(e) => {
                    let mut at = match &e {
                        DockerError::Runtime(RuntimeError::Injected { at, .. })
                        | DockerError::Runtime(RuntimeError::CrashedAfterStart { at }) => *at,
                        _ => t,
                    };
                    // Stop the containers that did start (the failed one is
                    // already stopped or never ran), so a retry can start
                    // them all again.
                    for n in &started {
                        at = self.engine.stop(n, at, rng).expect("started container exists");
                    }
                    return Err(DeployError {
                        at,
                        phase: DeployPhase::ScaleUp,
                        reason: e.to_string(),
                    });
                }
            }
        }
        let entry = self.entries.get_mut(&svc.name).expect("entry exists");
        entry.running = true;
        entry.ready_at = ready.max(t);
        // `docker start` returns once every task is launched (t); the app
        // inside may still be loading until `ready_at`.
        Ok((t, entry.ready_at))
    }

    fn scale_down(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> SimTime {
        let Some(entry) = self.entries.get_mut(&svc.name) else {
            return now;
        };
        if !entry.running {
            return now;
        }
        entry.running = false;
        entry.ready_at = SimTime::MAX;
        let containers = entry.containers.clone();
        let mut t = now;
        for name in &containers {
            t = self.engine.stop(name, t, rng).expect("container exists");
        }
        t
    }

    fn remove(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> SimTime {
        let Some(entry) = self.entries.remove(&svc.name) else {
            return now;
        };
        let mut t = now;
        for name in &entry.containers {
            t = self.engine.remove(name, t, rng).expect("container exists");
        }
        t
    }

    fn instance_addr(&self, svc: &EdgeService) -> Option<InstanceAddr> {
        self.entries.get(&svc.name).map(|e| InstanceAddr {
            mac: self.host_mac,
            ip: self.host_ip,
            port: e.host_port,
        })
    }

    fn load(&self) -> usize {
        self.entries.values().filter(|e| e.running).count()
    }

    fn telemetry_stats(&self) -> Vec<(&'static str, f64)> {
        let ops = self.engine.ops;
        let mut stats = vec![
            ("ops_pulls", ops.pulls as f64),
            ("ops_creates", ops.creates as f64),
            ("ops_starts", ops.starts as f64),
            ("ops_stops", ops.stops as f64),
            ("ops_removes", ops.removes as f64),
        ];
        if let Some(rate) = self.engine.node().store().cache().hit_rate() {
            stats.push(("layer_cache_hit_rate", rate));
        }
        stats
    }
}

// ---------------------------------------------------------------------------
// Kubernetes
// ---------------------------------------------------------------------------

struct K8sEntry {
    applied: bool,
    scaled_up: bool,
    ready_at: SimTime,
    pod_addr: Option<([u8; 4], u16)>,
}

/// A Kubernetes-based edge cluster (automated management, slower starts).
pub struct K8sEdgeCluster {
    name: String,
    cluster: K8sCluster,
    host_mac: MacAddr,
    latency: Duration,
    scheduler_name: Option<String>,
    entries: BTreeMap<String, K8sEntry>,
}

impl K8sEdgeCluster {
    /// Creates a K8s cluster adapter; `host_mac` is the worker node's NIC
    /// (pod IPs are reached through it). `scheduler_name` selects a Local
    /// Scheduler for edge pods.
    pub fn new(
        name: impl Into<String>,
        cluster: K8sCluster,
        host_mac: MacAddr,
        latency: Duration,
        scheduler_name: Option<String>,
    ) -> K8sEdgeCluster {
        K8sEdgeCluster {
            name: name.into(),
            cluster,
            host_mac,
            latency,
            scheduler_name,
            entries: BTreeMap::new(),
        }
    }

    /// Access to the underlying cluster (pre-pulls, assertions).
    pub fn cluster_mut(&mut self) -> &mut K8sCluster {
        &mut self.cluster
    }

    fn build_objects(&self, svc: &EdgeService) -> (k8ssim::Deployment, k8ssim::Service) {
        let labels: BTreeMap<String, String> = [
            ("app".to_owned(), svc.name.clone()),
            (EDGE_SERVICE_LABEL.to_owned(), svc.annotated.edge_label.clone()),
        ]
        .into();
        let containers = svc
            .annotated
            .containers
            .iter()
            .map(|spec| {
                let serving = spec.listen_port.is_some();
                PodContainer {
                    spec: spec.clone(),
                    manifest: manifest_for(&spec.image, &svc.profile).clone(),
                    ready: if serving {
                        svc.profile.ready_delay
                    } else {
                        sidecar_ready()
                    },
                }
            })
            .collect();
        let dep = k8ssim::Deployment {
            name: svc.name.clone(),
            labels: labels.clone(),
            replicas: 0,
            selector: labels.clone(),
            template: PodTemplate {
                labels: labels.clone(),
                containers,
            },
            scheduler_name: self.scheduler_name.clone(),
        };
        let service = k8ssim::Service {
            name: svc.name.clone(),
            selector: labels,
            port: svc.annotated.port,
            target_port: svc.annotated.target_port,
            protocol: "TCP".to_owned(),
        };
        (dep, service)
    }
}

impl EdgeCluster for K8sEdgeCluster {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &'static str {
        "k8s"
    }

    fn latency(&self) -> Duration {
        self.latency
    }

    fn has_image_cached(&self, svc: &EdgeService) -> bool {
        // Caches are per worker node: the image counts as cached when some
        // node could start the service without pulling.
        self.cluster.any_worker_has(&svc.profile.manifests)
    }

    fn state(&self, svc: &EdgeService, now: SimTime) -> InstanceState {
        match self.entries.get(&svc.name) {
            None => InstanceState::NotDeployed,
            Some(e) if !e.scaled_up => InstanceState::Created,
            Some(e) => {
                let eps = self.cluster.ready_endpoints(&svc.name, now);
                match eps.first() {
                    Some(&(ip, port)) => InstanceState::Ready(InstanceAddr {
                        mac: self.host_mac,
                        ip: Ipv4Addr(ip),
                        port,
                    }),
                    None => InstanceState::Starting { ready_at: e.ready_at },
                }
            }
        }
    }

    fn pull(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> Result<SimTime, DeployError> {
        match self.cluster.node_mut().try_pull(&svc.profile.manifests, rng) {
            Ok(d) => Ok(now + d),
            Err(e) => Err(DeployError {
                at: now + e.elapsed,
                phase: DeployPhase::Pull,
                reason: e.reason,
            }),
        }
    }

    fn create(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> Result<SimTime, DeployError> {
        assert!(
            !self.entries.contains_key(&svc.name),
            "service {} already created on {}",
            svc.name,
            self.name
        );
        let (dep, service) = self.build_objects(svc);
        let acked = self.cluster.apply(dep, service, now, rng);
        // The zero-replica reconciliation (ReplicaSet creation) completes the
        // Create phase.
        let events = self.cluster.settle(rng);
        let done = events
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::ReplicaSetCreated { at, .. } => Some(*at),
                _ => None,
            })
            .max()
            .unwrap_or(acked);
        self.entries.insert(
            svc.name.clone(),
            K8sEntry {
                applied: true,
                scaled_up: false,
                ready_at: SimTime::MAX,
                pod_addr: None,
            },
        );
        Ok(done)
    }

    fn scale_up(
        &mut self,
        svc: &EdgeService,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<(SimTime, SimTime), DeployError> {
        let entry = self
            .entries
            .get(&svc.name)
            .unwrap_or_else(|| panic!("scale_up before create for {}", svc.name));
        assert!(entry.applied && !entry.scaled_up, "bad phase order");
        // `kubectl scale` returns as soon as the API server acknowledges;
        // the whole reconciliation happens afterwards.
        let acked = self.cluster.scale(&svc.name, 1, now, rng);
        let events = self.cluster.settle(rng);
        let ready = events.iter().find_map(|e| match e {
            ClusterEvent::PodReady { at, ip, .. } => Some((*at, *ip)),
            _ => None,
        });
        let injected = self.cluster.take_injected_rejections();
        if ready.is_none() && !injected.is_empty() {
            // An *injected* scheduling rejection left a pod stuck Pending.
            // Roll back to zero replicas (the ReplicaSet controller ignores
            // unchanged counts, so a retry must re-create the pod) and
            // surface the failure.
            let rejected_at = events
                .iter()
                .filter_map(|e| match e {
                    ClusterEvent::PodUnschedulable { at, .. } => Some(*at),
                    _ => None,
                })
                .max()
                .unwrap_or(acked);
            let t = self.cluster.scale(&svc.name, 0, rejected_at, rng);
            let cleanup = self.cluster.settle(rng);
            let at = cleanup
                .iter()
                .filter_map(|e| match e {
                    ClusterEvent::PodTerminated { at, .. } => Some(*at),
                    _ => None,
                })
                .max()
                .unwrap_or(t);
            return Err(DeployError {
                at,
                phase: DeployPhase::ScaleUp,
                reason: "scheduler rejected the scale-up".to_owned(),
            });
        }
        let entry = self.entries.get_mut(&svc.name).expect("entry exists");
        entry.scaled_up = true;
        match ready {
            Some((at, ip)) => {
                entry.ready_at = at;
                entry.pod_addr = Some((ip, svc.annotated.target_port));
                Ok((acked, at))
            }
            None => {
                // Genuinely unschedulable (cluster full): stays Starting
                // forever; callers time out.
                entry.ready_at = SimTime::MAX;
                Ok((acked, SimTime::MAX))
            }
        }
    }

    fn scale_down(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> SimTime {
        let Some(entry) = self.entries.get_mut(&svc.name) else {
            return now;
        };
        if !entry.scaled_up {
            return now;
        }
        entry.scaled_up = false;
        entry.ready_at = SimTime::MAX;
        entry.pod_addr = None;
        self.cluster.scale(&svc.name, 0, now, rng);
        let events = self.cluster.settle(rng);
        events
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::PodTerminated { at, .. } => Some(*at),
                _ => None,
            })
            .max()
            .unwrap_or(now)
    }

    fn remove(&mut self, svc: &EdgeService, now: SimTime, rng: &mut SimRng) -> SimTime {
        if self.entries.remove(&svc.name).is_none() {
            return now;
        }
        let t = self.cluster.delete_deployment(&svc.name, now, rng);
        let t = self.cluster.delete_service(&svc.name, t, rng);
        let events = self.cluster.settle(rng);
        events
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::PodTerminated { at, .. } => Some(*at),
                _ => None,
            })
            .max()
            .unwrap_or(t)
    }

    fn instance_addr(&self, svc: &EdgeService) -> Option<InstanceAddr> {
        let entry = self.entries.get(&svc.name)?;
        let (ip, port) = entry.pod_addr?;
        Some(InstanceAddr {
            mac: self.host_mac,
            ip: Ipv4Addr(ip),
            port,
        })
    }

    fn load(&self) -> usize {
        self.entries.values().filter(|e| e.scaled_up).count()
    }

    fn telemetry_stats(&self) -> Vec<(&'static str, f64)> {
        let ops = self.cluster.ops;
        let mut stats = vec![
            ("ops_applies", ops.applies as f64),
            ("ops_scales", ops.scales as f64),
            ("ops_deletes", ops.deletes as f64),
        ];
        if let Some(rate) = self.cluster.node().store().cache().hit_rate() {
            stats.push(("layer_cache_hit_rate", rate));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_deployment;
    use netsim::ServiceAddr;

    fn make_service(key: &str, port: u16) -> EdgeService {
        let profile = containerd::ServiceSet::by_key(key).unwrap();
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), port);
        let containers: String = profile
            .manifests
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let ports = if i == 0 {
                    format!("\n          ports:\n            - containerPort: {}", profile.listen_port)
                } else {
                    String::new()
                };
                format!("        - name: c{i}\n          image: {}{}\n", m.reference, ports)
            })
            .collect();
        let yaml = format!("spec:\n  template:\n    spec:\n      containers:\n{containers}");
        let annotated = annotate_deployment(&yaml, addr, None).unwrap();
        EdgeService {
            addr,
            name: annotated.service_name.clone(),
            annotated,
            profile,
        }
    }

    fn docker_cluster() -> DockerCluster {
        DockerCluster::new(
            "edge-docker",
            DockerEngine::with_defaults(),
            MacAddr::from_id(100),
            Ipv4Addr::new(10, 0, 0, 10),
            Duration::from_micros(150),
        )
    }

    fn k8s_cluster() -> K8sEdgeCluster {
        K8sEdgeCluster::new(
            "edge-k8s",
            K8sCluster::with_defaults(),
            MacAddr::from_id(100),
            Duration::from_micros(150),
            None,
        )
    }

    #[test]
    fn docker_full_phase_cycle() {
        let mut rng = SimRng::new(1);
        let mut c = docker_cluster();
        let svc = make_service("nginx", 80);
        assert!(!c.has_image_cached(&svc));
        assert_eq!(c.state(&svc, SimTime::ZERO), InstanceState::NotDeployed);

        let t = c.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        assert!(t > SimTime::ZERO);
        assert!(c.has_image_cached(&svc));

        let t2 = c.create(&svc, t, &mut rng).unwrap();
        assert!(t2 > t);
        assert_eq!(c.state(&svc, t2), InstanceState::Created);

        let (_, ready) = c.scale_up(&svc, t2, &mut rng).unwrap();
        // Cached-image Docker scale-up: sub-second (the headline number).
        assert!(ready - t2 < Duration::from_secs(1), "took {}", ready - t2);
        assert!(matches!(c.state(&svc, t2), InstanceState::Starting { .. }));
        let state = c.state(&svc, ready);
        let InstanceState::Ready(addr) = state else {
            panic!("not ready: {state:?}");
        };
        assert_eq!(addr.ip, Ipv4Addr::new(10, 0, 0, 10));
        assert_eq!(addr.port, 31000);
        assert_eq!(c.load(), 1);

        let t3 = c.scale_down(&svc, ready + Duration::from_secs(60), &mut rng);
        assert!(!c.state(&svc, t3 + Duration::from_secs(1)).is_ready());
        assert_eq!(c.load(), 0);
        let t4 = c.remove(&svc, t3, &mut rng);
        assert_eq!(c.state(&svc, t4), InstanceState::NotDeployed);
    }

    #[test]
    fn k8s_full_phase_cycle_is_slower() {
        let mut rng = SimRng::new(2);
        let mut c = k8s_cluster();
        let svc = make_service("nginx", 80);
        let t = c.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        let t2 = c.create(&svc, t, &mut rng).unwrap();
        assert_eq!(c.state(&svc, t2), InstanceState::Created);

        let (_, ready) = c.scale_up(&svc, t2, &mut rng).unwrap();
        let elapsed = ready - t2;
        // The K8s orchestration gap: around 3 s vs Docker's sub-second.
        assert!(
            elapsed > Duration::from_millis(1800) && elapsed < Duration::from_millis(4500),
            "took {elapsed}"
        );
        let InstanceState::Ready(addr) = c.state(&svc, ready) else {
            panic!("not ready");
        };
        assert_eq!(addr.ip.octets()[0], 10, "pod IP");
        assert_eq!(addr.port, 80);
        assert_eq!(c.load(), 1);

        let down = c.scale_down(&svc, ready + Duration::from_secs(60), &mut rng);
        assert!(down > ready);
        assert!(!c.state(&svc, down + Duration::from_secs(5)).is_ready());
        c.remove(&svc, down, &mut rng);
        assert_eq!(c.state(&svc, down), InstanceState::NotDeployed);
    }

    #[test]
    fn docker_beats_k8s_on_scale_up_same_seed() {
        let svc = make_service("nginx", 80);
        let mut rng = SimRng::new(3);
        let mut d = docker_cluster();
        let t = d.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        let t = d.create(&svc, t, &mut rng).unwrap();
        let d_ready = d.scale_up(&svc, t, &mut rng).unwrap().1 - t;

        let mut rng = SimRng::new(3);
        let mut k = k8s_cluster();
        let t = k.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        let t = k.create(&svc, t, &mut rng).unwrap();
        let k_ready = k.scale_up(&svc, t, &mut rng).unwrap().1 - t;

        assert!(k_ready > d_ready * 2, "docker {d_ready} vs k8s {k_ready}");
    }

    #[test]
    fn two_container_service_on_both_clusters() {
        let svc = make_service("nginx-py", 80);
        assert_eq!(svc.annotated.containers.len(), 2);
        let mut rng = SimRng::new(4);

        let mut d = docker_cluster();
        let t = d.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        let t = d.create(&svc, t, &mut rng).unwrap();
        let (_, ready) = d.scale_up(&svc, t, &mut rng).unwrap();
        assert!(d.state(&svc, ready).is_ready());
        assert_eq!(d.engine_mut().container_count(), 2);

        let mut k = k8s_cluster();
        let t = k.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        let t = k.create(&svc, t, &mut rng).unwrap();
        let (_, ready) = k.scale_up(&svc, t, &mut rng).unwrap();
        assert!(k.state(&svc, ready).is_ready());
    }

    #[test]
    #[should_panic(expected = "scale_up before create")]
    fn phase_order_enforced_docker() {
        let mut rng = SimRng::new(5);
        let mut c = docker_cluster();
        let svc = make_service("asm", 80);
        let _ = c.scale_up(&svc, SimTime::ZERO, &mut rng);
    }

    #[test]
    fn resnet_takes_longer_to_become_ready() {
        let mut rng = SimRng::new(6);
        let mut c = docker_cluster();
        let svc = make_service("resnet", 8501);
        let t = c.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        let t = c.create(&svc, t, &mut rng).unwrap();
        let (_, ready) = c.scale_up(&svc, t, &mut rng).unwrap();
        assert!(
            ready - t > Duration::from_millis(1500),
            "resnet ready in {}",
            ready - t
        );
    }

    #[test]
    fn distinct_services_get_distinct_docker_host_ports() {
        let mut rng = SimRng::new(7);
        let mut c = docker_cluster();
        let a = make_service("asm", 80);
        let b = make_service("nginx", 81);
        let t = c.pull(&a, SimTime::ZERO, &mut rng).unwrap();
        let t = c.pull(&b, t, &mut rng).unwrap();
        let t = c.create(&a, t, &mut rng).unwrap();
        let t = c.create(&b, t, &mut rng).unwrap();
        let pa = c.instance_addr(&a).unwrap().port;
        let pb = c.instance_addr(&b).unwrap().port;
        assert_ne!(pa, pb);
        let _ = t;
    }

    #[test]
    fn docker_create_fault_rolls_back_and_is_retryable() {
        use desim::FaultPlan;
        let mut rng = SimRng::new(8);
        let mut c = docker_cluster();
        let svc = make_service("nginx-py", 80); // two containers
        let t = c.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        c.engine_mut().node_mut().set_faults(
            FaultPlan {
                create_failure: 0.5,
                seed: 40,
                ..FaultPlan::default()
            }
            .injector(0x31),
        );
        // Keep creating until a fault hits, then verify clean rollback.
        let mut t = t;
        let err = loop {
            match c.create(&svc, t, &mut rng) {
                Err(e) => break e,
                Ok(done) => {
                    t = c.scale_down(&svc, done, &mut rng);
                    t = c.remove(&svc, t, &mut rng);
                }
            }
        };
        assert_eq!(err.phase, DeployPhase::Create);
        assert!(err.at >= t);
        assert_eq!(c.state(&svc, err.at), InstanceState::NotDeployed);
        assert_eq!(c.engine_mut().container_count(), 0, "partial create rolled back");
        // Retry without faults succeeds from the failure instant.
        c.engine_mut().node_mut().set_faults(FaultPlan::default().injector(0x32));
        let done = c.create(&svc, err.at, &mut rng).unwrap();
        let (_, ready) = c.scale_up(&svc, done, &mut rng).unwrap();
        assert!(c.state(&svc, ready).is_ready());
    }

    #[test]
    fn docker_start_fault_leaves_service_created_for_retry() {
        use desim::FaultPlan;
        let mut rng = SimRng::new(9);
        let mut c = docker_cluster();
        let svc = make_service("nginx-py", 80);
        let t = c.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        let t = c.create(&svc, t, &mut rng).unwrap();
        c.engine_mut().node_mut().set_faults(
            FaultPlan {
                start_failure: 1.0,
                ..FaultPlan::default()
            }
            .injector(0x33),
        );
        let err = c.scale_up(&svc, t, &mut rng).unwrap_err();
        assert_eq!(err.phase, DeployPhase::ScaleUp);
        assert_eq!(c.state(&svc, err.at), InstanceState::Created);
        assert_eq!(c.load(), 0);
        c.engine_mut().node_mut().set_faults(FaultPlan::default().injector(0x34));
        let (_, ready) = c.scale_up(&svc, err.at, &mut rng).unwrap();
        assert!(c.state(&svc, ready).is_ready());
    }

    #[test]
    fn fail_instance_drops_to_created_and_is_redeployable() {
        let mut rng = SimRng::new(11);
        for (label, mut c) in [
            ("docker", Box::new(docker_cluster()) as Box<dyn EdgeCluster>),
            ("k8s", Box::new(k8s_cluster())),
        ] {
            let svc = make_service("nginx", 80);
            assert!(
                !c.fail_instance(&svc, SimTime::ZERO, &mut rng),
                "{label}: nothing running to crash"
            );
            let t = c.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
            let t = c.create(&svc, t, &mut rng).unwrap();
            assert!(!c.fail_instance(&svc, t, &mut rng), "{label}: Created is not running");
            let (_, ready) = c.scale_up(&svc, t, &mut rng).unwrap();
            assert!(c.fail_instance(&svc, ready, &mut rng), "{label}: crashed a Ready instance");
            assert_eq!(
                c.state(&svc, ready + Duration::from_secs(5)),
                InstanceState::Created,
                "{label}: crash leaves the service Created for redeploy"
            );
            assert_eq!(c.load(), 0, "{label}");
            // The normal Scale Up path recovers the instance.
            let (_, again) = c.scale_up(&svc, ready + Duration::from_secs(5), &mut rng).unwrap();
            assert!(c.state(&svc, again).is_ready(), "{label}: redeployed");
        }
    }

    #[test]
    fn k8s_injected_rejection_rolls_back_and_is_retryable() {
        use desim::FaultPlan;
        let mut rng = SimRng::new(10);
        let mut c = k8s_cluster();
        let svc = make_service("nginx", 80);
        let t = c.pull(&svc, SimTime::ZERO, &mut rng).unwrap();
        let t = c.create(&svc, t, &mut rng).unwrap();
        c.cluster_mut().set_faults(
            FaultPlan {
                scale_up_rejection: 1.0,
                ..FaultPlan::default()
            }
            .injector(0x35),
        );
        let err = c.scale_up(&svc, t, &mut rng).unwrap_err();
        assert_eq!(err.phase, DeployPhase::ScaleUp);
        assert_eq!(c.state(&svc, err.at), InstanceState::Created, "rolled back to Created");
        // Retry after the fault clears redeploys the pod from scratch.
        c.cluster_mut().set_faults(FaultPlan::default().injector(0x36));
        let (_, ready) = c.scale_up(&svc, err.at, &mut rng).unwrap();
        assert!(ready < SimTime::MAX);
        assert!(c.state(&svc, ready).is_ready());
    }
}
