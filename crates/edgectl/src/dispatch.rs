//! The Dispatcher (Fig. 7): gathers instances, consults the Global
//! Scheduler, and drives the deployment phases.
//!
//! For every table-miss request to a registered service:
//!
//! 1. the FlowMemory is checked — a memorized flow short-circuits everything;
//! 2. otherwise the Dispatcher gathers existing/running instances across all
//!    clusters and passes them to the Global Scheduler;
//! 3. the scheduler's **BEST** choice (if different from FAST) is deployed in
//!    the background (*without waiting*, Fig. 3);
//! 4. the **FAST** choice serves the current request: immediately if ready,
//!    after on-demand deployment *with waiting* (Fig. 5) otherwise, or the
//!    request is forwarded toward the cloud when FAST is empty.
//!
//! Readiness is discovered by port polling: after triggering Scale Up the
//! controller repeatedly probes the service port and only installs the
//! redirect flows once the port answers (Section VI).

use crate::autoscale::{Admission, AutoscaleConfig, LoadTracker};
use crate::cluster::{DeployError, EdgeCluster, InstanceAddr, InstanceState};
use crate::flowmemory::{FlowKey, FlowMemory, IngressId};
use crate::health::{HealthConfig, HealthMonitor};
use crate::scheduler::{
    ClusterView, GlobalScheduler, RequestClass, SchedulingContext, ServiceRef, Target,
};
use crate::service::EdgeService;
use desim::{Duration, RetryPolicy, SimRng, SimTime};
use netsim::addr::Ipv4Addr;
use netsim::ServiceAddr;
use std::collections::HashMap;
use telemetry::{SpanId, Telemetry};

/// Timing breakdown of one dispatch, for the evaluation harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Pull phase completion (if a pull ran).
    pub pull_done: Option<SimTime>,
    /// Create phase completion (if a create ran).
    pub create_done: Option<SimTime>,
    /// Scale-up issued at.
    pub scale_up_at: Option<SimTime>,
    /// Scale-up API call returned (Docker: `docker start` done; K8s: scale
    /// acknowledged). Port polling begins here.
    pub scale_up_done: Option<SimTime>,
    /// Instance actually ready (app accepting connections).
    pub instance_ready: Option<SimTime>,
    /// First successful port probe (flows can be installed from here).
    pub port_confirmed: Option<SimTime>,
    /// Pull attempts beyond the first (fault recovery).
    pub pull_retries: u32,
    /// Create attempts beyond the first.
    pub create_retries: u32,
    /// Scale-up attempts beyond the first.
    pub scale_up_retries: u32,
    /// When the dispatcher exhausted retries/deadline and released the
    /// request toward the cloud (`None` on success).
    pub gave_up_at: Option<SimTime>,
}

impl PhaseTimes {
    /// The readiness wait the controller observed: from the scale-up command
    /// *returning* until the port probe succeeded (the quantity of
    /// Figs. 14/15 — "our SDN controller continuously tests whether the
    /// respective port is open").
    pub fn wait_time(&self) -> Option<Duration> {
        Some(self.port_confirmed?.saturating_since(self.scale_up_done?))
    }

    /// Total retry count across all phases.
    pub fn total_retries(&self) -> u32 {
        self.pull_retries + self.create_retries + self.scale_up_retries
    }

    /// Renders the phase breakdown as a compact arrow chain, e.g.
    /// `pull 1.9s -> create 102ms -> wait 312ms`, with every duration going
    /// through [`desim::fmt_duration`] — the same formatting the deploy
    /// errors and the testbed reports use. `start` is the instant the first
    /// phase ran from (the dispatch instant); phases that did not run are
    /// omitted.
    pub fn describe(&self, start: SimTime) -> String {
        let mut parts = Vec::new();
        let mut prev = start;
        if let Some(done) = self.pull_done {
            parts.push(format!("pull {}", desim::fmt_duration(done.saturating_since(prev))));
            prev = done;
        }
        if let Some(done) = self.create_done {
            parts.push(format!("create {}", desim::fmt_duration(done.saturating_since(prev))));
        }
        if let (Some(at), Some(done)) = (self.scale_up_at, self.scale_up_done) {
            parts.push(format!("scale-up {}", desim::fmt_duration(done.saturating_since(at))));
        }
        if let Some(w) = self.wait_time() {
            parts.push(format!("wait {}", desim::fmt_duration(w)));
        }
        if let Some(g) = self.gave_up_at {
            parts.push(format!("gave up after {}", desim::fmt_duration(g.saturating_since(start))));
        }
        if parts.is_empty() {
            "no deployment".to_owned()
        } else {
            parts.join(" -> ")
        }
    }
}

/// The outcome of dispatching one request.
#[derive(Clone, Debug)]
pub enum DispatchDecision {
    /// Redirect immediately (instance ready or flow memorized).
    Redirect {
        /// Target instance.
        instance: InstanceAddr,
        /// Cluster index.
        cluster: usize,
    },
    /// On-demand deployment **with waiting**: hold the request, redirect at
    /// `ready_at`.
    WaitThenRedirect {
        /// Target instance.
        instance: InstanceAddr,
        /// Cluster index.
        cluster: usize,
        /// When the redirect can be installed (first successful port probe).
        ready_at: SimTime,
    },
    /// Forward the request toward the cloud.
    ForwardToCloud,
    /// Graceful degradation: a with-waiting deployment exhausted its retries
    /// or deadline, so the held request is released toward the cloud at
    /// `released_at` (the instant the last attempt failed).
    FallbackCloud {
        /// When the dispatcher gave up and released the request.
        released_at: SimTime,
    },
}

/// A background (BEST-choice) deployment triggered alongside the decision.
#[derive(Clone, Copy, Debug)]
pub struct BackgroundDeployment {
    /// Cluster index being deployed to.
    pub cluster: usize,
    /// When that instance will be ready.
    pub ready_at: SimTime,
}

/// Full dispatch result.
#[derive(Clone, Debug)]
pub struct DispatchOutcome {
    /// What happens to the current request.
    pub decision: DispatchDecision,
    /// Parallel deployment for future requests, if any.
    pub background: Option<BackgroundDeployment>,
    /// Phase timing of the foreground deployment (when one ran).
    pub phases: PhaseTimes,
    /// Whether the FlowMemory answered (no scheduling happened).
    pub from_memory: bool,
}

/// How [`Dispatcher::ensure_ready`] concluded.
enum EnsureOutcome {
    /// Instance ready; flows installable from the contained instant.
    Ready(SimTime),
    /// Genuinely unschedulable (cluster full): callers time out / go to
    /// cloud, exactly as before fault injection existed.
    Unschedulable,
    /// Retries/deadline exhausted at the contained instant; the request is
    /// released toward the cloud.
    GaveUp(SimTime),
}

/// A deployment that exhausted its retries, kept so concurrent requests for
/// the same (service, cluster) coalesce onto the failure instead of driving
/// duplicate phase attempts (successes need no such cache: a second request
/// during scale-up already coalesces via [`InstanceState::Starting`]).
#[derive(Clone, Copy)]
struct FailedDeploy {
    gave_up_at: SimTime,
    phases: PhaseTimes,
}

/// The Dispatcher component.
pub struct Dispatcher {
    scheduler: Box<dyn GlobalScheduler>,
    /// Port-probe interval for readiness polling.
    poll_interval: Duration,
    /// Per-phase retry/backoff/deadline policy.
    retry: RetryPolicy,
    /// Single-flight failure cache: deployments that gave up, by
    /// (service, cluster), until their give-up instant passes.
    in_flight: HashMap<(ServiceAddr, usize), FailedDeploy>,
    /// Requests that coalesced onto an in-flight failure.
    coalesced: u64,
    /// Per-cluster circuit breakers + outage windows: clusters the monitor
    /// reports unavailable are never offered to the Global Scheduler.
    health: HealthMonitor,
    /// Per-instance queue tracking and the horizontal autoscaler state.
    /// Disabled by default: the dispatch path never consults it then.
    tracker: LoadTracker,
}

impl Dispatcher {
    /// Creates a dispatcher with the given Global Scheduler and port-poll
    /// interval, using the default [`RetryPolicy`].
    pub fn new(scheduler: Box<dyn GlobalScheduler>, poll_interval: Duration) -> Dispatcher {
        assert!(!poll_interval.is_zero(), "poll interval must be positive");
        Dispatcher {
            scheduler,
            poll_interval,
            retry: RetryPolicy::default(),
            in_flight: HashMap::new(),
            coalesced: 0,
            health: HealthMonitor::new(HealthConfig::default()),
            tracker: LoadTracker::default(),
        }
    }

    /// The active scheduler's name.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Swaps the Global Scheduler (the controller's dynamic configuration).
    pub fn set_scheduler(&mut self, scheduler: Box<dyn GlobalScheduler>) {
        self.scheduler = scheduler;
    }

    /// Replaces the retry/backoff/deadline policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// How many requests coalesced onto an already-failed deployment
    /// instead of re-driving the phases (single-flight hits).
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced
    }

    /// The runtime health monitor (breakers + outages).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Mutable access for the controller's repair loop: declare outages,
    /// report detected runtime crashes.
    pub fn health_mut(&mut self) -> &mut HealthMonitor {
        &mut self.health
    }

    /// Replaces the autoscale/queueing configuration (controller
    /// construction time).
    pub fn set_autoscale(&mut self, cfg: AutoscaleConfig) {
        self.tracker.set_config(cfg);
    }

    /// The per-instance load tracker (queue state, replica pools).
    pub fn load(&self) -> &LoadTracker {
        &self.tracker
    }

    /// Mutable tracker access for the controller's autoscaler sweep and
    /// pool cleanup on scale-down/repair.
    pub fn load_mut(&mut self) -> &mut LoadTracker {
        &mut self.tracker
    }

    /// Clears the state a controller crash would lose: the single-flight
    /// failure cache (its give-up instants refer to deployments the dead
    /// controller was tracking). Replica pools and the health monitor are
    /// restored separately — pools re-anchor lazily on the next dispatch,
    /// and breakers come back from the journal.
    pub fn reset_volatile(&mut self) {
        self.in_flight.clear();
    }

    /// Dispatches one request from `client_ip` to `svc` (Fig. 7), without
    /// tracing — a convenience wrapper over [`Dispatcher::dispatch`] for
    /// callers that drive the dispatcher directly (tests, examples).
    pub fn dispatch_untraced(
        &mut self,
        svc: &EdgeService,
        client_ip: Ipv4Addr,
        now: SimTime,
        clusters: &mut [Box<dyn EdgeCluster>],
        memory: &mut FlowMemory,
        rng: &mut SimRng,
    ) -> DispatchOutcome {
        let mut tele = Telemetry::disabled();
        self.dispatch(
            svc,
            client_ip,
            now,
            clusters,
            memory,
            rng,
            &mut tele,
            0,
            SpanId::NONE,
        )
    }

    /// Dispatches one request from `client_ip` to `svc` (Fig. 7) arriving at
    /// the legacy default ingress.
    ///
    /// `tele` is the controller's telemetry endpoint; `request`/`parent`
    /// identify the request's root span so the dispatch's child spans
    /// (schedule, deploy phases, port poll) hang off the right node. With a
    /// disabled endpoint every telemetry call is a never-taken branch and
    /// the dispatch is bit-identical to an untraced one.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch(
        &mut self,
        svc: &EdgeService,
        client_ip: Ipv4Addr,
        now: SimTime,
        clusters: &mut [Box<dyn EdgeCluster>],
        memory: &mut FlowMemory,
        rng: &mut SimRng,
        tele: &mut Telemetry,
        request: u64,
        parent: SpanId,
    ) -> DispatchOutcome {
        self.dispatch_at(
            svc,
            client_ip,
            IngressId::DEFAULT,
            None,
            RequestClass::NewFlow,
            now,
            clusters,
            memory,
            rng,
            tele,
            request,
            parent,
        )
    }

    /// Dispatches one request arriving at a specific `ingress` (gNB).
    ///
    /// `distances` optionally overrides each cluster's advertised latency
    /// with the latency *as seen from this ingress* — in a multi-gNB
    /// topology "nearest edge" depends on which cell the packet entered at.
    /// `base_class` is what the scheduler is told when no memorized flow
    /// intervenes: [`RequestClass::NewFlow`] for ordinary table misses
    /// (which may escalate to `Rescheduled` if a memorized instance
    /// vanished), or [`RequestClass::Handover`] when the controller
    /// re-places a session after an attachment change.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch_at(
        &mut self,
        svc: &EdgeService,
        client_ip: Ipv4Addr,
        ingress: IngressId,
        distances: Option<&[Duration]>,
        base_class: RequestClass,
        now: SimTime,
        clusters: &mut [Box<dyn EdgeCluster>],
        memory: &mut FlowMemory,
        rng: &mut SimRng,
        tele: &mut Telemetry,
        request: u64,
        parent: SpanId,
    ) -> DispatchOutcome {
        let key = FlowKey {
            ingress,
            client_ip,
            service: svc.addr,
        };

        // 1. Memorized flow? Verify the instance still serves.
        let mut class = base_class;
        if let Some(flow) = memory.lookup(key, now) {
            if flow.cluster < clusters.len()
                && clusters[flow.cluster].state(svc, now).is_ready()
            {
                let cluster = flow.cluster;
                if !self.tracker.enabled() {
                    tele.event(parent, "memory-hit", now, || {
                        format!("memorized redirect to cluster {cluster}")
                    });
                    return DispatchOutcome {
                        decision: DispatchDecision::Redirect {
                            instance: flow.instance,
                            cluster: flow.cluster,
                        },
                        background: None,
                        phases: PhaseTimes::default(),
                        from_memory: true,
                    };
                }
                // Instance-granular path: the memorized address must map
                // back to a live replica, and the request must win a queue
                // slot on it. A full queue bounces this request to the
                // cloud but keeps the flow memorized — the replica is
                // overloaded, not gone.
                if let Some((outcome, instance, idx)) = self
                    .tracker
                    .index_of(svc.addr, cluster, flow.instance)
                    .and_then(|idx| {
                        // The pool can vanish between `index_of` and here
                        // (e.g. state rebuilt after a controller restart);
                        // a miss falls through to the stale path below
                        // instead of panicking mid-dispatch.
                        self.tracker
                            .admit(svc.addr, cluster, idx, now)
                            .map(|(o, a)| (o, a, idx))
                    })
                {
                    tele.event(parent, "memory-hit", now, || {
                        format!("memorized redirect to cluster {cluster} replica {idx}")
                    });
                    let decision = match outcome {
                        Admission::Rejected => DispatchDecision::ForwardToCloud,
                        Admission::Served { start, .. } if start > now => {
                            DispatchDecision::WaitThenRedirect {
                                instance,
                                cluster,
                                ready_at: start,
                            }
                        }
                        Admission::Served { .. } => {
                            DispatchDecision::Redirect { instance, cluster }
                        }
                    };
                    return DispatchOutcome {
                        decision,
                        background: None,
                        phases: PhaseTimes::default(),
                        from_memory: true,
                    };
                }
                // The memorized replica scaled away: fall through to the
                // stale path and reschedule.
            }
            // Instance vanished (scaled down elsewhere): forget and
            // reschedule. A handover stays a handover — the scheduler still
            // needs to know the session is mid-migration.
            memory.forget_service(svc.addr);
            if class == RequestClass::NewFlow {
                class = RequestClass::Rescheduled;
            }
            tele.event(parent, "memory-stale", now, || {
                "memorized instance vanished; rescheduling".to_owned()
            });
        }

        // 2. Gather views and consult the Global Scheduler. Clusters the
        // health monitor reports unavailable — breaker Open, or inside a
        // declared zone-outage window — are withheld from the candidate
        // list entirely, so no scheduler implementation can pick a flapping
        // zone. `candidates` maps view indices back to cluster indices.
        let health = &mut self.health;
        let tracker = &mut self.tracker;
        let mut candidates: Vec<usize> = Vec::with_capacity(clusters.len());
        let mut views: Vec<ClusterView> = Vec::with_capacity(clusters.len());
        for (i, c) in clusters.iter().enumerate() {
            if !health.available(i, now) {
                let state = health.breaker_state(i);
                tele.event(parent, "cluster-blocked", now, || {
                    format!(
                        "cluster {} withheld from scheduling (breaker {}{})",
                        c.name(),
                        state.label(),
                        if health.in_outage(i, now) { ", zone outage" } else { "" },
                    )
                });
                continue;
            }
            let state = c.state(svc, now);
            // With instance tracking on, a ready cluster exposes its
            // replica queues so load-aware schedulers can split traffic.
            let instances = match state {
                InstanceState::Ready(base) if tracker.enabled() => {
                    tracker.ensure_pool(svc.addr, i, base, now);
                    tracker.views(svc.addr, i, now)
                }
                _ => Vec::new(),
            };
            candidates.push(i);
            views.push(ClusterView {
                name: c.name().to_owned(),
                kind: c.kind(),
                distance: distances
                    .and_then(|d| d.get(i).copied())
                    .unwrap_or_else(|| c.latency()),
                image_cached: c.has_image_cached(svc),
                state,
                load: c.load(),
                breaker: health.breaker_state(i),
                instances,
            });
        }
        let ctx = SchedulingContext {
            clusters: &views,
            service: ServiceRef {
                addr: svc.addr,
                name: &svc.name,
            },
            now,
            class,
        };
        let sched_span = tele.span(request, parent, "schedule", now);
        let choice = self.scheduler.choose(&ctx);
        let sched_name = self.scheduler.name();
        tele.event(sched_span, "decision", now, || {
            format!(
                "{} ({}): fast={} best={}",
                sched_name,
                class.label(),
                choice.fast.map_or("cloud".to_owned(), |t| views[t.cluster].name.clone()),
                choice.best.map_or("-".to_owned(), |t| views[t.cluster].name.clone()),
            )
        });
        tele.end_span(sched_span, now);
        // The scheduler chose among the *available* candidates; translate
        // its view indices back to controller cluster indices (replica
        // indices pass through unchanged).
        let choice = crate::scheduler::Choice {
            fast: choice.fast.map(|t| Target { cluster: candidates[t.cluster], ..t }),
            best: choice.best.map(|t| Target { cluster: candidates[t.cluster], ..t }),
        };

        // 3. BEST in another cluster than FAST: deploy it in the background
        // (without waiting). Deployment is cluster-granular — a different
        // replica of the same cluster is a balancing decision, not one that
        // spawns a deployment.
        let background = match choice.best {
            Some(b) if choice.is_without_waiting() => {
                let mut phases = PhaseTimes::default();
                let bg_span = tele.span(request, parent, "background-deploy", now);
                let outcome = self.ensure_ready(
                    svc, b.cluster, now, clusters, &mut phases, rng, tele, request, bg_span,
                );
                match outcome {
                    EnsureOutcome::Ready(ready_at) => {
                        tele.end_span(bg_span, ready_at);
                        Some(BackgroundDeployment {
                            cluster: b.cluster,
                            ready_at,
                        })
                    }
                    EnsureOutcome::Unschedulable => {
                        tele.end_span(bg_span, now);
                        Some(BackgroundDeployment {
                            cluster: b.cluster,
                            ready_at: SimTime::MAX,
                        })
                    }
                    // A failed background deployment leaves nothing for
                    // future requests; nothing to advertise.
                    EnsureOutcome::GaveUp(at) => {
                        tele.end_span(bg_span, at);
                        None
                    }
                }
            }
            _ => None,
        };

        // 4. FAST serves the current request.
        let Some(f) = choice.fast else {
            return DispatchOutcome {
                decision: DispatchDecision::ForwardToCloud,
                background,
                phases: PhaseTimes::default(),
                from_memory: false,
            };
        };

        if let InstanceState::Ready(base) = clusters[f.cluster].state(svc, now) {
            if self.tracker.enabled() {
                // Admit into the chosen replica's queue: the queue wait (if
                // any) surfaces as a WaitThenRedirect, a full queue bounces
                // to the cloud — overload is observable in answer delay.
                self.tracker.ensure_pool(svc.addr, f.cluster, base, now);
                let Some((outcome, instance)) =
                    self.tracker.admit(svc.addr, f.cluster, f.instance, now)
                else {
                    // The pool the scheduler saw is gone (it can only have
                    // been torn down between the view and this admit, e.g.
                    // by a concurrent repair): degrade to the cloud rather
                    // than panic on a hot-path invariant.
                    return DispatchOutcome {
                        decision: DispatchDecision::ForwardToCloud,
                        background,
                        phases: PhaseTimes::default(),
                        from_memory: false,
                    };
                };
                let decision = match outcome {
                    Admission::Rejected => {
                        let cluster = f.cluster;
                        tele.event(parent, "queue-reject", now, || {
                            format!("replica queue full on cluster {cluster}; to cloud")
                        });
                        DispatchDecision::ForwardToCloud
                    }
                    Admission::Served { start, .. } if start > now => {
                        memory.memorize(key, instance, f.cluster, now);
                        DispatchDecision::WaitThenRedirect {
                            instance,
                            cluster: f.cluster,
                            ready_at: start,
                        }
                    }
                    Admission::Served { .. } => {
                        memory.memorize(key, instance, f.cluster, now);
                        DispatchDecision::Redirect { instance, cluster: f.cluster }
                    }
                };
                return DispatchOutcome {
                    decision,
                    background,
                    phases: PhaseTimes::default(),
                    from_memory: false,
                };
            }
            memory.memorize(key, base, f.cluster, now);
            return DispatchOutcome {
                decision: DispatchDecision::Redirect {
                    instance: base,
                    cluster: f.cluster,
                },
                background,
                phases: PhaseTimes::default(),
                from_memory: false,
            };
        }

        // On-demand deployment with waiting.
        let mut phases = PhaseTimes::default();
        let deploy_span = tele.span(request, parent, "deploy", now);
        let outcome = self.ensure_ready(
            svc, f.cluster, now, clusters, &mut phases, rng, tele, request, deploy_span,
        );
        let ready_at = match outcome {
            EnsureOutcome::Ready(t) => {
                tele.end_span(deploy_span, t);
                t
            }
            EnsureOutcome::Unschedulable => {
                tele.end_span(deploy_span, now);
                // Deployment cannot complete (e.g. unschedulable): fall back.
                return DispatchOutcome {
                    decision: DispatchDecision::ForwardToCloud,
                    background,
                    phases,
                    from_memory: false,
                };
            }
            EnsureOutcome::GaveUp(released_at) => {
                tele.end_span(deploy_span, released_at);
                // Graceful degradation: release the held request toward the
                // cloud once the last attempt has failed.
                return DispatchOutcome {
                    decision: DispatchDecision::FallbackCloud { released_at },
                    background,
                    phases,
                    from_memory: false,
                };
            }
        };
        let Some(base) = clusters[f.cluster].instance_addr(svc) else {
            // `ensure_ready` said Ready but the instance has no address —
            // the deployment was reaped between the readiness check and
            // here. Treat like any other unschedulable outcome.
            return DispatchOutcome {
                decision: DispatchDecision::ForwardToCloud,
                background,
                phases,
                from_memory: false,
            };
        };
        let (instance, ready_at) = if self.tracker.enabled() {
            // The fresh deployment anchors (or re-anchors, after a
            // redeploy on a new port) the replica pool; the request is
            // admitted the instant the instance is up.
            self.tracker.ensure_pool(svc.addr, f.cluster, base, ready_at);
            match self.tracker.admit(svc.addr, f.cluster, f.instance, ready_at) {
                Some((Admission::Served { start, .. }, addr)) => (addr, start.max(ready_at)),
                // A pre-existing saturated pool (same base survived the
                // redeploy): bounce to the cloud like any full queue.
                Some((Admission::Rejected, _)) | None => {
                    return DispatchOutcome {
                        decision: DispatchDecision::ForwardToCloud,
                        background,
                        phases,
                        from_memory: false,
                    };
                }
            }
        } else {
            (base, ready_at)
        };
        memory.memorize(key, instance, f.cluster, ready_at);
        DispatchOutcome {
            decision: DispatchDecision::WaitThenRedirect {
                instance,
                cluster: f.cluster,
                ready_at,
            },
            background,
            phases,
            from_memory: false,
        }
    }

    /// Drives the missing phases on `cluster` until the instance is ready,
    /// retrying failed phases under the configured [`RetryPolicy`]. Each
    /// phase gets a child span of `span`; retry attempts and injected
    /// faults surface as events on it.
    #[allow(clippy::too_many_arguments)]
    fn ensure_ready(
        &mut self,
        svc: &EdgeService,
        cluster: usize,
        now: SimTime,
        clusters: &mut [Box<dyn EdgeCluster>],
        phases: &mut PhaseTimes,
        rng: &mut SimRng,
        tele: &mut Telemetry,
        request: u64,
        span: SpanId,
    ) -> EnsureOutcome {
        let key = (svc.addr, cluster);
        // Single-flight on *failures*: while a give-up instant lies in the
        // future, concurrent requests coalesce onto it instead of re-driving
        // (and re-failing) the phases.
        if let Some(failed) = self.in_flight.get(&key) {
            if now < failed.gave_up_at {
                self.coalesced += 1;
                *phases = failed.phases;
                let gave_up_at = failed.gave_up_at;
                tele.event(span, "coalesced", now, || {
                    format!("joined in-flight failure; gives up at {gave_up_at}")
                });
                return EnsureOutcome::GaveUp(gave_up_at);
            }
            self.in_flight.remove(&key);
        }
        let policy = self.retry;
        let c = &mut clusters[cluster];
        let mut t = now;
        let ready_at = match c.state(svc, now) {
            InstanceState::Ready(_) => now,
            InstanceState::Starting { ready_at } => {
                tele.event(span, "join-starting", now, || {
                    format!("instance already starting; ready at {ready_at}")
                });
                ready_at
            }
            InstanceState::NotDeployed => {
                if !c.has_image_cached(svc) {
                    let pull_span = tele.span(request, span, "deploy-pull", t);
                    match with_retries(policy, t, &mut phases.pull_retries, rng, tele, pull_span, |t, rng| {
                        c.pull(svc, t, rng)
                    }) {
                        Ok(done) => {
                            t = done;
                            phases.pull_done = Some(t);
                            tele.end_span(pull_span, t);
                        }
                        Err(failed_at) => {
                            tele.end_span(pull_span, failed_at);
                            return self.give_up(key, failed_at, phases);
                        }
                    }
                }
                let create_span = tele.span(request, span, "deploy-create", t);
                match with_retries(policy, t, &mut phases.create_retries, rng, tele, create_span, |t, rng| {
                    c.create(svc, t, rng)
                }) {
                    Ok(done) => {
                        t = done;
                        phases.create_done = Some(t);
                        tele.end_span(create_span, t);
                    }
                    Err(failed_at) => {
                        tele.end_span(create_span, failed_at);
                        return self.give_up(key, failed_at, phases);
                    }
                }
                phases.scale_up_at = Some(t);
                let scale_span = tele.span(request, span, "deploy-scale-up", t);
                match with_retries(policy, t, &mut phases.scale_up_retries, rng, tele, scale_span, |t, rng| {
                    c.scale_up(svc, t, rng)
                }) {
                    Ok((done, ready)) => {
                        phases.scale_up_done = Some(done);
                        tele.end_span(scale_span, done);
                        ready
                    }
                    Err(failed_at) => {
                        tele.end_span(scale_span, failed_at);
                        return self.give_up(key, failed_at, phases);
                    }
                }
            }
            InstanceState::Created => {
                // Images were necessarily pulled before create.
                phases.scale_up_at = Some(t);
                let scale_span = tele.span(request, span, "deploy-scale-up", t);
                match with_retries(policy, t, &mut phases.scale_up_retries, rng, tele, scale_span, |t, rng| {
                    c.scale_up(svc, t, rng)
                }) {
                    Ok((done, ready)) => {
                        phases.scale_up_done = Some(done);
                        tele.end_span(scale_span, done);
                        ready
                    }
                    Err(failed_at) => {
                        tele.end_span(scale_span, failed_at);
                        return self.give_up(key, failed_at, phases);
                    }
                }
            }
        };
        if ready_at == SimTime::MAX {
            tele.event(span, "unschedulable", now, || {
                "cluster cannot schedule the instance".to_owned()
            });
            return EnsureOutcome::Unschedulable;
        }
        phases.instance_ready = Some(ready_at);
        // Port polling: probes run every `poll_interval` from the moment the
        // scale-up command returned (or from `now` when no deployment ran);
        // the first probe at or after readiness confirms.
        let base = phases.scale_up_done.unwrap_or(now).max(now);
        let ready_for_poll = ready_at.max(base);
        let confirmed = next_poll_at(base, ready_for_poll, self.poll_interval);
        phases.port_confirmed = Some(confirmed);
        let poll = self.poll_interval;
        tele.event(span, "port-confirmed", confirmed, || {
            format!(
                "port probe succeeded (instance ready {ready_at}, polled every {})",
                desim::fmt_duration(poll)
            )
        });
        // A confirmed instance is breaker feedback: closes a half-open
        // probe and resets the cluster's failure streak.
        self.health.record_success(cluster);
        EnsureOutcome::Ready(confirmed)
    }

    /// Records an exhausted deployment in the single-flight failure cache
    /// and reports the give-up instant.
    fn give_up(
        &mut self,
        key: (ServiceAddr, usize),
        at: SimTime,
        phases: &mut PhaseTimes,
    ) -> EnsureOutcome {
        phases.gave_up_at = Some(at);
        // Breaker feedback: coalesced joiners don't re-record — one
        // exhausted deployment is one failure.
        self.health.record_failure(key.1, at);
        self.in_flight.insert(
            key,
            FailedDeploy {
                gave_up_at: at,
                phases: *phases,
            },
        );
        EnsureOutcome::GaveUp(at)
    }
}

/// Runs `op` under the retry policy: on failure, waits out an
/// exponential-backoff-with-jitter delay and tries again, until the attempt
/// budget or the phase deadline is exhausted. Returns the last failure
/// instant on give-up. The jitter draw only happens *after* a failure, so a
/// first-try success (the whole zero-fault world) consumes no extra
/// randomness. Every failed attempt surfaces as a `fault` event on `span`
/// (with a `retry` or `gave-up` follow-up), so injected faults are visible
/// in the request's trace.
#[allow(clippy::too_many_arguments)]
fn with_retries<T>(
    policy: RetryPolicy,
    phase_start: SimTime,
    retries: &mut u32,
    rng: &mut SimRng,
    tele: &mut Telemetry,
    span: SpanId,
    mut op: impl FnMut(SimTime, &mut SimRng) -> Result<T, DeployError>,
) -> Result<T, SimTime> {
    let mut t = phase_start;
    let mut attempt: u32 = 0;
    loop {
        match op(t, rng) {
            Ok(v) => return Ok(v),
            Err(e) => {
                let failed_at = e.at.max(t);
                tele.event(span, "fault", failed_at, || e.to_string());
                attempt += 1;
                if attempt >= policy.max_attempts {
                    tele.event(span, "gave-up", failed_at, || {
                        format!("attempt budget exhausted after {attempt} attempts")
                    });
                    return Err(failed_at);
                }
                let next = failed_at + policy.delay(attempt - 1, rng);
                if next > phase_start + policy.phase_deadline {
                    tele.event(span, "gave-up", failed_at, || {
                        format!("phase deadline exceeded after {attempt} attempts")
                    });
                    return Err(failed_at);
                }
                *retries += 1;
                tele.event(span, "retry", next, || {
                    format!("attempt {} backing off until {next}", attempt + 1)
                });
                t = next;
            }
        }
    }
}

/// First poll tick at or after `ready`, with ticks at `base + k*interval`
/// (k ≥ 1; the probe right at scale-up would always fail).
fn next_poll_at(base: SimTime, ready: SimTime, interval: Duration) -> SimTime {
    debug_assert!(ready >= base);
    let gap = ready.saturating_since(base).as_nanos();
    let step = interval.as_nanos().max(1);
    let k = gap.div_ceil(step).max(1);
    base + Duration::from_nanos(k * step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_deployment;
    use crate::cluster::DockerCluster;
    use crate::scheduler::{LatencyAwareScheduler, ProximityScheduler};
    use dockersim::DockerEngine;
    use netsim::addr::MacAddr;
    use netsim::ServiceAddr;

    fn make_service(key: &str) -> EdgeService {
        let profile = containerd::ServiceSet::by_key(key).unwrap();
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        let yaml = format!(
            "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
            profile.manifests[0].reference, profile.listen_port
        );
        let annotated = annotate_deployment(&yaml, addr, None).unwrap();
        EdgeService {
            addr,
            name: annotated.service_name.clone(),
            annotated,
            profile,
        }
    }

    fn docker(name: &str, id: u32, latency_us: u64, cached: bool, rng: &mut SimRng) -> Box<dyn EdgeCluster> {
        let mut engine = DockerEngine::with_defaults();
        if cached {
            engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, rng);
        }
        Box::new(DockerCluster::new(
            name,
            engine,
            MacAddr::from_id(id),
            Ipv4Addr::new(10, 0, id as u8, 1),
            Duration::from_micros(latency_us),
        ))
    }

    fn dispatcher(sched: Box<dyn GlobalScheduler>) -> Dispatcher {
        Dispatcher::new(sched, Duration::from_millis(25))
    }

    fn docker_faulty(
        name: &str,
        id: u32,
        plan: desim::FaultPlan,
        label: u64,
        rng: &mut SimRng,
    ) -> Box<dyn EdgeCluster> {
        let mut engine = DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, rng);
        engine.node_mut().set_faults(plan.injector(label));
        Box::new(DockerCluster::new(
            name,
            engine,
            MacAddr::from_id(id),
            Ipv4Addr::new(10, 0, id as u8, 1),
            Duration::from_micros(100),
        ))
    }

    #[test]
    fn with_waiting_deploys_on_nearest_and_waits() {
        let mut rng = SimRng::new(1);
        let svc = make_service("asm");
        let mut clusters = vec![docker("near", 1, 100, true, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());

        let now = SimTime::from_secs(1);
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), now, &mut clusters, &mut memory, &mut rng);
        assert!(!out.from_memory);
        let DispatchDecision::WaitThenRedirect { ready_at, cluster, .. } = out.decision else {
            panic!("expected with-waiting: {:?}", out.decision);
        };
        assert_eq!(cluster, 0);
        // Cached asm on Docker: waiting stays sub-second ("as low as 0.5 s").
        assert!(ready_at - now < Duration::from_secs(1), "{}", ready_at - now);
        // Phases: no pull (cached), but create + scale-up + port confirm.
        assert!(out.phases.pull_done.is_none());
        assert!(out.phases.create_done.is_some());
        assert!(out.phases.port_confirmed.unwrap() >= out.phases.instance_ready.unwrap());
        // Port probes are discretized to the poll grid (based at the
        // scale-up command's return).
        let base = out.phases.scale_up_done.unwrap();
        let gap = out.phases.port_confirmed.unwrap().saturating_since(base).as_nanos();
        assert_eq!(gap % Duration::from_millis(25).as_nanos(), 0);

        // Second request from the same client: memorized, immediate.
        let later = ready_at + Duration::from_secs(1);
        let out2 = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), later, &mut clusters, &mut memory, &mut rng);
        assert!(out2.from_memory);
        assert!(matches!(out2.decision, DispatchDecision::Redirect { .. }));
    }

    #[test]
    fn without_waiting_serves_from_far_and_deploys_near() {
        let mut rng = SimRng::new(2);
        let svc = make_service("asm");
        // Far cluster already runs the service; near is empty.
        let mut clusters = vec![
            docker("far", 1, 900, true, &mut rng),
            docker("near", 2, 100, true, &mut rng),
        ];
        // Pre-deploy on far.
        let t0 = SimTime::ZERO;
        let t = clusters[0].pull(&svc, t0, &mut rng).unwrap();
        let t = clusters[0].create(&svc, t, &mut rng).unwrap();
        let (_, far_ready) = clusters[0].scale_up(&svc, t, &mut rng).unwrap();

        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<LatencyAwareScheduler>::default());
        let now = far_ready + Duration::from_secs(1);
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), now, &mut clusters, &mut memory, &mut rng);
        // Current request: immediate redirect to the far instance.
        let DispatchDecision::Redirect { cluster, .. } = out.decision else {
            panic!("expected immediate redirect: {:?}", out.decision);
        };
        assert_eq!(cluster, 0);
        // Background: near cluster deploying.
        let bg = out.background.expect("background deployment");
        assert_eq!(bg.cluster, 1);
        assert!(bg.ready_at > now);

        // After the near instance is up, a *new* client is redirected there.
        let later = bg.ready_at + Duration::from_secs(1);
        let out2 = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 21), later, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::Redirect { cluster, .. } = out2.decision else {
            panic!("expected redirect: {:?}", out2.decision);
        };
        assert_eq!(cluster, 1, "future requests go to the optimal edge");
        assert!(out2.background.is_none());
    }

    #[test]
    fn nothing_running_without_waiting_goes_to_cloud() {
        let mut rng = SimRng::new(3);
        let svc = make_service("asm");
        let mut clusters = vec![docker("near", 1, 100, true, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<LatencyAwareScheduler>::default());
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), SimTime::ZERO, &mut clusters, &mut memory, &mut rng);
        assert!(matches!(out.decision, DispatchDecision::ForwardToCloud));
        assert!(out.background.is_some(), "deployment still triggered");
    }

    #[test]
    fn uncached_image_includes_pull_phase() {
        let mut rng = SimRng::new(4);
        let svc = make_service("nginx");
        let mut clusters = vec![docker("near", 1, 100, false, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());
        let now = SimTime::ZERO;
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), now, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::WaitThenRedirect { ready_at, .. } = out.decision else {
            panic!("expected with-waiting");
        };
        assert!(out.phases.pull_done.is_some(), "pull phase ran");
        // Pull pushes the total beyond the cached sub-second band.
        assert!(ready_at - now > Duration::from_secs(2), "{}", ready_at - now);
        let wait = out.phases.wait_time().unwrap();
        assert!(wait < ready_at - now, "wait is a component of the total");
    }

    #[test]
    fn second_client_hits_running_instance_without_memory() {
        let mut rng = SimRng::new(5);
        let svc = make_service("asm");
        let mut clusters = vec![docker("near", 1, 100, true, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), SimTime::ZERO, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::WaitThenRedirect { ready_at, .. } = out.decision else {
            panic!()
        };
        // Different client, after readiness: scheduler runs but redirect is
        // immediate (instance ready), no new deployment.
        let out2 = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 99), ready_at + Duration::from_secs(1), &mut clusters, &mut memory, &mut rng);
        assert!(!out2.from_memory);
        assert!(matches!(out2.decision, DispatchDecision::Redirect { .. }));
        assert!(out2.phases.scale_up_at.is_none(), "no deployment phases ran");
    }

    #[test]
    fn concurrent_requests_coalesce_on_the_starting_instance() {
        // Regression: a second request arriving while the first one's
        // scale-up is still in flight must NOT kick off a duplicate
        // deployment of the same (service, cluster).
        let mut rng = SimRng::new(11);
        let svc = make_service("asm");
        let mut clusters = vec![docker("near", 1, 100, true, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());

        let now = SimTime::from_secs(1);
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), now, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::WaitThenRedirect { ready_at, .. } = out.decision else {
            panic!("expected with-waiting");
        };
        // Second client lands mid-deployment.
        let mid = now + (ready_at - now) / 2;
        let out2 = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 21), mid, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::WaitThenRedirect { ready_at: r2, .. } = out2.decision else {
            panic!("expected with-waiting for the second client: {:?}", out2.decision);
        };
        assert!(out2.phases.scale_up_at.is_none(), "no duplicate deployment phases");
        assert!(r2 + Duration::from_millis(25) >= ready_at, "waits for the same instance");
        // Only one container set exists on the cluster.
        let count = clusters[0]
            .instance_addr(&svc)
            .map(|_| 1)
            .unwrap_or(0);
        assert_eq!(count, 1);
    }

    #[test]
    fn exhausted_deployment_falls_back_to_cloud_and_coalesces() {
        use desim::FaultPlan;
        let mut rng = SimRng::new(12);
        let svc = make_service("asm");
        // Every create fails: the with-waiting deployment exhausts its
        // retries and releases the request toward the cloud.
        let plan = FaultPlan {
            create_failure: 1.0,
            ..FaultPlan::default()
        };
        let mut clusters = vec![docker_faulty("near", 1, plan, 0x41, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());

        let now = SimTime::from_secs(1);
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), now, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::FallbackCloud { released_at } = out.decision else {
            panic!("expected cloud fallback: {:?}", out.decision);
        };
        assert!(released_at > now, "failed attempts cost time");
        assert_eq!(out.phases.create_retries, d.retry_policy().max_attempts - 1);
        assert_eq!(out.phases.gave_up_at, Some(released_at));
        assert!(out.phases.port_confirmed.is_none());

        // A second request before the give-up instant coalesces instead of
        // re-driving (and re-failing) the phases.
        let mid = now + (released_at - now) / 2;
        let out2 = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 21), mid, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::FallbackCloud { released_at: r2 } = out2.decision else {
            panic!("expected coalesced fallback: {:?}", out2.decision);
        };
        assert_eq!(r2, released_at, "coalesced onto the same failure");
        assert_eq!(d.coalesced_count(), 1);
        assert_eq!(out2.phases.create_retries, out.phases.create_retries);

        // After the give-up instant passes, a fresh attempt is made.
        let later = released_at + Duration::from_secs(1);
        let out3 = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 22), later, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::FallbackCloud { released_at: r3 } = out3.decision else {
            panic!("expected a fresh failing attempt: {:?}", out3.decision);
        };
        assert!(r3 > released_at, "new attempt, new give-up instant");
        assert_eq!(d.coalesced_count(), 1, "no coalescing after the window");
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        use desim::FaultPlan;
        // Sweep plan seeds: at a 40% create-failure rate some dispatches
        // recover via retries and some exhaust the budget — both paths must
        // stay panic-free and internally consistent.
        let mut recovered = 0u32;
        let mut fell_back = 0u32;
        for plan_seed in 0..40u64 {
            let mut rng = SimRng::new(13);
            let svc = make_service("asm");
            let plan = FaultPlan {
                create_failure: 0.4,
                seed: plan_seed,
                ..FaultPlan::default()
            };
            let mut clusters = vec![docker_faulty("near", 1, plan, 0x42, &mut rng)];
            let mut memory = FlowMemory::new(Duration::from_secs(30));
            let mut d = dispatcher(Box::<ProximityScheduler>::default());
            let out = d.dispatch_untraced(
                &svc,
                Ipv4Addr::new(192, 168, 1, 20),
                SimTime::from_secs(1),
                &mut clusters,
                &mut memory,
                &mut rng,
            );
            match out.decision {
                DispatchDecision::WaitThenRedirect { .. } => {
                    if out.phases.total_retries() > 0 {
                        recovered += 1;
                    }
                }
                DispatchDecision::FallbackCloud { .. } => fell_back += 1,
                other => panic!("unexpected decision: {other:?}"),
            }
        }
        assert!(recovered > 0, "some runs recover via retries");
        assert!(fell_back > 0, "some runs exhaust the budget");
    }

    #[test]
    fn breaker_opens_after_consecutive_give_ups_and_gates_scheduling() {
        use crate::health::BreakerState;
        use desim::FaultPlan;
        let mut rng = SimRng::new(21);
        let svc = make_service("asm");
        let plan = FaultPlan {
            create_failure: 1.0,
            ..FaultPlan::default()
        };
        let mut clusters = vec![docker_faulty("near", 1, plan, 0x51, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());

        // Three fresh give-ups trip the breaker (default threshold 3). Each
        // request starts after the previous failure's give-up window so none
        // coalesce.
        let mut now = SimTime::from_secs(1);
        for i in 0..3u8 {
            let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20 + i), now, &mut clusters, &mut memory, &mut rng);
            let DispatchDecision::FallbackCloud { released_at } = out.decision else {
                panic!("expected fallback: {:?}", out.decision);
            };
            now = released_at + Duration::from_secs(1);
        }
        assert_eq!(d.health().breaker_state(0), BreakerState::Open);

        // While Open, the only cluster is withheld: straight to cloud with
        // no deployment attempt (no phases, no held request).
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 30), now, &mut clusters, &mut memory, &mut rng);
        assert!(matches!(out.decision, DispatchDecision::ForwardToCloud), "{:?}", out.decision);
        assert!(out.phases.scale_up_at.is_none() && out.phases.gave_up_at.is_none());

        // After the cooldown the half-open probe re-attempts (and, still
        // faulty, re-opens with a fresh cooldown).
        let probe_at = now + d.health().config().breaker_cooldown;
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 31), probe_at, &mut clusters, &mut memory, &mut rng);
        assert!(matches!(out.decision, DispatchDecision::FallbackCloud { .. }), "{:?}", out.decision);
        assert_eq!(d.health().breaker_state(0), BreakerState::Open, "failed probe re-opens");
    }

    #[test]
    fn half_open_probe_success_closes_the_breaker() {
        use crate::health::BreakerState;
        let mut rng = SimRng::new(22);
        let svc = make_service("asm");
        let mut clusters = vec![docker("near", 1, 100, true, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());
        // Trip the breaker by hand (as the controller's crash detector does).
        let t = SimTime::from_secs(1);
        for _ in 0..3 {
            d.health_mut().record_failure(0, t);
        }
        assert_eq!(d.health().breaker_state(0), BreakerState::Open);
        // The healthy cluster's probe succeeds and closes the breaker.
        let probe_at = t + d.health().config().breaker_cooldown;
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), probe_at, &mut clusters, &mut memory, &mut rng);
        assert!(matches!(out.decision, DispatchDecision::WaitThenRedirect { .. }), "{:?}", out.decision);
        assert_eq!(d.health().breaker_state(0), BreakerState::Closed);
    }

    #[test]
    fn outaged_zone_is_withheld_and_restored() {
        let mut rng = SimRng::new(23);
        let svc = make_service("asm");
        let mut clusters = vec![
            docker("zone-a", 1, 100, true, &mut rng),
            docker("zone-b", 2, 500, true, &mut rng),
        ];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());
        let t = SimTime::from_secs(1);
        // Zone A (the nearest) goes dark: dispatch lands on zone B.
        d.health_mut().begin_outage(0, t + Duration::from_secs(30));
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 20), t, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::WaitThenRedirect { cluster, ready_at, .. } = out.decision else {
            panic!("expected deployment on the surviving zone: {:?}", out.decision);
        };
        assert_eq!(cluster, 1, "outaged zone withheld; index maps back to zone-b");
        // After the outage window, a new client is placed on zone A again.
        let later = (t + Duration::from_secs(30)).max(ready_at + Duration::from_secs(1));
        let out = d.dispatch_untraced(&svc, Ipv4Addr::new(192, 168, 1, 21), later, &mut clusters, &mut memory, &mut rng);
        match out.decision {
            DispatchDecision::WaitThenRedirect { cluster, .. } => assert_eq!(cluster, 0),
            other => panic!("expected zone-a deployment: {other:?}"),
        }
    }

    #[test]
    fn poll_grid_arithmetic() {
        let base = SimTime::from_secs(10);
        let i = Duration::from_millis(25);
        // Ready exactly at base: first probe still waits one interval.
        assert_eq!(next_poll_at(base, base, i), base + i);
        // Ready mid-interval: round up.
        assert_eq!(
            next_poll_at(base, base + Duration::from_millis(26), i),
            base + Duration::from_millis(50)
        );
        // Ready exactly on a tick: confirmed on that tick.
        assert_eq!(
            next_poll_at(base, base + Duration::from_millis(50), i),
            base + Duration::from_millis(50)
        );
    }

    #[test]
    fn phase_times_describe_uses_shared_formatting() {
        let start = SimTime::from_secs(1);
        let p = PhaseTimes {
            pull_done: Some(start + Duration::from_millis(1900)),
            create_done: Some(start + Duration::from_millis(2002)),
            scale_up_at: Some(start + Duration::from_millis(2002)),
            scale_up_done: Some(start + Duration::from_millis(2050)),
            port_confirmed: Some(start + Duration::from_millis(2362)),
            ..PhaseTimes::default()
        };
        assert_eq!(
            p.describe(start),
            "pull 1.900s -> create 102.000ms -> scale-up 48.000ms -> wait 312.000ms"
        );
        assert_eq!(PhaseTimes::default().describe(start), "no deployment");
        let gave_up = PhaseTimes {
            gave_up_at: Some(start + Duration::from_secs(3)),
            ..PhaseTimes::default()
        };
        assert_eq!(gave_up.describe(start), "gave up after 3.000s");
    }
}
