//! The Dispatcher (Fig. 7): gathers instances, consults the Global
//! Scheduler, and drives the deployment phases.
//!
//! For every table-miss request to a registered service:
//!
//! 1. the FlowMemory is checked — a memorized flow short-circuits everything;
//! 2. otherwise the Dispatcher gathers existing/running instances across all
//!    clusters and passes them to the Global Scheduler;
//! 3. the scheduler's **BEST** choice (if different from FAST) is deployed in
//!    the background (*without waiting*, Fig. 3);
//! 4. the **FAST** choice serves the current request: immediately if ready,
//!    after on-demand deployment *with waiting* (Fig. 5) otherwise, or the
//!    request is forwarded toward the cloud when FAST is empty.
//!
//! Readiness is discovered by port polling: after triggering Scale Up the
//! controller repeatedly probes the service port and only installs the
//! redirect flows once the port answers (Section VI).

use crate::cluster::{EdgeCluster, InstanceAddr, InstanceState};
use crate::flowmemory::{FlowKey, FlowMemory};
use crate::scheduler::{ClusterView, GlobalScheduler};
use crate::service::EdgeService;
use desim::{Duration, SimRng, SimTime};
use netsim::addr::Ipv4Addr;

/// Timing breakdown of one dispatch, for the evaluation harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Pull phase completion (if a pull ran).
    pub pull_done: Option<SimTime>,
    /// Create phase completion (if a create ran).
    pub create_done: Option<SimTime>,
    /// Scale-up issued at.
    pub scale_up_at: Option<SimTime>,
    /// Scale-up API call returned (Docker: `docker start` done; K8s: scale
    /// acknowledged). Port polling begins here.
    pub scale_up_done: Option<SimTime>,
    /// Instance actually ready (app accepting connections).
    pub instance_ready: Option<SimTime>,
    /// First successful port probe (flows can be installed from here).
    pub port_confirmed: Option<SimTime>,
}

impl PhaseTimes {
    /// The readiness wait the controller observed: from the scale-up command
    /// *returning* until the port probe succeeded (the quantity of
    /// Figs. 14/15 — "our SDN controller continuously tests whether the
    /// respective port is open").
    pub fn wait_time(&self) -> Option<Duration> {
        Some(self.port_confirmed?.saturating_since(self.scale_up_done?))
    }
}

/// The outcome of dispatching one request.
#[derive(Clone, Debug)]
pub enum DispatchDecision {
    /// Redirect immediately (instance ready or flow memorized).
    Redirect {
        /// Target instance.
        instance: InstanceAddr,
        /// Cluster index.
        cluster: usize,
    },
    /// On-demand deployment **with waiting**: hold the request, redirect at
    /// `ready_at`.
    WaitThenRedirect {
        /// Target instance.
        instance: InstanceAddr,
        /// Cluster index.
        cluster: usize,
        /// When the redirect can be installed (first successful port probe).
        ready_at: SimTime,
    },
    /// Forward the request toward the cloud.
    ForwardToCloud,
}

/// A background (BEST-choice) deployment triggered alongside the decision.
#[derive(Clone, Copy, Debug)]
pub struct BackgroundDeployment {
    /// Cluster index being deployed to.
    pub cluster: usize,
    /// When that instance will be ready.
    pub ready_at: SimTime,
}

/// Full dispatch result.
#[derive(Clone, Debug)]
pub struct DispatchOutcome {
    /// What happens to the current request.
    pub decision: DispatchDecision,
    /// Parallel deployment for future requests, if any.
    pub background: Option<BackgroundDeployment>,
    /// Phase timing of the foreground deployment (when one ran).
    pub phases: PhaseTimes,
    /// Whether the FlowMemory answered (no scheduling happened).
    pub from_memory: bool,
}

/// The Dispatcher component.
pub struct Dispatcher {
    scheduler: Box<dyn GlobalScheduler>,
    /// Port-probe interval for readiness polling.
    poll_interval: Duration,
}

impl Dispatcher {
    /// Creates a dispatcher with the given Global Scheduler and port-poll
    /// interval.
    pub fn new(scheduler: Box<dyn GlobalScheduler>, poll_interval: Duration) -> Dispatcher {
        assert!(!poll_interval.is_zero(), "poll interval must be positive");
        Dispatcher {
            scheduler,
            poll_interval,
        }
    }

    /// The active scheduler's name.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Swaps the Global Scheduler (the controller's dynamic configuration).
    pub fn set_scheduler(&mut self, scheduler: Box<dyn GlobalScheduler>) {
        self.scheduler = scheduler;
    }

    /// Dispatches one request from `client_ip` to `svc` (Fig. 7).
    pub fn dispatch(
        &mut self,
        svc: &EdgeService,
        client_ip: Ipv4Addr,
        now: SimTime,
        clusters: &mut [Box<dyn EdgeCluster>],
        memory: &mut FlowMemory,
        rng: &mut SimRng,
    ) -> DispatchOutcome {
        let key = FlowKey {
            client_ip,
            service: svc.addr,
        };

        // 1. Memorized flow? Verify the instance still serves.
        if let Some(flow) = memory.lookup(key, now) {
            if flow.cluster < clusters.len()
                && clusters[flow.cluster].state(svc, now).is_ready()
            {
                return DispatchOutcome {
                    decision: DispatchDecision::Redirect {
                        instance: flow.instance,
                        cluster: flow.cluster,
                    },
                    background: None,
                    phases: PhaseTimes::default(),
                    from_memory: true,
                };
            }
            // Instance vanished (scaled down elsewhere): forget and reschedule.
            memory.forget_service(svc.addr);
        }

        // 2. Gather views and consult the Global Scheduler.
        let views: Vec<ClusterView> = clusters
            .iter()
            .map(|c| ClusterView {
                name: c.name().to_owned(),
                kind: c.kind(),
                distance: c.latency(),
                image_cached: c.has_image_cached(svc),
                state: c.state(svc, now),
                load: c.load(),
            })
            .collect();
        let choice = self.scheduler.choose(&views);

        // 3. BEST ≠ FAST: deploy in the background (without waiting).
        let background = match choice.best {
            Some(b) if choice.best != choice.fast => {
                let mut phases = PhaseTimes::default();
                let ready_at = self.ensure_ready(svc, b, now, clusters, &mut phases, rng);
                Some(BackgroundDeployment {
                    cluster: b,
                    ready_at,
                })
            }
            _ => None,
        };

        // 4. FAST serves the current request.
        let Some(f) = choice.fast else {
            return DispatchOutcome {
                decision: DispatchDecision::ForwardToCloud,
                background,
                phases: PhaseTimes::default(),
                from_memory: false,
            };
        };

        if let InstanceState::Ready(instance) = clusters[f].state(svc, now) {
            memory.memorize(key, instance, f, now);
            return DispatchOutcome {
                decision: DispatchDecision::Redirect {
                    instance,
                    cluster: f,
                },
                background,
                phases: PhaseTimes::default(),
                from_memory: false,
            };
        }

        // On-demand deployment with waiting.
        let mut phases = PhaseTimes::default();
        let ready_at = self.ensure_ready(svc, f, now, clusters, &mut phases, rng);
        if ready_at == SimTime::MAX {
            // Deployment cannot complete (e.g. unschedulable): fall back.
            return DispatchOutcome {
                decision: DispatchDecision::ForwardToCloud,
                background,
                phases,
                from_memory: false,
            };
        }
        let instance = clusters[f]
            .instance_addr(svc)
            .expect("deployed instance has an address");
        memory.memorize(key, instance, f, ready_at);
        DispatchOutcome {
            decision: DispatchDecision::WaitThenRedirect {
                instance,
                cluster: f,
                ready_at,
            },
            background,
            phases,
            from_memory: false,
        }
    }

    /// Drives the missing phases on `cluster` until the instance is ready;
    /// returns the first successful port-probe instant ([`SimTime::MAX`] if
    /// the deployment cannot complete).
    fn ensure_ready(
        &self,
        svc: &EdgeService,
        cluster: usize,
        now: SimTime,
        clusters: &mut [Box<dyn EdgeCluster>],
        phases: &mut PhaseTimes,
        rng: &mut SimRng,
    ) -> SimTime {
        let c = &mut clusters[cluster];
        let mut t = now;
        let ready_at = match c.state(svc, now) {
            InstanceState::Ready(_) => now,
            InstanceState::Starting { ready_at } => ready_at,
            InstanceState::NotDeployed => {
                if !c.has_image_cached(svc) {
                    t = c.pull(svc, t, rng);
                    phases.pull_done = Some(t);
                }
                t = c.create(svc, t, rng);
                phases.create_done = Some(t);
                phases.scale_up_at = Some(t);
                let (done, ready) = c.scale_up(svc, t, rng);
                phases.scale_up_done = Some(done);
                ready
            }
            InstanceState::Created => {
                // Images were necessarily pulled before create.
                phases.scale_up_at = Some(t);
                let (done, ready) = c.scale_up(svc, t, rng);
                phases.scale_up_done = Some(done);
                ready
            }
        };
        if ready_at == SimTime::MAX {
            return SimTime::MAX;
        }
        phases.instance_ready = Some(ready_at);
        // Port polling: probes run every `poll_interval` from the moment the
        // scale-up command returned (or from `now` when no deployment ran);
        // the first probe at or after readiness confirms.
        let base = phases.scale_up_done.unwrap_or(now).max(now);
        let ready_for_poll = ready_at.max(base);
        let confirmed = next_poll_at(base, ready_for_poll, self.poll_interval);
        phases.port_confirmed = Some(confirmed);
        confirmed
    }
}

/// First poll tick at or after `ready`, with ticks at `base + k*interval`
/// (k ≥ 1; the probe right at scale-up would always fail).
fn next_poll_at(base: SimTime, ready: SimTime, interval: Duration) -> SimTime {
    debug_assert!(ready >= base);
    let gap = ready.saturating_since(base).as_nanos();
    let step = interval.as_nanos().max(1);
    let k = gap.div_ceil(step).max(1);
    base + Duration::from_nanos(k * step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_deployment;
    use crate::cluster::DockerCluster;
    use crate::scheduler::{LatencyAwareScheduler, ProximityScheduler};
    use dockersim::DockerEngine;
    use netsim::addr::MacAddr;
    use netsim::ServiceAddr;

    fn make_service(key: &str) -> EdgeService {
        let profile = containerd::ServiceSet::by_key(key).unwrap();
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        let yaml = format!(
            "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
            profile.manifests[0].reference, profile.listen_port
        );
        let annotated = annotate_deployment(&yaml, addr, None).unwrap();
        EdgeService {
            addr,
            name: annotated.service_name.clone(),
            annotated,
            profile,
        }
    }

    fn docker(name: &str, id: u32, latency_us: u64, cached: bool, rng: &mut SimRng) -> Box<dyn EdgeCluster> {
        let mut engine = DockerEngine::with_defaults();
        if cached {
            engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, rng);
        }
        Box::new(DockerCluster::new(
            name,
            engine,
            MacAddr::from_id(id),
            Ipv4Addr::new(10, 0, id as u8, 1),
            Duration::from_micros(latency_us),
        ))
    }

    fn dispatcher(sched: Box<dyn GlobalScheduler>) -> Dispatcher {
        Dispatcher::new(sched, Duration::from_millis(25))
    }

    #[test]
    fn with_waiting_deploys_on_nearest_and_waits() {
        let mut rng = SimRng::new(1);
        let svc = make_service("asm");
        let mut clusters = vec![docker("near", 1, 100, true, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());

        let now = SimTime::from_secs(1);
        let out = d.dispatch(&svc, Ipv4Addr::new(192, 168, 1, 20), now, &mut clusters, &mut memory, &mut rng);
        assert!(!out.from_memory);
        let DispatchDecision::WaitThenRedirect { ready_at, cluster, .. } = out.decision else {
            panic!("expected with-waiting: {:?}", out.decision);
        };
        assert_eq!(cluster, 0);
        // Cached asm on Docker: waiting stays sub-second ("as low as 0.5 s").
        assert!(ready_at - now < Duration::from_secs(1), "{}", ready_at - now);
        // Phases: no pull (cached), but create + scale-up + port confirm.
        assert!(out.phases.pull_done.is_none());
        assert!(out.phases.create_done.is_some());
        assert!(out.phases.port_confirmed.unwrap() >= out.phases.instance_ready.unwrap());
        // Port probes are discretized to the poll grid (based at the
        // scale-up command's return).
        let base = out.phases.scale_up_done.unwrap();
        let gap = out.phases.port_confirmed.unwrap().saturating_since(base).as_nanos();
        assert_eq!(gap % Duration::from_millis(25).as_nanos(), 0);

        // Second request from the same client: memorized, immediate.
        let later = ready_at + Duration::from_secs(1);
        let out2 = d.dispatch(&svc, Ipv4Addr::new(192, 168, 1, 20), later, &mut clusters, &mut memory, &mut rng);
        assert!(out2.from_memory);
        assert!(matches!(out2.decision, DispatchDecision::Redirect { .. }));
    }

    #[test]
    fn without_waiting_serves_from_far_and_deploys_near() {
        let mut rng = SimRng::new(2);
        let svc = make_service("asm");
        // Far cluster already runs the service; near is empty.
        let mut clusters = vec![
            docker("far", 1, 900, true, &mut rng),
            docker("near", 2, 100, true, &mut rng),
        ];
        // Pre-deploy on far.
        let t0 = SimTime::ZERO;
        let t = clusters[0].pull(&svc, t0, &mut rng);
        let t = clusters[0].create(&svc, t, &mut rng);
        let (_, far_ready) = clusters[0].scale_up(&svc, t, &mut rng);

        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<LatencyAwareScheduler>::default());
        let now = far_ready + Duration::from_secs(1);
        let out = d.dispatch(&svc, Ipv4Addr::new(192, 168, 1, 20), now, &mut clusters, &mut memory, &mut rng);
        // Current request: immediate redirect to the far instance.
        let DispatchDecision::Redirect { cluster, .. } = out.decision else {
            panic!("expected immediate redirect: {:?}", out.decision);
        };
        assert_eq!(cluster, 0);
        // Background: near cluster deploying.
        let bg = out.background.expect("background deployment");
        assert_eq!(bg.cluster, 1);
        assert!(bg.ready_at > now);

        // After the near instance is up, a *new* client is redirected there.
        let later = bg.ready_at + Duration::from_secs(1);
        let out2 = d.dispatch(&svc, Ipv4Addr::new(192, 168, 1, 21), later, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::Redirect { cluster, .. } = out2.decision else {
            panic!("expected redirect: {:?}", out2.decision);
        };
        assert_eq!(cluster, 1, "future requests go to the optimal edge");
        assert!(out2.background.is_none());
    }

    #[test]
    fn nothing_running_without_waiting_goes_to_cloud() {
        let mut rng = SimRng::new(3);
        let svc = make_service("asm");
        let mut clusters = vec![docker("near", 1, 100, true, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<LatencyAwareScheduler>::default());
        let out = d.dispatch(&svc, Ipv4Addr::new(192, 168, 1, 20), SimTime::ZERO, &mut clusters, &mut memory, &mut rng);
        assert!(matches!(out.decision, DispatchDecision::ForwardToCloud));
        assert!(out.background.is_some(), "deployment still triggered");
    }

    #[test]
    fn uncached_image_includes_pull_phase() {
        let mut rng = SimRng::new(4);
        let svc = make_service("nginx");
        let mut clusters = vec![docker("near", 1, 100, false, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());
        let now = SimTime::ZERO;
        let out = d.dispatch(&svc, Ipv4Addr::new(192, 168, 1, 20), now, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::WaitThenRedirect { ready_at, .. } = out.decision else {
            panic!("expected with-waiting");
        };
        assert!(out.phases.pull_done.is_some(), "pull phase ran");
        // Pull pushes the total beyond the cached sub-second band.
        assert!(ready_at - now > Duration::from_secs(2), "{}", ready_at - now);
        let wait = out.phases.wait_time().unwrap();
        assert!(wait < ready_at - now, "wait is a component of the total");
    }

    #[test]
    fn second_client_hits_running_instance_without_memory() {
        let mut rng = SimRng::new(5);
        let svc = make_service("asm");
        let mut clusters = vec![docker("near", 1, 100, true, &mut rng)];
        let mut memory = FlowMemory::new(Duration::from_secs(30));
        let mut d = dispatcher(Box::<ProximityScheduler>::default());
        let out = d.dispatch(&svc, Ipv4Addr::new(192, 168, 1, 20), SimTime::ZERO, &mut clusters, &mut memory, &mut rng);
        let DispatchDecision::WaitThenRedirect { ready_at, .. } = out.decision else {
            panic!()
        };
        // Different client, after readiness: scheduler runs but redirect is
        // immediate (instance ready), no new deployment.
        let out2 = d.dispatch(&svc, Ipv4Addr::new(192, 168, 1, 99), ready_at + Duration::from_secs(1), &mut clusters, &mut memory, &mut rng);
        assert!(!out2.from_memory);
        assert!(matches!(out2.decision, DispatchDecision::Redirect { .. }));
        assert!(out2.phases.scale_up_at.is_none(), "no deployment phases ran");
    }

    #[test]
    fn poll_grid_arithmetic() {
        let base = SimTime::from_secs(10);
        let i = Duration::from_millis(25);
        // Ready exactly at base: first probe still waits one interval.
        assert_eq!(next_poll_at(base, base, i), base + i);
        // Ready mid-interval: round up.
        assert_eq!(
            next_poll_at(base, base + Duration::from_millis(26), i),
            base + Duration::from_millis(50)
        );
        // Ready exactly on a tick: confirmed on that tick.
        assert_eq!(
            next_poll_at(base, base + Duration::from_millis(50), i),
            base + Duration::from_millis(50)
        );
    }
}
