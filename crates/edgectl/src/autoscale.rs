//! Per-instance queueing and horizontal autoscaling.
//!
//! The paper deploys exactly one instance per service and its Global
//! Scheduler only decides *where* a service runs — overload is invisible.
//! This module gives every deployed instance a deterministic queueing model
//! (fixed service time, a concurrency limit, a bounded backlog with
//! rejection) so overload becomes observable state, and a sim-time
//! autoscaler that flexes a service's replica count on queue depth and
//! utilization with hysteresis and cooldown.
//!
//! Everything here is deterministic: admissions use FIFO arithmetic over
//! recorded finish times (no sampling), and the autoscaler sweep iterates
//! pools in sorted key order. With [`AutoscaleConfig::enabled`] left `false`
//! (the default) the tracker is never consulted and every committed figure
//! stays byte-identical.
//!
//! Replica addressing: replica 0 *is* the cluster's real instance address;
//! replica `i > 0` reuses its MAC and IP with port `base + 131·i`. Service
//! bases are spaced by less than 131 ports and `131·(i−j) = ±1` has no
//! integer solution, so synthetic replica addresses never collide with a
//! base or with each other.

use crate::cluster::InstanceAddr;
use crate::scheduler::InstanceView;
use desim::{Duration, SimTime};
use netsim::ServiceAddr;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Port stride between synthetic replica addresses of one pool.
const REPLICA_PORT_STRIDE: u16 = 131;

/// The queueing model every instance runs: deterministic service time, a
/// concurrency limit, and a bounded backlog.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueConfig {
    /// How long one request occupies a service slot.
    pub service_time: Duration,
    /// Requests served simultaneously.
    pub concurrency: usize,
    /// Requests that may wait behind the concurrency limit before the
    /// instance starts rejecting.
    pub backlog: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            service_time: Duration::from_millis(20),
            concurrency: 4,
            backlog: 8,
        }
    }
}

/// What happened to one admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The request holds a slot: service starts at `start` (now, unless it
    /// queued) and the answer is ready at `finish`.
    Served {
        /// When a service slot frees up for this request.
        start: SimTime,
        /// `start + service_time`.
        finish: SimTime,
    },
    /// Concurrency and backlog are both full — the request is turned away
    /// (the dispatcher sends it to the cloud).
    Rejected,
}

/// One instance's deterministic FIFO queue, tracked as the sorted finish
/// times of its admitted requests.
#[derive(Clone, Debug)]
pub struct InstanceQueue {
    cfg: QueueConfig,
    finish_times: VecDeque<SimTime>,
    ewma_ns: f64,
    served: u64,
    rejected: u64,
}

impl InstanceQueue {
    /// An empty queue under `cfg`.
    pub fn new(cfg: QueueConfig) -> InstanceQueue {
        InstanceQueue {
            cfg,
            finish_times: VecDeque::new(),
            ewma_ns: 0.0,
            served: 0,
            rejected: 0,
        }
    }

    /// Offers one request at `now`: FIFO admission against the concurrency
    /// limit and bounded backlog. Deterministic — the start instant is pure
    /// arithmetic over previously recorded finish times.
    pub fn offer(&mut self, now: SimTime) -> Admission {
        while self.finish_times.front().is_some_and(|&t| t <= now) {
            self.finish_times.pop_front();
        }
        let depth = self.finish_times.len();
        if depth >= self.cfg.concurrency + self.cfg.backlog {
            self.rejected += 1;
            return Admission::Rejected;
        }
        let start = if depth < self.cfg.concurrency {
            now
        } else {
            // FIFO: this request takes the slot freed by the job finishing
            // `concurrency` positions ahead of it.
            self.finish_times[depth - self.cfg.concurrency]
        };
        let finish = start + self.cfg.service_time;
        self.finish_times.push_back(finish);
        let sojourn = finish.saturating_since(now);
        self.ewma_ns = if self.served == 0 {
            sojourn.as_nanos() as f64
        } else {
            0.2 * sojourn.as_nanos() as f64 + 0.8 * self.ewma_ns
        };
        self.served += 1;
        Admission::Served { start, finish }
    }

    /// Jobs still occupying the queue (in service or waiting) at `now`,
    /// without mutating state.
    fn occupancy(&self, now: SimTime) -> usize {
        self.finish_times.iter().filter(|&&t| t > now).count()
    }

    /// The queue's observable state at `now` as the scheduler sees it.
    pub fn view(&self, instance: usize, now: SimTime) -> InstanceView {
        let depth = self.occupancy(now);
        let in_flight = depth.min(self.cfg.concurrency);
        InstanceView {
            instance,
            in_flight,
            backlog: depth - in_flight,
            concurrency: self.cfg.concurrency,
            utilization: in_flight as f64 / self.cfg.concurrency.max(1) as f64,
            ewma_latency: Duration::from_nanos(self.ewma_ns as u64),
        }
    }

    /// Requests admitted so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests turned away so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

/// The replica set one (service, cluster) pair runs: per-replica queues
/// plus the address arithmetic and replica-time cost accounting.
#[derive(Clone, Debug)]
pub struct ServicePool {
    base: InstanceAddr,
    queues: Vec<InstanceQueue>,
    last_scale: SimTime,
    replica_seconds: f64,
    accounted_to: SimTime,
}

impl ServicePool {
    fn new(base: InstanceAddr, replicas: usize, queue: QueueConfig, now: SimTime) -> ServicePool {
        ServicePool {
            base,
            queues: vec![InstanceQueue::new(queue); replicas.max(1)],
            last_scale: now,
            replica_seconds: 0.0,
            accounted_to: now,
        }
    }

    /// Current replica count.
    pub fn replicas(&self) -> usize {
        self.queues.len()
    }

    /// The address replica `i` answers on (see the module docs for the
    /// collision-freedom argument).
    pub fn addr(&self, instance: usize) -> InstanceAddr {
        if instance == 0 {
            self.base
        } else {
            InstanceAddr {
                mac: self.base.mac,
                ip: self.base.ip,
                port: self.base.port + REPLICA_PORT_STRIDE * instance as u16,
            }
        }
    }

    /// Maps an address back to its replica index, if this pool owns it.
    pub fn index_of(&self, addr: InstanceAddr) -> Option<usize> {
        if addr.mac != self.base.mac || addr.ip != self.base.ip {
            return None;
        }
        let off = addr.port.checked_sub(self.base.port)?;
        if off % REPLICA_PORT_STRIDE != 0 {
            return None;
        }
        let i = (off / REPLICA_PORT_STRIDE) as usize;
        (i < self.queues.len()).then_some(i)
    }

    fn accrue(&mut self, now: SimTime) {
        self.replica_seconds +=
            self.queues.len() as f64 * now.saturating_since(self.accounted_to).as_secs_f64();
        self.accounted_to = now;
    }

    fn mean_utilization(&self, now: SimTime) -> f64 {
        let n = self.queues.len().max(1) as f64;
        self.queues.iter().enumerate().map(|(i, q)| q.view(i, now).utilization).sum::<f64>() / n
    }

    fn total_backlog(&self, now: SimTime) -> usize {
        self.queues.iter().enumerate().map(|(i, q)| q.view(i, now).backlog).sum()
    }
}

/// When and how far the autoscaler flexes each service's replica count.
#[derive(Clone, Debug, PartialEq)]
pub struct AutoscaleConfig {
    /// Master switch. `false` (the default) keeps the tracker entirely out
    /// of the dispatch path — committed figures stay byte-identical.
    pub enabled: bool,
    /// Floor on replicas per (service, cluster).
    pub min_replicas: usize,
    /// Ceiling on replicas per (service, cluster).
    pub max_replicas: usize,
    /// Scale up when mean utilization exceeds this fraction.
    pub scale_up_utilization: f64,
    /// Scale down only when mean utilization is below this fraction —
    /// the gap to `scale_up_utilization` is the hysteresis band.
    pub scale_down_utilization: f64,
    /// Scale up when the pool's total backlog reaches this many requests
    /// even if utilization looks fine (bursts queue faster than they busy).
    pub scale_up_backlog: usize,
    /// Minimum time between scale operations on one pool.
    pub cooldown: Duration,
    /// How often the controller runs the autoscaler sweep.
    pub sweep_interval: Duration,
    /// The queue model every replica runs.
    pub queue: QueueConfig,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            enabled: false,
            min_replicas: 1,
            max_replicas: 4,
            scale_up_utilization: 0.8,
            scale_down_utilization: 0.2,
            scale_up_backlog: 4,
            cooldown: Duration::from_secs(5),
            sweep_interval: Duration::from_secs(1),
            queue: QueueConfig::default(),
        }
    }
}

/// One autoscaler decision, for telemetry and traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaleEvent {
    /// The service whose pool changed.
    pub service: ServiceAddr,
    /// The cluster the pool lives on.
    pub cluster: usize,
    /// Replica count after the change.
    pub replicas: usize,
    /// `true` for scale-up, `false` for scale-down.
    pub up: bool,
}

/// Tracks every (service, cluster) replica pool: admissions, queue state
/// for the scheduler, the autoscaler sweep, and replica-time cost.
#[derive(Debug, Default)]
pub struct LoadTracker {
    cfg: AutoscaleConfig,
    pools: HashMap<(ServiceAddr, usize), ServicePool>,
    retired_replica_seconds: f64,
    admissions: u64,
    rejections: u64,
    scale_ups: u64,
    scale_downs: u64,
}

impl LoadTracker {
    /// A tracker under `cfg`.
    pub fn new(cfg: AutoscaleConfig) -> LoadTracker {
        LoadTracker { cfg, ..LoadTracker::default() }
    }

    /// Whether instance tracking (and thus autoscaling) is on at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// Replaces the configuration (controller construction time only).
    pub fn set_config(&mut self, cfg: AutoscaleConfig) {
        self.cfg = cfg;
    }

    /// Ensures a pool exists for `(service, cluster)` anchored at `base`.
    /// If the service was redeployed on a different base address (scale-down
    /// then re-create), the stale pool is replaced.
    pub fn ensure_pool(
        &mut self,
        service: ServiceAddr,
        cluster: usize,
        base: InstanceAddr,
        now: SimTime,
    ) {
        let min = self.cfg.min_replicas;
        let queue = self.cfg.queue;
        let pool = self
            .pools
            .entry((service, cluster))
            .or_insert_with(|| ServicePool::new(base, min, queue, now));
        if pool.base != base {
            let mut fresh = ServicePool::new(base, min, queue, now);
            std::mem::swap(pool, &mut fresh);
            fresh.accrue(now);
            self.retired_replica_seconds += fresh.replica_seconds;
        }
    }

    /// The pool for `(service, cluster)`, if one exists.
    pub fn pool(&self, service: ServiceAddr, cluster: usize) -> Option<&ServicePool> {
        self.pools.get(&(service, cluster))
    }

    /// Per-replica queue state for the scheduler's [`ClusterView`]
    /// (`crate::scheduler::ClusterView::instances`).
    pub fn views(&self, service: ServiceAddr, cluster: usize, now: SimTime) -> Vec<InstanceView> {
        self.pools
            .get(&(service, cluster))
            .map(|p| p.queues.iter().enumerate().map(|(i, q)| q.view(i, now)).collect())
            .unwrap_or_default()
    }

    /// Offers a request to replica `instance` (clamped to the pool) and
    /// returns the admission outcome plus the replica's address. `None` when
    /// no pool exists — the caller falls back to the base instance.
    pub fn admit(
        &mut self,
        service: ServiceAddr,
        cluster: usize,
        instance: usize,
        now: SimTime,
    ) -> Option<(Admission, InstanceAddr)> {
        let pool = self.pools.get_mut(&(service, cluster))?;
        let i = instance.min(pool.queues.len() - 1);
        let outcome = pool.queues[i].offer(now);
        match outcome {
            Admission::Served { .. } => self.admissions += 1,
            Admission::Rejected => self.rejections += 1,
        }
        Some((outcome, pool.addr(i)))
    }

    /// The address replica `instance` (clamped) of a pool answers on.
    pub fn resolve(
        &self,
        service: ServiceAddr,
        cluster: usize,
        instance: usize,
    ) -> Option<InstanceAddr> {
        let pool = self.pools.get(&(service, cluster))?;
        Some(pool.addr(instance.min(pool.queues.len() - 1)))
    }

    /// Maps a memorized replica address back to its index, if the pool
    /// still owns it (replicas that scaled away stop resolving).
    pub fn index_of(
        &self,
        service: ServiceAddr,
        cluster: usize,
        addr: InstanceAddr,
    ) -> Option<usize> {
        self.pools.get(&(service, cluster))?.index_of(addr)
    }

    /// Whether any pool currently owns `addr` (used by the health sweep so
    /// synthetic replica addresses are not mistaken for dead instances).
    pub fn owns_addr(&self, addr: InstanceAddr) -> bool {
        self.pools.values().any(|p| p.index_of(addr).is_some())
    }

    /// Drops the pool for `(service, cluster)` (service scaled to zero or
    /// its zone died), retiring its replica-time into the running total.
    pub fn remove_pool(&mut self, service: ServiceAddr, cluster: usize, now: SimTime) {
        if let Some(mut pool) = self.pools.remove(&(service, cluster)) {
            pool.accrue(now);
            self.retired_replica_seconds += pool.replica_seconds;
        }
    }

    /// One autoscaler pass over every pool, in deterministic (sorted) order.
    /// Applies hysteresis (disjoint up/down utilization thresholds) and the
    /// per-pool cooldown; returns the scale events it performed.
    pub fn sweep(&mut self, now: SimTime) -> Vec<ScaleEvent> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let mut keys: Vec<(ServiceAddr, usize)> = self.pools.keys().copied().collect();
        keys.sort();
        let mut events = Vec::new();
        for key in keys {
            let cfg = self.cfg.clone();
            let pool = self.pools.get_mut(&key).expect("key just listed");
            if now.saturating_since(pool.last_scale) < cfg.cooldown {
                continue;
            }
            let util = pool.mean_utilization(now);
            let backlog = pool.total_backlog(now);
            let n = pool.queues.len();
            if n < cfg.max_replicas && (util > cfg.scale_up_utilization || backlog >= cfg.scale_up_backlog)
            {
                pool.accrue(now);
                pool.queues.push(InstanceQueue::new(cfg.queue));
                pool.last_scale = now;
                self.scale_ups += 1;
                events.push(ScaleEvent {
                    service: key.0,
                    cluster: key.1,
                    replicas: pool.queues.len(),
                    up: true,
                });
            } else if n > cfg.min_replicas
                && util < cfg.scale_down_utilization
                && backlog == 0
                && pool.queues.last().is_some_and(|q| q.occupancy(now) == 0)
            {
                pool.accrue(now);
                pool.queues.pop();
                pool.last_scale = now;
                self.scale_downs += 1;
                events.push(ScaleEvent {
                    service: key.0,
                    cluster: key.1,
                    replicas: pool.queues.len(),
                    up: false,
                });
            }
        }
        events
    }

    /// Total replica-time (replica-count × wall time, in seconds) accrued by
    /// every pool up to `now` — the tournament's instance-count cost metric.
    pub fn replica_seconds(&mut self, now: SimTime) -> f64 {
        for pool in self.pools.values_mut() {
            pool.accrue(now);
        }
        self.retired_replica_seconds
            + self.pools.values().map(|p| p.replica_seconds).sum::<f64>()
    }

    /// Requests admitted (served, possibly after queueing) so far.
    pub fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Requests rejected by a full queue so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Scale-up operations performed so far.
    pub fn scale_ups(&self) -> u64 {
        self.scale_ups
    }

    /// Scale-down operations performed so far.
    pub fn scale_downs(&self) -> u64 {
        self.scale_downs
    }

    /// Current replica counts per pool, sorted by key (for gauges).
    pub fn replica_counts(&self) -> Vec<((ServiceAddr, usize), usize)> {
        let mut v: Vec<_> = self.pools.iter().map(|(k, p)| (*k, p.queues.len())).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::addr::{Ipv4Addr, MacAddr};

    fn qcfg() -> QueueConfig {
        QueueConfig {
            service_time: Duration::from_millis(10),
            concurrency: 2,
            backlog: 2,
        }
    }

    fn base() -> InstanceAddr {
        InstanceAddr {
            mac: MacAddr::from_id(7),
            ip: Ipv4Addr::new(10, 0, 0, 1),
            port: 31000,
        }
    }

    fn svc(i: u8) -> ServiceAddr {
        ServiceAddr::new(Ipv4Addr::new(203, 0, 113, i), 80)
    }

    #[test]
    fn fifo_admission_is_exact() {
        let mut q = InstanceQueue::new(qcfg());
        let t0 = SimTime::from_secs(1);
        // Two slots: both start immediately.
        assert_eq!(
            q.offer(t0),
            Admission::Served { start: t0, finish: t0 + Duration::from_millis(10) }
        );
        assert_eq!(
            q.offer(t0),
            Admission::Served { start: t0, finish: t0 + Duration::from_millis(10) }
        );
        // Third queues behind the first finish; fourth behind the second.
        let first_free = t0 + Duration::from_millis(10);
        assert_eq!(
            q.offer(t0),
            Admission::Served { start: first_free, finish: first_free + Duration::from_millis(10) }
        );
        assert_eq!(
            q.offer(t0),
            Admission::Served { start: first_free, finish: first_free + Duration::from_millis(10) }
        );
        // Concurrency (2) + backlog (2) exhausted: reject.
        assert_eq!(q.offer(t0), Admission::Rejected);
        assert_eq!(q.rejected(), 1);
        // At t0+11ms the first wave drained but the queued pair still holds
        // both slots: a new arrival queues behind their t0+20ms finishes.
        let busy = t0 + Duration::from_millis(11);
        let Admission::Served { start, .. } = q.offer(busy) else {
            panic!("should admit into backlog");
        };
        assert_eq!(start, t0 + Duration::from_millis(20), "queues behind the pair");
        // Once everything drains, admission is immediate again.
        let later = t0 + Duration::from_millis(31);
        let Admission::Served { start, .. } = q.offer(later) else {
            panic!("should admit after drain");
        };
        assert_eq!(start, later, "slot free — no queueing");
        assert_eq!(q.served(), 6);
    }

    #[test]
    fn view_reports_in_flight_and_backlog() {
        let mut q = InstanceQueue::new(qcfg());
        let t0 = SimTime::from_secs(1);
        for _ in 0..3 {
            q.offer(t0);
        }
        let v = q.view(0, t0);
        assert_eq!((v.in_flight, v.backlog, v.concurrency), (2, 1, 2));
        assert!(v.at_capacity());
        assert_eq!(v.queue_depth(), 3);
        assert!((v.utilization - 1.0).abs() < 1e-9);
        assert!(!v.ewma_latency.is_zero(), "sojourns recorded");
        // After everything drains the view is idle again.
        let v = q.view(0, t0 + Duration::from_secs(1));
        assert_eq!((v.in_flight, v.backlog), (0, 0));
        assert!(!v.at_capacity());
    }

    #[test]
    fn replica_addresses_are_distinct_and_reversible() {
        let pool = ServicePool::new(base(), 4, qcfg(), SimTime::ZERO);
        let addrs: Vec<InstanceAddr> = (0..4).map(|i| pool.addr(i)).collect();
        assert_eq!(addrs[0], base(), "replica 0 is the real instance");
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(pool.index_of(*a), Some(i));
            for b in &addrs[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // A nearby-but-unrelated port does not reverse-map.
        let stranger = InstanceAddr { port: base().port + 1, ..base() };
        assert_eq!(pool.index_of(stranger), None);
    }

    #[test]
    fn sweep_scales_up_on_backlog_and_down_when_idle() {
        let cfg = AutoscaleConfig {
            enabled: true,
            max_replicas: 3,
            cooldown: Duration::from_secs(1),
            queue: qcfg(),
            ..AutoscaleConfig::default()
        };
        let mut tr = LoadTracker::new(cfg);
        let t0 = SimTime::from_secs(10);
        tr.ensure_pool(svc(1), 0, base(), t0);
        // Saturate replica 0 (full concurrency + backlog) just before the
        // sweep so the queue is still busy when the autoscaler looks.
        let t1 = t0 + Duration::from_secs(2);
        for _ in 0..4 {
            tr.admit(svc(1), 0, 0, t1);
        }
        let ev = tr.sweep(t1);
        assert_eq!(
            ev,
            vec![ScaleEvent { service: svc(1), cluster: 0, replicas: 2, up: true }]
        );
        // Cooldown: an immediate second sweep does nothing.
        assert!(tr.sweep(t1).is_empty());
        // Long idle: scales back down to the floor, one step per sweep.
        let ev = tr.sweep(t0 + Duration::from_secs(100));
        assert_eq!(
            ev,
            vec![ScaleEvent { service: svc(1), cluster: 0, replicas: 1, up: false }]
        );
        assert!(tr.sweep(t0 + Duration::from_secs(200)).is_empty(), "at the floor");
        assert_eq!((tr.scale_ups(), tr.scale_downs()), (1, 1));
    }

    #[test]
    fn sweep_is_disabled_by_default() {
        let mut tr = LoadTracker::default();
        assert!(!tr.enabled());
        tr.ensure_pool(svc(1), 0, base(), SimTime::ZERO);
        for _ in 0..32 {
            tr.admit(svc(1), 0, 0, SimTime::ZERO);
        }
        assert!(tr.sweep(SimTime::from_secs(60)).is_empty());
    }

    #[test]
    fn replica_seconds_accrue_by_pool_size() {
        let cfg = AutoscaleConfig { enabled: true, queue: qcfg(), ..AutoscaleConfig::default() };
        let mut tr = LoadTracker::new(cfg);
        let t0 = SimTime::from_secs(0);
        tr.ensure_pool(svc(1), 0, base(), t0);
        // 10 s at one replica.
        assert!((tr.replica_seconds(t0 + Duration::from_secs(10)) - 10.0).abs() < 1e-9);
        // Force a scale-up, then 10 more seconds at two replicas.
        for _ in 0..8 {
            tr.admit(svc(1), 0, 0, t0 + Duration::from_secs(10));
        }
        tr.sweep(t0 + Duration::from_secs(10));
        let total = tr.replica_seconds(t0 + Duration::from_secs(20));
        assert!((total - 30.0).abs() < 1e-9, "10·1 + 10·2 = 30, got {total}");
        // Removing the pool retires (not loses) its cost.
        tr.remove_pool(svc(1), 0, t0 + Duration::from_secs(20));
        assert!((tr.replica_seconds(t0 + Duration::from_secs(99)) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn redeployed_base_resets_the_pool() {
        let cfg = AutoscaleConfig { enabled: true, queue: qcfg(), ..AutoscaleConfig::default() };
        let mut tr = LoadTracker::new(cfg);
        let t0 = SimTime::from_secs(0);
        tr.ensure_pool(svc(1), 0, base(), t0);
        tr.admit(svc(1), 0, 0, t0);
        // The service scaled down and came back on a fresh port.
        let reborn = InstanceAddr { port: 31007, ..base() };
        tr.ensure_pool(svc(1), 0, reborn, t0 + Duration::from_secs(5));
        let pool = tr.pool(svc(1), 0).unwrap();
        assert_eq!(pool.addr(0), reborn);
        assert_eq!(pool.replicas(), 1);
        assert_eq!(tr.views(svc(1), 0, t0 + Duration::from_secs(5))[0].queue_depth(), 0);
        // The old pool's replica-time was retired, not dropped.
        assert!(tr.replica_seconds(t0 + Duration::from_secs(5)) >= 5.0 - 1e-9);
    }

    #[test]
    fn admit_clamps_instance_and_tracks_rates() {
        let cfg = AutoscaleConfig { enabled: true, queue: qcfg(), ..AutoscaleConfig::default() };
        let mut tr = LoadTracker::new(cfg);
        let t0 = SimTime::from_secs(1);
        tr.ensure_pool(svc(1), 0, base(), t0);
        // Instance 7 does not exist: clamps to the last (only) replica.
        let (outcome, addr) = tr.admit(svc(1), 0, 7, t0).unwrap();
        assert!(matches!(outcome, Admission::Served { .. }));
        assert_eq!(addr, base());
        for _ in 0..8 {
            tr.admit(svc(1), 0, 0, t0);
        }
        assert_eq!(tr.admissions(), 4, "2 in service + 2 backlogged + clamped first");
        assert_eq!(tr.rejections(), 5);
        assert!(tr.owns_addr(base()));
        assert!(!tr.owns_addr(InstanceAddr { port: 999, ..base() }));
    }
}
