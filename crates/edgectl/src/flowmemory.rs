//! The FlowMemory (Section V).
//!
//! The controller does not merely install flows in the switches — it
//! memorizes them. This allows the *switch* idle timeouts to stay low (small
//! TCAM tables) while the controller still remembers where a client↔service
//! pair was redirected, so repeat requests go to the same instance without
//! rescheduling. Memorized flows themselves carry an idle timeout; expiry
//! (a) drops stale entries and (b) reports services whose last flow is gone —
//! the trigger for automatic scale-down of idle edge services.
//!
//! Expiry runs on a [`TimerWheel`], so a sweep visits only entries actually
//! due instead of scanning the whole memory, and [`FlowMemory::next_expiry`]
//! is O(1). Idle refreshes ([`FlowMemory::lookup`] / [`FlowMemory::touch`])
//! are lazy: they update `last_used` without rescheduling; a sweep that
//! reaches a refreshed entry re-arms it instead of expiring it. Per-service
//! live counts are maintained incrementally, making the "service has zero
//! remaining flows" scale-down check O(1) per expired service.

use crate::cluster::InstanceAddr;
use desim::{Duration, SimTime, TimerWheel};
use netsim::addr::Ipv4Addr;
use netsim::ServiceAddr;
use std::collections::{BTreeSet, HashMap};

/// Identifies one ingress switch (gNB) managed by the controller.
///
/// The seed deployment had a single ingress, so flows were keyed by
/// `(client, service)` alone. With multiple gNBs a client's redirect is
/// location-dependent — the same client↔service pair may need different
/// rewrite flows (and even a different instance) depending on which cell it
/// is attached to — so the ingress becomes part of the key. Ingress `0` is
/// the legacy single-switch identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct IngressId(pub u32);

impl IngressId {
    /// The legacy single-ingress identity.
    pub const DEFAULT: IngressId = IngressId(0);
}

/// Key: one client talking to one registered service through one ingress.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey {
    /// Ingress switch (gNB) the client is attached to.
    pub ingress: IngressId,
    /// Client IP.
    pub client_ip: Ipv4Addr,
    /// Registered service address.
    pub service: ServiceAddr,
}

/// A memorized redirect decision.
#[derive(Clone, Copy, Debug)]
pub struct MemorizedFlow {
    /// Where the flow is redirected.
    pub instance: InstanceAddr,
    /// Cluster serving it (index into the controller's cluster list).
    pub cluster: usize,
    /// Last time traffic (or a switch flow refresh) touched this entry.
    pub last_used: SimTime,
}

/// Plain counters over the memory's lifetime, read when a telemetry
/// snapshot is taken. Always maintained — a few integer increments on
/// controller-path (not switch-path) operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowMemoryStats {
    /// Total [`FlowMemory::lookup`] calls.
    pub lookups: u64,
    /// Lookups that returned a live memorized flow.
    pub hits: u64,
    /// Entries reaped by expiry sweeps (stale-at-lookup entries count once,
    /// when the sweep removes them).
    pub expired: u64,
}

/// One FlowMemory mutation, as appended to the controller's write-ahead
/// journal (see [`crate::journal`]). Every bulk operation — client/service/
/// instance/cluster forgets, re-keys, expiry sweeps — decomposes into these
/// four leaves, so replaying the leaf stream rebuilds the memory exactly.
#[derive(Clone, Copy, Debug)]
pub enum FlowOp {
    /// An entry was inserted (or refreshed in place) at `at`.
    Memorize {
        /// The entry's key.
        key: FlowKey,
        /// Redirect target instance.
        instance: InstanceAddr,
        /// Redirect target cluster.
        cluster: usize,
        /// Insertion instant (`last_used` baseline).
        at: SimTime,
    },
    /// An entry's idle timer was refreshed at `at` (lookup hit or explicit
    /// touch).
    Touch {
        /// The refreshed entry.
        key: FlowKey,
        /// Refresh instant.
        at: SimTime,
    },
    /// An entry was removed (forget, bulk forget, re-key departure, or an
    /// expiry sweep reaping it).
    Forget {
        /// The removed entry.
        key: FlowKey,
    },
    /// An entry was re-targeted in place at `at` (migration flip).
    Repoint {
        /// The retargeted entry.
        key: FlowKey,
        /// New instance.
        instance: InstanceAddr,
        /// New cluster.
        cluster: usize,
        /// Flip instant (`last_used` refresh).
        at: SimTime,
    },
}

/// One per-ingress shard: the flows entering through a single gNB and
/// their expiry wheel. A fleet-scale controller fronts many ingress
/// switches; keying the hot structures by ingress keeps every per-packet
/// lookup and every expiry sweep O(one cell), not O(fleet).
#[derive(Default)]
struct Shard {
    flows: HashMap<FlowKey, MemorizedFlow>,
    /// Expiry wheel; a key's deadline is never later than its true expiry
    /// (refreshes are applied lazily at sweep time).
    wheel: TimerWheel<FlowKey>,
}

/// The controller-side flow memory with idle expiry, sharded by
/// [`IngressId`].
pub struct FlowMemory {
    /// Lifetime counters for telemetry.
    pub stats: FlowMemoryStats,
    idle_timeout: Duration,
    /// Per-ingress shards, indexed by `IngressId.0`; grown on demand.
    shards: Vec<Shard>,
    /// Total entries across all shards.
    len: usize,
    /// Live flow count per service **across all ingresses** (the instance
    /// serves every cell); an expiring service is a scale-down candidate
    /// exactly when its count reaches zero.
    per_service: HashMap<ServiceAddr, usize>,
    /// Recycled buffer for expiry sweeps so periodic ticks allocate nothing
    /// in the steady state.
    expiry_scratch: Vec<FlowKey>,
    /// Mutation log drained by the controller's journal; `None` (the
    /// default) keeps every mutator free of logging work.
    log: Option<Vec<FlowOp>>,
}

impl FlowMemory {
    /// Creates a memory whose entries expire after `idle_timeout` without
    /// traffic.
    pub fn new(idle_timeout: Duration) -> FlowMemory {
        FlowMemory {
            stats: FlowMemoryStats::default(),
            idle_timeout,
            shards: Vec::new(),
            len: 0,
            per_service: HashMap::new(),
            expiry_scratch: Vec::new(),
            log: None,
        }
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }

    /// Turns mutation logging on or off. Off (the default) keeps the
    /// mutators allocation- and branch-free for the no-journal path;
    /// turning it off discards any undrained ops.
    pub fn set_logging(&mut self, on: bool) {
        self.log = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the mutation ops accumulated since the last drain. Empty when
    /// logging is off.
    pub fn take_ops(&mut self) -> Vec<FlowOp> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Every live entry, sorted by `(ingress, client, service)` — the
    /// snapshot export. Stats and wheel internals are excluded: a restore
    /// re-arms each entry at `last_used + idle_timeout`, which is never
    /// later than the original wheel deadline, so sweep behaviour is
    /// preserved.
    pub fn export_entries(&self) -> Vec<(FlowKey, MemorizedFlow)> {
        let mut out: Vec<(FlowKey, MemorizedFlow)> = self
            .shards
            .iter()
            .flat_map(|s| s.flows.iter())
            .map(|(k, f)| (*k, *f))
            .collect();
        out.sort_by_key(|(k, _)| (k.ingress, k.client_ip, k.service));
        out
    }

    /// Rebuilds the memory from a snapshot export. Intended for a fresh,
    /// non-logging instance (journal replay); entries keep their recorded
    /// `last_used`.
    pub fn restore_entries(&mut self, entries: &[(FlowKey, MemorizedFlow)]) {
        for (k, f) in entries {
            self.memorize(*k, f.instance, f.cluster, f.last_used);
        }
    }

    /// Applies one logged mutation — the journal replay primitive. Call on
    /// a non-logging instance, or the replayed ops are re-logged.
    pub fn apply(&mut self, op: &FlowOp) {
        match *op {
            FlowOp::Memorize {
                key,
                instance,
                cluster,
                at,
            } => self.memorize(key, instance, cluster, at),
            FlowOp::Touch { key, at } => self.touch(key, at),
            FlowOp::Forget { key } => {
                self.remove(&key);
            }
            FlowOp::Repoint {
                key,
                instance,
                cluster,
                at,
            } => {
                self.repoint(&key, instance, cluster, at);
            }
        }
    }

    fn shard(&self, ingress: IngressId) -> Option<&Shard> {
        self.shards.get(ingress.0 as usize)
    }

    fn shard_mut(&mut self, ingress: IngressId) -> &mut Shard {
        let idx = ingress.0 as usize;
        if idx >= self.shards.len() {
            self.shards.resize_with(idx + 1, Shard::default);
        }
        &mut self.shards[idx]
    }

    /// Looks up a memorized flow, refreshing its idle timer on hit. Touches
    /// only the shard of `key.ingress`.
    pub fn lookup(&mut self, key: FlowKey, now: SimTime) -> Option<MemorizedFlow> {
        self.stats.lookups += 1;
        let idle = self.idle_timeout;
        let flow = self.shards.get_mut(key.ingress.0 as usize)?.flows.get_mut(&key)?;
        if now.saturating_since(flow.last_used) >= idle {
            // Already stale — treat as absent; `expire` will reap it.
            return None;
        }
        flow.last_used = now;
        let hit = *flow;
        self.stats.hits += 1;
        if let Some(log) = &mut self.log {
            log.push(FlowOp::Touch { key, at: now });
        }
        Some(hit)
    }

    /// Memorizes (or refreshes) a redirect decision.
    pub fn memorize(&mut self, key: FlowKey, instance: InstanceAddr, cluster: usize, now: SimTime) {
        let deadline = now + self.idle_timeout;
        let shard = self.shard_mut(key.ingress);
        let prev = shard.flows.insert(
            key,
            MemorizedFlow {
                instance,
                cluster,
                last_used: now,
            },
        );
        shard.wheel.schedule(key, deadline);
        if prev.is_none() {
            self.len += 1;
            *self.per_service.entry(key.service).or_insert(0) += 1;
        }
        if let Some(log) = &mut self.log {
            log.push(FlowOp::Memorize {
                key,
                instance,
                cluster,
                at: now,
            });
        }
    }

    /// Refreshes the idle timer (e.g. when the switch reports traffic via a
    /// flow-removed + reinstall cycle).
    pub fn touch(&mut self, key: FlowKey, now: SimTime) {
        if let Some(shard) = self.shards.get_mut(key.ingress.0 as usize) {
            if let Some(f) = shard.flows.get_mut(&key) {
                f.last_used = now;
                if let Some(log) = &mut self.log {
                    log.push(FlowOp::Touch { key, at: now });
                }
            }
        }
    }

    /// Unfiles `key` from its shard, the count and the wheel; `true` if it
    /// was present.
    fn remove(&mut self, key: &FlowKey) -> bool {
        let Some(shard) = self.shards.get_mut(key.ingress.0 as usize) else {
            return false;
        };
        if shard.flows.remove(key).is_none() {
            return false;
        }
        shard.wheel.cancel(key);
        self.len -= 1;
        let n = self.per_service.get_mut(&key.service).expect("service count");
        *n -= 1;
        if *n == 0 {
            self.per_service.remove(&key.service);
        }
        if let Some(log) = &mut self.log {
            log.push(FlowOp::Forget { key: *key });
        }
        true
    }

    /// Unfiles one exact key; `true` if it was present. The public face of
    /// [`remove`](Self::remove) for handover code that retires a single
    /// migrated entry.
    pub fn forget(&mut self, key: &FlowKey) -> bool {
        self.remove(key)
    }

    /// All live flows of `client` at `ingress`, sorted by service address so
    /// callers iterate deterministically regardless of hash-map order. Scans
    /// one shard — a handover touches the cells involved, never the fleet.
    pub fn flows_of_client_at(
        &self,
        client: Ipv4Addr,
        ingress: IngressId,
    ) -> Vec<(FlowKey, MemorizedFlow)> {
        let Some(shard) = self.shard(ingress) else {
            return Vec::new();
        };
        let mut out: Vec<(FlowKey, MemorizedFlow)> = shard
            .flows
            .iter()
            .filter(|(k, _)| k.client_ip == client)
            .map(|(k, f)| (*k, *f))
            .collect();
        out.sort_by_key(|(k, _)| k.service);
        out
    }

    /// Migrates one entry to a new ingress, preserving its instance and
    /// refreshing its idle timer (the handover itself is traffic). Returns
    /// `false` if the entry does not exist (already expired mid-handover).
    pub fn rekey(&mut self, key: &FlowKey, to: IngressId, now: SimTime) -> bool {
        if key.ingress == to {
            self.touch(*key, now);
            return self
                .shard(key.ingress)
                .is_some_and(|s| s.flows.contains_key(key));
        }
        let Some(flow) = self.shard(key.ingress).and_then(|s| s.flows.get(key)).copied() else {
            return false;
        };
        self.remove(key);
        let new_key = FlowKey { ingress: to, ..*key };
        self.memorize(new_key, flow.instance, flow.cluster, now);
        true
    }

    /// Migrates every flow of `client` from ingress `from` to `to`; returns
    /// how many entries moved.
    pub fn rekey_client(
        &mut self,
        client: Ipv4Addr,
        from: IngressId,
        to: IngressId,
        now: SimTime,
    ) -> usize {
        self.flows_of_client_at(client, from)
            .iter()
            .filter(|(k, _)| self.rekey(k, to, now))
            .count()
    }

    /// Forgets all flows of `client` on **every** ingress (e.g. when the
    /// client disappears entirely; a moving client is [`rekey_client`]ed
    /// instead so its sessions survive).
    ///
    /// [`rekey_client`]: Self::rekey_client
    pub fn forget_client(&mut self, client: Ipv4Addr) -> usize {
        let victims: Vec<FlowKey> = self
            .shards
            .iter()
            .flat_map(|s| s.flows.keys())
            .filter(|k| k.client_ip == client)
            .copied()
            .collect();
        victims.iter().filter(|k| self.remove(k)).count()
    }

    /// Forgets all flows toward `service` (e.g. after its instance moved).
    pub fn forget_service(&mut self, service: ServiceAddr) -> usize {
        let victims: Vec<FlowKey> = self
            .shards
            .iter()
            .flat_map(|s| s.flows.keys())
            .filter(|k| k.service == service)
            .copied()
            .collect();
        victims.iter().filter(|k| self.remove(k)).count()
    }

    /// Forgets every flow redirected at `instance` — the stale-redirect
    /// repair primitive: after a Ready instance crashes, no lookup may ever
    /// return its address again. Returns the removed entries, sorted by
    /// `(client, ingress, service)` so callers tear down the matching switch
    /// flows deterministically.
    pub fn forget_instance(&mut self, instance: InstanceAddr) -> Vec<(FlowKey, MemorizedFlow)> {
        let mut victims: Vec<(FlowKey, MemorizedFlow)> = self
            .shards
            .iter()
            .flat_map(|s| s.flows.iter())
            .filter(|(_, f)| f.instance == instance)
            .map(|(k, f)| (*k, *f))
            .collect();
        victims.sort_by_key(|(k, _)| (k.client_ip, k.ingress, k.service));
        for (k, _) in &victims {
            self.remove(k);
        }
        victims
    }

    /// Forgets every flow served by cluster index `cluster` — the zone-outage
    /// repair primitive. Returns the removed entries, sorted like
    /// [`forget_instance`](Self::forget_instance).
    pub fn forget_cluster(&mut self, cluster: usize) -> Vec<(FlowKey, MemorizedFlow)> {
        let mut victims: Vec<(FlowKey, MemorizedFlow)> = self
            .shards
            .iter()
            .flat_map(|s| s.flows.iter())
            .filter(|(_, f)| f.cluster == cluster)
            .map(|(k, f)| (*k, *f))
            .collect();
        victims.sort_by_key(|(k, _)| (k.client_ip, k.ingress, k.service));
        for (k, _) in &victims {
            self.remove(k);
        }
        victims
    }

    /// All live flows redirected at `(service, cluster)`, sorted by
    /// `(client, ingress)` — the work list of a migration flow flip. Scans
    /// every shard: the clients of one instance may enter anywhere.
    pub fn entries_at(
        &self,
        service: ServiceAddr,
        cluster: usize,
    ) -> Vec<(FlowKey, MemorizedFlow)> {
        let mut out: Vec<(FlowKey, MemorizedFlow)> = self
            .shards
            .iter()
            .flat_map(|s| s.flows.iter())
            .filter(|(k, f)| k.service == service && f.cluster == cluster)
            .map(|(k, f)| (*k, *f))
            .collect();
        out.sort_by_key(|(k, _)| (k.client_ip, k.ingress));
        out
    }

    /// Re-targets one entry at a new `(instance, cluster)` in place,
    /// refreshing its idle timer — the migration flip primitive: unlike
    /// [`rekey`](Self::rekey) the key (client + ingress) is unchanged, only
    /// where the flow points moves. Returns `false` if the entry is gone
    /// (expired mid-transfer).
    pub fn repoint(
        &mut self,
        key: &FlowKey,
        instance: InstanceAddr,
        cluster: usize,
        now: SimTime,
    ) -> bool {
        let Some(flow) = self
            .shards
            .get_mut(key.ingress.0 as usize)
            .and_then(|s| s.flows.get_mut(key))
        else {
            return false;
        };
        flow.instance = instance;
        flow.cluster = cluster;
        flow.last_used = now;
        if let Some(log) = &mut self.log {
            log.push(FlowOp::Repoint {
                key: *key,
                instance,
                cluster,
                at: now,
            });
        }
        true
    }

    /// The distinct `(cluster, instance, service)` triples currently
    /// memorized, sorted — the health sweep's work list: every instance that
    /// appears here has at least one client actively redirected at it, so a
    /// crash of that instance strands real traffic until repaired.
    pub fn instances(&self) -> Vec<(usize, InstanceAddr, ServiceAddr)> {
        let mut out: BTreeSet<(usize, InstanceAddr, ServiceAddr)> = BTreeSet::new();
        for shard in &self.shards {
            for (k, f) in &shard.flows {
                out.insert((f.cluster, f.instance, k.service));
            }
        }
        out.into_iter().collect()
    }

    /// Removes expired entries; returns the services that now have **zero**
    /// remaining flows (candidates for scale-down) along with the cluster
    /// that served them, one report per distinct `(service, cluster)` pair,
    /// in sorted order. A service whose flows expired on several clusters in
    /// the same sweep is reported once *per cluster* — each cluster's
    /// instance is independently idle.
    pub fn expire(&mut self, now: SimTime) -> Vec<(ServiceAddr, usize)> {
        let timeout = self.idle_timeout;
        let mut expired: BTreeSet<(ServiceAddr, usize)> = BTreeSet::new();
        let mut due = std::mem::take(&mut self.expiry_scratch);
        // Sweep shard by shard: a wheel with nothing due costs O(1) to ask,
        // so a quiet cell adds nothing to the sweep even at fleet scale.
        for idx in 0..self.shards.len() {
            due.clear();
            self.shards[idx].wheel.expired_into(now, &mut due);
            for key in due.drain(..) {
                let f = self.shards[idx].flows[&key];
                if now.saturating_since(f.last_used) >= timeout {
                    self.remove(&key);
                    self.stats.expired += 1;
                    expired.insert((key.service, f.cluster));
                } else {
                    // Refreshed since its deadline was set: re-arm.
                    self.shards[idx].wheel.schedule(key, f.last_used + timeout);
                }
            }
        }
        self.expiry_scratch = due;
        expired
            .into_iter()
            .filter(|(svc, _)| !self.per_service.contains_key(svc))
            .collect()
    }

    /// Number of live flows toward `service`.
    pub fn flows_for(&self, service: ServiceAddr) -> usize {
        self.per_service.get(&service).copied().unwrap_or(0)
    }

    /// Total memorized flows across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no flows are memorized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest instant any entry could expire: a lower bound that costs
    /// one constant-time wheel query per shard (exact when no entry was
    /// refreshed since it was scheduled); `None` iff the memory is empty. An
    /// early sweep is harmless — it re-arms refreshed entries and tightens
    /// the bound.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.wheel.next_deadline()).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::addr::MacAddr;

    fn key(client: u8, port: u16) -> FlowKey {
        key_at(0, client, port)
    }

    fn key_at(ingress: u32, client: u8, port: u16) -> FlowKey {
        FlowKey {
            ingress: IngressId(ingress),
            client_ip: Ipv4Addr::new(192, 168, 1, client),
            service: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), port),
        }
    }

    fn inst(port: u16) -> InstanceAddr {
        InstanceAddr {
            mac: MacAddr::from_id(9),
            ip: Ipv4Addr::new(10, 0, 0, 5),
            port,
        }
    }

    #[test]
    fn memorize_lookup_touch() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        let k = key(20, 80);
        assert!(m.lookup(k, SimTime::ZERO).is_none());
        m.memorize(k, inst(31000), 0, SimTime::ZERO);
        let f = m.lookup(k, SimTime::from_secs(5)).unwrap();
        assert_eq!(f.instance.port, 31000);
        assert_eq!(f.cluster, 0);
        // Lookup refreshed the timer: still alive at t=14.
        assert!(m.lookup(k, SimTime::from_secs(14)).is_some());
    }

    #[test]
    fn repoint_moves_target_not_key() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        let k = key_at(2, 20, 80);
        m.memorize(k, inst(31000), 0, SimTime::ZERO);
        let moved = InstanceAddr {
            mac: MacAddr::from_id(4),
            ip: Ipv4Addr::new(10, 0, 1, 5),
            port: 31007,
        };
        assert!(m.repoint(&k, moved, 1, SimTime::from_secs(9)));
        let f = m.lookup(k, SimTime::from_secs(15)).expect("timer refreshed");
        assert_eq!((f.instance, f.cluster), (moved, 1));
        assert_eq!(m.len(), 1, "repoint never creates or drops entries");
        assert_eq!(m.flows_for(k.service), 1);
        // Absent keys report failure instead of materializing entries.
        assert!(!m.repoint(&key_at(0, 9, 80), moved, 1, SimTime::ZERO));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn entries_at_lists_one_clusters_flows_sorted() {
        let mut m = FlowMemory::new(Duration::from_secs(100));
        m.memorize(key_at(1, 30, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key_at(0, 20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key_at(2, 21, 80), inst(2), 1, SimTime::ZERO);
        m.memorize(key_at(0, 20, 81), inst(1), 0, SimTime::ZERO);
        let at0 = m.entries_at(key(20, 80).service, 0);
        let clients: Vec<u8> = at0.iter().map(|(k, _)| k.client_ip.octets()[3]).collect();
        assert_eq!(clients, vec![20, 30], "sorted by client, one service+cluster only");
        assert!(m.entries_at(key(20, 80).service, 5).is_empty());
    }

    #[test]
    fn stale_entries_do_not_hit() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        let k = key(20, 80);
        m.memorize(k, inst(1), 0, SimTime::ZERO);
        assert!(m.lookup(k, SimTime::from_secs(10)).is_none());
    }

    #[test]
    fn expire_reports_idle_services_once_empty() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        // Two clients on service :80, one on :81.
        m.memorize(key(20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key(21, 80), inst(1), 0, SimTime::from_secs(8));
        m.memorize(key(22, 81), inst(2), 1, SimTime::ZERO);

        // t=10: client 20's flow and :81's flow expire; :80 still has client
        // 21, so only :81 is reported idle.
        let idle = m.expire(SimTime::from_secs(10));
        assert_eq!(idle, vec![(ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 81), 1)]);
        assert_eq!(m.flows_for(key(20, 80).service), 1);

        // t=18: the last :80 flow expires too.
        let idle = m.expire(SimTime::from_secs(18));
        assert_eq!(idle.len(), 1);
        assert_eq!(idle[0].0.port, 80);
        assert!(m.is_empty());
    }

    /// Regression: one sweep expiring the last flows of the *same* service
    /// on two *different* clusters must report both `(service, cluster)`
    /// pairs — each cluster's instance is independently idle. The seed's
    /// sort-by-service + adjacent-dedup reporting could drop or duplicate
    /// pairs here; the `BTreeSet` makes the report exact and sorted.
    #[test]
    fn same_service_on_two_clusters_reports_both() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        let svc = key(20, 80).service;
        m.memorize(key(20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key(21, 80), inst(2), 1, SimTime::ZERO);
        // A duplicate on cluster 1 must not yield a duplicate report.
        m.memorize(key(22, 80), inst(2), 1, SimTime::ZERO);
        let idle = m.expire(SimTime::from_secs(10));
        assert_eq!(idle, vec![(svc, 0), (svc, 1)]);
        assert!(m.is_empty());
    }

    #[test]
    fn refreshed_entry_survives_its_original_deadline() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        let k = key(20, 80);
        m.memorize(k, inst(1), 0, SimTime::ZERO);
        assert!(m.lookup(k, SimTime::from_secs(6)).is_some()); // refresh
        assert!(m.expire(SimTime::from_secs(10)).is_empty(), "re-armed, not expired");
        assert_eq!(m.len(), 1);
        // The re-armed deadline is exact again.
        assert_eq!(m.next_expiry(), Some(SimTime::from_secs(16)));
        let idle = m.expire(SimTime::from_secs(16));
        assert_eq!(idle.len(), 1);
    }

    #[test]
    fn forget_service_drops_all_its_flows() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        m.memorize(key(20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key(21, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key(21, 81), inst(2), 0, SimTime::ZERO);
        assert_eq!(m.forget_service(key(20, 80).service), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.flows_for(key(20, 80).service), 0);
        assert_eq!(m.flows_for(key(21, 81).service), 1);
    }

    #[test]
    fn forget_client_drops_and_counts() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        m.memorize(key(20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key(20, 81), inst(2), 1, SimTime::ZERO);
        m.memorize(key(21, 80), inst(1), 0, SimTime::ZERO);
        assert_eq!(m.forget_client(Ipv4Addr::new(192, 168, 1, 20)), 2);
        assert_eq!(m.len(), 1);
        // The forgotten entries' wheel deadlines are cancelled: a sweep at
        // their old deadline expires only the remaining flow.
        let idle = m.expire(SimTime::from_secs(10));
        assert_eq!(idle, vec![(key(21, 80).service, 0)]);
    }

    #[test]
    fn stats_count_lookups_hits_and_expiry() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        let k = key(20, 80);
        assert!(m.lookup(k, SimTime::ZERO).is_none()); // miss
        m.memorize(k, inst(1), 0, SimTime::ZERO);
        assert!(m.lookup(k, SimTime::from_secs(1)).is_some()); // hit
        assert!(m.lookup(k, SimTime::from_secs(11)).is_none()); // stale miss
        m.expire(SimTime::from_secs(30));
        assert_eq!(
            m.stats,
            FlowMemoryStats {
                lookups: 3,
                hits: 1,
                expired: 1
            }
        );
    }

    #[test]
    fn same_pair_on_two_ingresses_are_distinct_flows() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        m.memorize(key_at(0, 20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key_at(1, 20, 80), inst(2), 1, SimTime::ZERO);
        assert_eq!(m.len(), 2);
        assert_eq!(m.lookup(key_at(0, 20, 80), SimTime::from_secs(1)).unwrap().cluster, 0);
        assert_eq!(m.lookup(key_at(1, 20, 80), SimTime::from_secs(1)).unwrap().cluster, 1);
        // Service count aggregates across ingresses (the instance serves both).
        assert_eq!(m.flows_for(key(20, 80).service), 2);
    }

    #[test]
    fn rekey_moves_entry_and_refreshes_timer() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        let old = key_at(0, 20, 80);
        m.memorize(old, inst(31000), 2, SimTime::ZERO);
        assert!(m.rekey(&old, IngressId(3), SimTime::from_secs(6)));
        assert!(m.lookup(old, SimTime::from_secs(7)).is_none(), "old key gone");
        let moved = m.lookup(key_at(3, 20, 80), SimTime::from_secs(7)).unwrap();
        assert_eq!((moved.instance.port, moved.cluster), (31000, 2));
        // Timer restarted at the rekey instant: alive past the original
        // deadline, and exactly one service remains filed.
        assert!(m.expire(SimTime::from_secs(10)).is_empty());
        assert_eq!(m.len(), 1);
        assert!(!m.rekey(&old, IngressId(4), SimTime::from_secs(8)), "already moved");
    }

    #[test]
    fn rekey_client_moves_only_that_ingress() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        m.memorize(key_at(0, 20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key_at(0, 20, 81), inst(2), 0, SimTime::ZERO);
        m.memorize(key_at(2, 20, 82), inst(3), 1, SimTime::ZERO);
        m.memorize(key_at(0, 21, 80), inst(1), 0, SimTime::ZERO);
        assert_eq!(m.rekey_client(Ipv4Addr::new(192, 168, 1, 20), IngressId(0), IngressId(1), SimTime::from_secs(1)), 2);
        let moved = m.flows_of_client_at(Ipv4Addr::new(192, 168, 1, 20), IngressId(1));
        assert_eq!(moved.len(), 2);
        assert!(moved[0].1.last_used == SimTime::from_secs(1));
        // Sorted by service for deterministic handover iteration.
        assert!(moved[0].0.service < moved[1].0.service);
        // The other ingress and the other client are untouched.
        assert_eq!(m.flows_of_client_at(Ipv4Addr::new(192, 168, 1, 20), IngressId(2)).len(), 1);
        assert_eq!(m.flows_of_client_at(Ipv4Addr::new(192, 168, 1, 21), IngressId(0)).len(), 1);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn forget_client_spans_all_ingresses() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        m.memorize(key_at(0, 20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key_at(1, 20, 81), inst(2), 1, SimTime::ZERO);
        m.memorize(key_at(1, 21, 80), inst(1), 0, SimTime::ZERO);
        assert_eq!(m.forget_client(Ipv4Addr::new(192, 168, 1, 20)), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn forget_instance_removes_exactly_its_flows_sorted() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        m.memorize(key_at(1, 21, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key_at(0, 20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key_at(0, 20, 81), inst(2), 1, SimTime::ZERO);
        let removed = m.forget_instance(inst(1));
        assert_eq!(removed.len(), 2);
        // Sorted by (client, ingress, service) for deterministic teardown.
        assert!(removed[0].0.client_ip < removed[1].0.client_ip);
        assert_eq!(m.len(), 1);
        // The invariant the repair loop relies on: the dead instance's
        // address is never returned again.
        assert!(m.lookup(key_at(0, 20, 80), SimTime::from_secs(1)).is_none());
        assert!(m.lookup(key_at(1, 21, 80), SimTime::from_secs(1)).is_none());
        assert_eq!(m.flows_for(key(20, 80).service), 0, "both :80 flows were its");
        assert_eq!(m.flows_for(key(20, 81).service), 1);
        // Cancelled wheel deadlines: a sweep expires only the survivor.
        let idle = m.expire(SimTime::from_secs(10));
        assert_eq!(idle, vec![(key(20, 81).service, 1)]);
    }

    #[test]
    fn forget_cluster_removes_every_zone_flow() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        m.memorize(key_at(0, 20, 80), inst(1), 0, SimTime::ZERO);
        m.memorize(key_at(0, 21, 81), inst(2), 0, SimTime::ZERO);
        m.memorize(key_at(1, 22, 80), inst(3), 2, SimTime::ZERO);
        let removed = m.forget_cluster(0);
        assert_eq!(removed.len(), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.lookup(key_at(1, 22, 80), SimTime::from_secs(1)).unwrap().cluster, 2);
    }

    #[test]
    fn instances_lists_distinct_triples_sorted() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        m.memorize(key_at(0, 20, 80), inst(2), 1, SimTime::ZERO);
        m.memorize(key_at(1, 21, 80), inst(2), 1, SimTime::ZERO); // duplicate triple
        m.memorize(key_at(0, 22, 81), inst(1), 0, SimTime::ZERO);
        let list = m.instances();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0], (0, inst(1), key(22, 81).service));
        assert_eq!(list[1], (1, inst(2), key(20, 80).service));
        m.forget_instance(inst(2));
        assert_eq!(m.instances().len(), 1);
    }

    #[test]
    fn next_expiry_is_earliest() {
        let mut m = FlowMemory::new(Duration::from_secs(10));
        assert!(m.next_expiry().is_none());
        m.memorize(key(20, 80), inst(1), 0, SimTime::from_secs(2));
        m.memorize(key(21, 80), inst(1), 0, SimTime::from_secs(1));
        assert_eq!(m.next_expiry(), Some(SimTime::from_secs(11)));
    }
}
