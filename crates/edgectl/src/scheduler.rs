//! The Global Scheduler (Section IV-B, Fig. 6).
//!
//! The Global Scheduler chooses the appropriate edge location and returns
//! two results:
//!
//! * **FAST** — the fastest location for the *current* request;
//! * **BEST** — the best location for *future* requests (empty when equal to
//!   FAST).
//!
//! A non-empty BEST in a different cluster than FAST is exactly *on-demand
//! deployment without waiting* (Fig. 3): answer now from FAST, deploy at
//! BEST in parallel. An empty FAST forwards the request toward the cloud.
//!
//! Decisions are **instance-granular**: a [`Choice`] names a [`Target`]
//! (`{cluster, instance}`), not just a cluster. With autoscaling off every
//! service has exactly one instance per cluster and [`Target::sole`] is the
//! only constructor in play; with autoscaling on, load-aware schedulers
//! ([`LeastConnectionsScheduler`], [`LatencyEwmaScheduler`]) split traffic
//! across a cluster's replicas using the per-instance queue state exposed in
//! [`ClusterView::instances`].
//!
//! Concrete schedulers are pluggable; [`scheduler_by_name`] mirrors the
//! reference controller's configuration-driven dynamic loading. It shares
//! the typed [`UnknownComponent`] error with
//! [`predictor_by_name`](crate::predict::predictor_by_name) so every
//! registry lookup reports the accepted names the same way.

use crate::cluster::InstanceState;
use crate::health::BreakerState;
use crate::predict::{DeploymentPredictor, RecencyPredictor};
use desim::{Duration, SimTime};
use netsim::ServiceAddr;

/// What a scheduler sees about one running (or potential) instance of the
/// service inside a cluster: the observable state of its request queue.
/// Replica 0 always exists once the service is deployed; further replicas
/// appear only when the autoscaler creates them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceView {
    /// Replica index within the cluster (0-based, stable).
    pub instance: usize,
    /// Requests currently being served (bounded by `concurrency`).
    pub in_flight: usize,
    /// Requests queued behind the concurrency limit.
    pub backlog: usize,
    /// How many requests the instance serves at once.
    pub concurrency: usize,
    /// `in_flight / concurrency` at the decision instant.
    pub utilization: f64,
    /// Exponentially weighted sojourn time (queue wait + service) of
    /// recently admitted requests; zero until the first completion.
    pub ewma_latency: Duration,
}

impl InstanceView {
    /// `true` when the instance cannot start another request immediately —
    /// a new admission would queue (or be rejected once the backlog fills).
    pub fn at_capacity(&self) -> bool {
        self.in_flight >= self.concurrency
    }

    /// Jobs queued or in service — the load a new admission sorts behind.
    pub fn queue_depth(&self) -> usize {
        self.in_flight + self.backlog
    }
}

/// What the scheduler sees about one candidate cluster.
#[derive(Clone, Debug)]
pub struct ClusterView {
    /// Cluster name.
    pub name: String,
    /// `"docker"` / `"k8s"`.
    pub kind: &'static str,
    /// Distance (one-way latency) from the requesting client's ingress.
    pub distance: Duration,
    /// Whether the service's images are cached there.
    pub image_cached: bool,
    /// Deployment state of the requested service there.
    pub state: InstanceState,
    /// Services currently scaled up (load).
    pub load: usize,
    /// The cluster's circuit-breaker state. Dispatch withholds unavailable
    /// clusters from its candidate views entirely, but call sites that build
    /// views themselves (migration target selection) rely on load-aware
    /// schedulers never picking an [`BreakerState::Open`] cluster.
    pub breaker: BreakerState,
    /// Per-replica queue state for the service being placed. Empty when
    /// instance tracking is off (the default) or the service is not ready
    /// here; then the cluster behaves as a single unobserved instance 0.
    pub instances: Vec<InstanceView>,
}

/// An instance-granular placement: which cluster, and which replica within
/// it. The unit a [`Choice`] is made of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Target {
    /// Index into the candidate cluster list.
    pub cluster: usize,
    /// Replica index within that cluster.
    pub instance: usize,
}

impl Target {
    /// The cluster's sole (or first) replica — the conversion every
    /// cluster-granular call site goes through explicitly, so a reviewer can
    /// grep for the sites that do **not** pick an instance by load.
    pub fn sole(cluster: usize) -> Target {
        Target { cluster, instance: 0 }
    }
}

/// The scheduler's decision: instance-granular targets into the candidate
/// list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Where to serve the *current* request; `None` = forward to the cloud.
    pub fast: Option<Target>,
    /// Where *future* requests should go; `None` = same as FAST.
    pub best: Option<Target>,
}

impl Choice {
    /// `true` if this decision triggers on-demand deployment *without*
    /// waiting (a BEST cluster differing from FAST's). Deployment is
    /// cluster-granular: differing replicas of one cluster never trigger it.
    pub fn is_without_waiting(&self) -> bool {
        self.best.is_some() && self.best.map(|t| t.cluster) != self.fast.map(|t| t.cluster)
    }
}

/// A lightweight reference to the service being placed — enough for a
/// scheduler to key decisions on *what* it is placing without dragging the
/// full deployment manifest through the scheduling path.
#[derive(Clone, Copy, Debug)]
pub struct ServiceRef<'a> {
    /// The service's public (cloud) address — its identity.
    pub addr: ServiceAddr,
    /// The service name from its annotated manifest.
    pub name: &'a str,
}

/// Why the Dispatcher is consulting the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// First packet of a flow with no memorized redirect.
    NewFlow,
    /// A memorized redirect went stale (the instance scaled down or
    /// vanished), so the flow is being re-placed.
    Rescheduled,
    /// The client moved to a new ingress (gNB) and the session is being
    /// handed over: the scheduler decides whether it stays anchored to the
    /// old zone's instance or re-dispatches to the new zone's nearer edge.
    /// `clusters[i].distance` is measured from the **new** ingress.
    Handover,
}

impl RequestClass {
    /// Short lowercase label (`"new-flow"` / `"rescheduled"` /
    /// `"handover"`), used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::NewFlow => "new-flow",
            RequestClass::Rescheduled => "rescheduled",
            RequestClass::Handover => "handover",
        }
    }
}

/// Everything a [`GlobalScheduler`] sees for one decision: the candidate
/// clusters plus the service being placed, the simulated instant, and why
/// the request reached the scheduler. This is also the tracer's single
/// well-defined decision point — one context in, one [`Choice`] out.
#[derive(Clone, Copy, Debug)]
pub struct SchedulingContext<'a> {
    /// Candidate clusters, in the controller's stable order.
    pub clusters: &'a [ClusterView],
    /// The service being placed.
    pub service: ServiceRef<'a>,
    /// The simulated instant of the decision.
    pub now: SimTime,
    /// Why the scheduler is being consulted.
    pub class: RequestClass,
}

/// A Global Scheduler implementation.
pub trait GlobalScheduler: Send {
    /// The name this scheduler is loaded under.
    fn name(&self) -> &str;

    /// Chooses FAST/BEST for a request. `ctx.clusters` is never reordered
    /// between calls for one controller, so indices are stable.
    fn choose(&mut self, ctx: &SchedulingContext) -> Choice;
}

fn nearest(clusters: &[ClusterView], pred: impl Fn(&ClusterView) -> bool) -> Option<usize> {
    clusters
        .iter()
        .enumerate()
        .filter(|(_, c)| pred(c))
        .min_by_key(|(_, c)| c.distance)
        .map(|(i, _)| i)
}

/// The least-loaded replica within one cluster: fewest queued-or-in-service
/// jobs, preferring instances below their concurrency limit. Falls back to
/// replica 0 when the cluster exposes no instance state.
pub fn least_loaded(cluster: &ClusterView) -> usize {
    cluster
        .instances
        .iter()
        .min_by_key(|v| (v.at_capacity(), v.queue_depth(), v.instance))
        .map(|v| v.instance)
        .unwrap_or(0)
}

/// Iterates every schedulable (cluster, instance-view) pair of the ready
/// clusters. A ready cluster without instance state contributes one
/// synthetic idle view for replica 0, so load-aware schedulers degrade to
/// cluster-granular behaviour when tracking is off.
fn ready_instances<'a>(
    clusters: &'a [ClusterView],
) -> impl Iterator<Item = (usize, &'a ClusterView, InstanceView)> + 'a {
    const IDLE: InstanceView = InstanceView {
        instance: 0,
        in_flight: 0,
        backlog: 0,
        concurrency: usize::MAX,
        utilization: 0.0,
        ewma_latency: Duration::ZERO,
    };
    clusters
        .iter()
        .enumerate()
        .filter(|(_, c)| c.state.is_ready() && c.breaker != BreakerState::Open)
        .flat_map(|(i, c)| {
            let views: Vec<InstanceView> =
                if c.instances.is_empty() { vec![IDLE] } else { c.instances.clone() };
            views.into_iter().map(move |v| (i, c, v))
        })
}

/// The default scheduler: always serve from the nearest cluster, deploying
/// there if needed — on-demand deployment **with waiting** (Fig. 5). The
/// evaluation's primary configuration.
#[derive(Default)]
pub struct ProximityScheduler;

impl GlobalScheduler for ProximityScheduler {
    fn name(&self) -> &str {
        "proximity"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        Choice {
            fast: nearest(ctx.clusters, |_| true).map(Target::sole),
            best: None,
        }
    }
}

/// The low-response-time scheduler: serve the current request from the
/// nearest cluster that *already has a ready instance* (or the cloud if
/// none), while deploying at the nearest cluster for future requests —
/// on-demand deployment **without waiting** (Fig. 3).
#[derive(Default)]
pub struct LatencyAwareScheduler;

impl GlobalScheduler for LatencyAwareScheduler {
    fn name(&self) -> &str {
        "latency-aware"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        let optimal = nearest(ctx.clusters, |_| true);
        let running = nearest(ctx.clusters, |c| c.state.is_ready());
        match (running, optimal) {
            // An instance is already running at the optimal spot: done.
            (Some(r), Some(o)) if r == o => Choice { fast: Some(Target::sole(r)), best: None },
            // Serve from the farther running instance, deploy at the optimum.
            (Some(r), o) => Choice {
                fast: Some(Target::sole(r)),
                best: o.filter(|&x| x != r).map(Target::sole),
            },
            // Nothing runs anywhere: current request goes to the cloud while
            // the optimal edge deploys.
            (None, o) => Choice { fast: None, best: o.map(Target::sole) },
        }
    }
}

/// Spreads services round-robin over clusters (load-balancing baseline).
#[derive(Default)]
pub struct RoundRobinScheduler {
    next: usize,
}

impl GlobalScheduler for RoundRobinScheduler {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        if ctx.clusters.is_empty() {
            return Choice { fast: None, best: None };
        }
        // Keep serving from a cluster that already runs the instance.
        if let Some(i) = ctx.clusters.iter().position(|c| c.state.is_ready()) {
            return Choice { fast: Some(Target::sole(i)), best: None };
        }
        let i = self.next % ctx.clusters.len();
        self.next += 1;
        Choice { fast: Some(Target::sole(i)), best: None }
    }
}

/// Section VII's hybrid: answer the first request through a **Docker**
/// cluster (fast start), while deploying on **Kubernetes** in the background
/// for automated management of future requests. Once any instance is ready,
/// the nearest ready one serves — give the K8s cluster a (marginally)
/// smaller distance to hand steady-state traffic over to it.
#[derive(Default)]
pub struct DockerFirstScheduler;

impl GlobalScheduler for DockerFirstScheduler {
    fn name(&self) -> &str {
        "docker-first"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        if let Some(r) = nearest(ctx.clusters, |c| c.state.is_ready()) {
            return Choice { fast: Some(Target::sole(r)), best: None };
        }
        let docker = nearest(ctx.clusters, |c| c.kind == "docker");
        let k8s = nearest(ctx.clusters, |c| c.kind == "k8s");
        match (docker, k8s) {
            (Some(d), k) => Choice { fast: Some(Target::sole(d)), best: k.map(Target::sole) },
            (None, k) => Choice { fast: k.map(Target::sole), best: None },
        }
    }
}

/// Never uses the edge: every request goes to the cloud (the no-MEC
/// baseline the transparent approach is compared against).
#[derive(Default)]
pub struct CloudOnlyScheduler;

impl GlobalScheduler for CloudOnlyScheduler {
    fn name(&self) -> &str {
        "cloud-only"
    }

    fn choose(&mut self, _ctx: &SchedulingContext) -> Choice {
        Choice { fast: None, best: None }
    }
}

/// Uniform-random spreading over ready replicas: the load-blind control arm
/// of the scheduler tournament. Uses its own deterministic generator (a
/// fixed-seed LCG) so tournament runs are byte-identical — it never touches
/// the simulation's RNG streams.
pub struct RandomScheduler {
    state: u64,
}

impl Default for RandomScheduler {
    fn default() -> Self {
        RandomScheduler { state: 0x9E37_79B9_7F4A_7C15 }
    }
}

impl RandomScheduler {
    fn next(&mut self) -> u64 {
        // Knuth's MMIX LCG; the top bits are the usable ones.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 33
    }
}

impl GlobalScheduler for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        let ready: Vec<usize> = ctx
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state.is_ready())
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            // Nothing runs yet: deploy-with-waiting at the nearest cluster.
            return Choice {
                fast: nearest(ctx.clusters, |_| true).map(Target::sole),
                best: None,
            };
        }
        let cluster = ready[(self.next() as usize) % ready.len()];
        let n = ctx.clusters[cluster].instances.len().max(1);
        let instance = (self.next() as usize) % n;
        Choice { fast: Some(Target { cluster, instance }), best: None }
    }
}

/// Classic least-connections balancing at instance granularity: admit to
/// the ready replica with the fewest queued-or-in-service requests,
/// preferring replicas below their concurrency limit, breaking ties by
/// distance then stable index. Never picks a saturated replica while a
/// sibling has headroom.
#[derive(Default)]
pub struct LeastConnectionsScheduler;

impl GlobalScheduler for LeastConnectionsScheduler {
    fn name(&self) -> &str {
        "least-connections"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        let pick = ready_instances(ctx.clusters)
            .min_by_key(|(i, c, v)| (v.at_capacity(), v.queue_depth(), c.distance, *i, v.instance))
            .map(|(i, _, v)| Target { cluster: i, instance: v.instance });
        match pick {
            Some(t) => Choice { fast: Some(t), best: None },
            // Nothing ready anywhere: deploy-with-waiting at the nearest
            // cluster whose breaker has not tripped.
            None => Choice {
                fast: nearest(ctx.clusters, |c| c.breaker != BreakerState::Open)
                    .map(Target::sole),
                best: None,
            },
        }
    }
}

/// Latency-EWMA balancing: scores each ready replica by expected answer
/// time — network round trip plus the replica's observed sojourn EWMA plus
/// the wait implied by its current queue depth — and admits to the lowest
/// score. Reacts to *measured* slowness, not just queue counts.
#[derive(Default)]
pub struct LatencyEwmaScheduler;

impl GlobalScheduler for LatencyEwmaScheduler {
    fn name(&self) -> &str {
        "latency-ewma"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        // A replica with no history yet is estimated at 5 ms per queued job
        // so a cold replica still pays for a deep queue.
        const COLD_ESTIMATE: Duration = Duration::from_millis(5);
        let pick = ready_instances(ctx.clusters)
            .min_by_key(|(i, c, v)| {
                let per_job =
                    if v.ewma_latency.is_zero() { COLD_ESTIMATE } else { v.ewma_latency };
                let score = 2 * c.distance.as_nanos()
                    + v.ewma_latency.as_nanos()
                    + v.queue_depth() as u64 * per_job.as_nanos();
                (score, *i, v.instance)
            })
            .map(|(i, _, v)| Target { cluster: i, instance: v.instance });
        match pick {
            Some(t) => Choice { fast: Some(t), best: None },
            None => Choice {
                fast: nearest(ctx.clusters, |c| c.breaker != BreakerState::Open)
                    .map(Target::sole),
                best: None,
            },
        }
    }
}

/// Wires the [`DeploymentPredictor`] hook into placement: serves like
/// least-connections, but when the predictor nominates the service as hot
/// and the optimal (nearest) cluster is not where the request is served
/// from, it asks for a background deployment there — prediction-driven
/// on-demand deployment without waiting.
pub struct PredictiveScheduler {
    predictor: Box<dyn DeploymentPredictor>,
}

impl PredictiveScheduler {
    /// Builds the scheduler around any predictor implementation.
    pub fn new(predictor: Box<dyn DeploymentPredictor>) -> PredictiveScheduler {
        PredictiveScheduler { predictor }
    }
}

impl Default for PredictiveScheduler {
    fn default() -> Self {
        PredictiveScheduler::new(Box::new(RecencyPredictor::new(Duration::from_secs(60))))
    }
}

impl GlobalScheduler for PredictiveScheduler {
    fn name(&self) -> &str {
        "predictive"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        self.predictor.observe(ctx.service.addr, ctx.now);
        let fast = ready_instances(ctx.clusters)
            .min_by_key(|(i, c, v)| (v.at_capacity(), v.queue_depth(), c.distance, *i, v.instance))
            .map(|(i, _, v)| Target { cluster: i, instance: v.instance });
        let Some(fast) = fast else {
            return Choice {
                fast: nearest(ctx.clusters, |_| true).map(Target::sole),
                best: None,
            };
        };
        let optimal = nearest(ctx.clusters, |_| true);
        let hot = self.predictor.predict(ctx.now).contains(&ctx.service.addr);
        let best = optimal
            .filter(|&o| hot && o != fast.cluster)
            .map(Target::sole);
        Choice { fast: Some(fast), best }
    }
}

/// Names [`scheduler_by_name`] accepts, in documentation order.
pub const KNOWN_SCHEDULERS: &[&str] = &[
    "proximity",
    "latency-aware",
    "round-robin",
    "cloud-only",
    "docker-first",
    "random",
    "least-connections",
    "latency-ewma",
    "predictive",
];

/// A registry lookup that no built-in component answers to. Shared by the
/// scheduler and predictor registries; the message names the component kind
/// and lists the accepted names so a YAML typo points straight at the fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownComponent {
    /// What was being looked up (`"scheduler"` / `"predictor"`).
    pub kind: &'static str,
    /// The name that failed to resolve.
    pub requested: String,
    /// Every name the registry accepts, in documentation order.
    pub known: &'static [&'static str],
}

impl std::fmt::Display for UnknownComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown {} `{}` (known: {})",
            self.kind,
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownComponent {}

/// Loads a scheduler by its configured name (the controller's
/// `scheduler = "..."` configuration key).
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn GlobalScheduler>, UnknownComponent> {
    match name {
        "proximity" => Ok(Box::<ProximityScheduler>::default()),
        "latency-aware" => Ok(Box::<LatencyAwareScheduler>::default()),
        "round-robin" => Ok(Box::<RoundRobinScheduler>::default()),
        "cloud-only" => Ok(Box::<CloudOnlyScheduler>::default()),
        "docker-first" => Ok(Box::<DockerFirstScheduler>::default()),
        "random" => Ok(Box::<RandomScheduler>::default()),
        "least-connections" => Ok(Box::<LeastConnectionsScheduler>::default()),
        "latency-ewma" => Ok(Box::<LatencyEwmaScheduler>::default()),
        "predictive" => Ok(Box::<PredictiveScheduler>::default()),
        _ => Err(UnknownComponent {
            kind: "scheduler",
            requested: name.to_owned(),
            known: KNOWN_SCHEDULERS,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::InstanceAddr;
    use netsim::addr::{Ipv4Addr, MacAddr};

    fn ctx<'a>(clusters: &'a [ClusterView]) -> SchedulingContext<'a> {
        SchedulingContext {
            clusters,
            service: ServiceRef {
                addr: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
                name: "svc",
            },
            now: SimTime::ZERO,
            class: RequestClass::NewFlow,
        }
    }

    fn view(name: &str, us: u64, ready: bool) -> ClusterView {
        ClusterView {
            name: name.into(),
            kind: "docker",
            distance: Duration::from_micros(us),
            image_cached: true,
            state: if ready {
                InstanceState::Ready(InstanceAddr {
                    mac: MacAddr::from_id(1),
                    ip: Ipv4Addr::new(10, 0, 0, 1),
                    port: 31000,
                })
            } else {
                InstanceState::NotDeployed
            },
            load: 0,
            breaker: BreakerState::Closed,
            instances: Vec::new(),
        }
    }

    fn iview(instance: usize, in_flight: usize, backlog: usize, concurrency: usize) -> InstanceView {
        InstanceView {
            instance,
            in_flight,
            backlog,
            concurrency,
            utilization: in_flight as f64 / concurrency as f64,
            ewma_latency: Duration::ZERO,
        }
    }

    #[test]
    fn proximity_always_picks_nearest() {
        let mut s = ProximityScheduler;
        let clusters = [view("far", 500, true), view("near", 100, false)];
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c, Choice { fast: Some(Target::sole(1)), best: None });
        assert!(!c.is_without_waiting());
        // Empty cluster list → cloud.
        assert_eq!(s.choose(&ctx(&[])), Choice { fast: None, best: None });
    }

    #[test]
    fn latency_aware_uses_running_far_instance_and_deploys_near() {
        let mut s = LatencyAwareScheduler;
        // Near cluster idle, far cluster running: answer from far, deploy near.
        let clusters = [view("far", 500, true), view("near", 100, false)];
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c, Choice { fast: Some(Target::sole(0)), best: Some(Target::sole(1)) });
        assert!(c.is_without_waiting());
    }

    #[test]
    fn latency_aware_nothing_running_goes_to_cloud_and_deploys() {
        let mut s = LatencyAwareScheduler;
        let clusters = [view("far", 500, false), view("near", 100, false)];
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c, Choice { fast: None, best: Some(Target::sole(1)) });
        assert!(c.is_without_waiting());
    }

    #[test]
    fn latency_aware_optimal_already_running_is_terminal() {
        let mut s = LatencyAwareScheduler;
        let clusters = [view("far", 500, false), view("near", 100, true)];
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c, Choice { fast: Some(Target::sole(1)), best: None });
        assert!(!c.is_without_waiting());
    }

    #[test]
    fn round_robin_rotates_but_sticks_to_running() {
        let mut s = RoundRobinScheduler::default();
        let idle = [view("a", 100, false), view("b", 100, false)];
        assert_eq!(s.choose(&ctx(&idle)).fast, Some(Target::sole(0)));
        assert_eq!(s.choose(&ctx(&idle)).fast, Some(Target::sole(1)));
        assert_eq!(s.choose(&ctx(&idle)).fast, Some(Target::sole(0)));
        let with_running = [view("a", 100, false), view("b", 100, true)];
        assert_eq!(s.choose(&ctx(&with_running)).fast, Some(Target::sole(1)));
    }

    #[test]
    fn cloud_only_never_uses_edge() {
        let mut s = CloudOnlyScheduler;
        let clusters = [view("near", 100, true)];
        assert_eq!(s.choose(&ctx(&clusters)), Choice { fast: None, best: None });
    }

    #[test]
    fn random_is_deterministic_and_stays_on_ready_clusters() {
        let clusters = [view("a", 100, false), view("b", 200, true), view("c", 300, true)];
        let picks: Vec<Choice> = {
            let mut s = RandomScheduler::default();
            (0..32).map(|_| s.choose(&ctx(&clusters))).collect()
        };
        let again: Vec<Choice> = {
            let mut s = RandomScheduler::default();
            (0..32).map(|_| s.choose(&ctx(&clusters))).collect()
        };
        assert_eq!(picks, again, "fixed-seed generator replays exactly");
        for c in &picks {
            let t = c.fast.expect("ready clusters exist");
            assert!(t.cluster == 1 || t.cluster == 2, "never the idle cluster");
        }
        // Nothing ready: falls back to deploy-with-waiting at the nearest.
        let idle = [view("a", 100, false), view("b", 50, false)];
        let mut s = RandomScheduler::default();
        assert_eq!(s.choose(&ctx(&idle)).fast, Some(Target::sole(1)));
    }

    #[test]
    fn least_connections_picks_emptiest_replica() {
        let mut near = view("near", 100, true);
        near.instances = vec![iview(0, 4, 2, 4), iview(1, 2, 0, 4)];
        let mut far = view("far", 500, true);
        far.instances = vec![iview(0, 0, 0, 4)];
        let clusters = [near, far];
        let mut s = LeastConnectionsScheduler;
        // The far replica is idle; both near replicas hold work.
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c.fast, Some(Target { cluster: 1, instance: 0 }));
    }

    #[test]
    fn least_connections_avoids_saturated_replica_with_idle_sibling() {
        let mut near = view("near", 100, true);
        // Replica 0 saturated (at its concurrency limit), replica 1 idle.
        near.instances = vec![iview(0, 4, 3, 4), iview(1, 0, 0, 4)];
        let clusters = [near];
        let mut s = LeastConnectionsScheduler;
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c.fast, Some(Target { cluster: 0, instance: 1 }));
    }

    #[test]
    fn open_breaker_excludes_a_ready_cluster_from_load_aware_choices() {
        // The near cluster is ready, idle — and its breaker is Open. Both
        // load-aware schedulers must take the far (worse) cluster instead:
        // a migration target selection never lands on a tripped zone.
        let mut near = view("near", 100, true);
        near.breaker = BreakerState::Open;
        near.instances = vec![iview(0, 0, 0, 4)];
        let mut far = view("far", 500, true);
        far.instances = vec![iview(0, 3, 1, 4)];
        let clusters = [near, far];
        let c = LeastConnectionsScheduler.choose(&ctx(&clusters));
        assert_eq!(c.fast, Some(Target { cluster: 1, instance: 0 }));
        let c = LatencyEwmaScheduler.choose(&ctx(&clusters));
        assert_eq!(c.fast, Some(Target { cluster: 1, instance: 0 }));
        // Every ready cluster tripped → cloud, not the open zone.
        let mut only = view("near", 100, true);
        only.breaker = BreakerState::Open;
        let c = LeastConnectionsScheduler.choose(&ctx(&[only]));
        assert_eq!(c.fast, None);
    }

    #[test]
    fn latency_ewma_penalizes_slow_and_deep_queues() {
        let mut near = view("near", 100, true);
        near.instances = vec![
            // Deep queue: pays a per-job estimate despite zero EWMA.
            iview(0, 4, 4, 4),
            iview(1, 0, 0, 4),
        ];
        let mut s = LatencyEwmaScheduler;
        let c = s.choose(&ctx(&[near.clone()]));
        assert_eq!(c.fast, Some(Target { cluster: 0, instance: 1 }));
        // A measured-slow replica loses to a fresh one even at equal depth.
        near.instances[1].ewma_latency = Duration::from_millis(200);
        near.instances[1].in_flight = 1;
        near.instances[0] = iview(0, 1, 0, 4);
        let c = s.choose(&ctx(&[near]));
        assert_eq!(c.fast, Some(Target { cluster: 0, instance: 0 }));
    }

    #[test]
    fn predictive_deploys_at_optimum_for_hot_services() {
        let mut s = PredictiveScheduler::default();
        // Only the far cluster runs the service; the near one is optimal.
        let clusters = [view("far", 500, true), view("near", 100, false)];
        // First sight: the recency predictor already nominates the service,
        // so the optimum gets a background deployment.
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c.fast, Some(Target::sole(0)));
        assert_eq!(c.best, Some(Target::sole(1)));
        assert!(c.is_without_waiting());
        // Once the optimum is ready, the decision is terminal.
        let both = [view("far", 500, true), view("near", 100, true)];
        let c = s.choose(&ctx(&both));
        assert_eq!(c.fast, Some(Target::sole(1)));
        assert_eq!(c.best, None);
    }

    #[test]
    fn target_sole_is_replica_zero() {
        assert_eq!(Target::sole(3), Target { cluster: 3, instance: 0 });
    }

    #[test]
    fn dynamic_loading_by_name() {
        for name in KNOWN_SCHEDULERS {
            let s = scheduler_by_name(name).unwrap();
            assert_eq!(s.name(), *name);
        }
        let err = scheduler_by_name("nope").err().unwrap();
        assert_eq!(err.requested, "nope");
        assert_eq!(err.kind, "scheduler");
        let msg = err.to_string();
        assert!(msg.contains("unknown scheduler `nope`"), "{msg}");
        for name in KNOWN_SCHEDULERS {
            assert!(msg.contains(name), "error must list `{name}`: {msg}");
        }
    }

    #[test]
    fn context_exposes_request_metadata() {
        // Schedulers are no longer blind to what they place: the context
        // carries the service, the instant, and the request class.
        let clusters = [view("near", 100, false)];
        let c = ctx(&clusters);
        assert_eq!(c.service.name, "svc");
        assert_eq!(c.now, SimTime::ZERO);
        assert_eq!(c.class.label(), "new-flow");
        assert_eq!(RequestClass::Rescheduled.label(), "rescheduled");
        assert_eq!(RequestClass::Handover.label(), "handover");
    }
}
