//! The Global Scheduler (Section IV-B, Fig. 6).
//!
//! The Global Scheduler chooses the appropriate edge **cluster** and returns
//! two results:
//!
//! * **FAST** — the fastest location for the *current* request;
//! * **BEST** — the best location for *future* requests (empty when equal to
//!   FAST).
//!
//! A non-empty BEST different from FAST is exactly *on-demand deployment
//! without waiting* (Fig. 3): answer now from FAST, deploy at BEST in
//! parallel. An empty FAST forwards the request toward the cloud.
//!
//! Concrete schedulers are pluggable; [`scheduler_by_name`] mirrors the
//! reference controller's configuration-driven dynamic loading.

use crate::cluster::InstanceState;
use desim::{Duration, SimTime};
use netsim::ServiceAddr;

/// What the scheduler sees about one candidate cluster.
#[derive(Clone, Debug)]
pub struct ClusterView {
    /// Cluster name.
    pub name: String,
    /// `"docker"` / `"k8s"`.
    pub kind: &'static str,
    /// Distance (one-way latency) from the requesting client's ingress.
    pub distance: Duration,
    /// Whether the service's images are cached there.
    pub image_cached: bool,
    /// Deployment state of the requested service there.
    pub state: InstanceState,
    /// Services currently scaled up (load).
    pub load: usize,
}

/// The scheduler's decision: indices into the candidate list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Where to serve the *current* request; `None` = forward to the cloud.
    pub fast: Option<usize>,
    /// Where *future* requests should go; `None` = same as FAST.
    pub best: Option<usize>,
}

impl Choice {
    /// `true` if this decision triggers on-demand deployment *without*
    /// waiting (a BEST differing from FAST).
    pub fn is_without_waiting(&self) -> bool {
        self.best.is_some() && self.best != self.fast
    }
}

/// A lightweight reference to the service being placed — enough for a
/// scheduler to key decisions on *what* it is placing without dragging the
/// full deployment manifest through the scheduling path.
#[derive(Clone, Copy, Debug)]
pub struct ServiceRef<'a> {
    /// The service's public (cloud) address — its identity.
    pub addr: ServiceAddr,
    /// The service name from its annotated manifest.
    pub name: &'a str,
}

/// Why the Dispatcher is consulting the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// First packet of a flow with no memorized redirect.
    NewFlow,
    /// A memorized redirect went stale (the instance scaled down or
    /// vanished), so the flow is being re-placed.
    Rescheduled,
    /// The client moved to a new ingress (gNB) and the session is being
    /// handed over: the scheduler decides whether it stays anchored to the
    /// old zone's instance or re-dispatches to the new zone's nearer edge.
    /// `clusters[i].distance` is measured from the **new** ingress.
    Handover,
}

impl RequestClass {
    /// Short lowercase label (`"new-flow"` / `"rescheduled"` /
    /// `"handover"`), used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::NewFlow => "new-flow",
            RequestClass::Rescheduled => "rescheduled",
            RequestClass::Handover => "handover",
        }
    }
}

/// Everything a [`GlobalScheduler`] sees for one decision: the candidate
/// clusters plus the service being placed, the simulated instant, and why
/// the request reached the scheduler. This is also the tracer's single
/// well-defined decision point — one context in, one [`Choice`] out.
#[derive(Clone, Copy, Debug)]
pub struct SchedulingContext<'a> {
    /// Candidate clusters, in the controller's stable order.
    pub clusters: &'a [ClusterView],
    /// The service being placed.
    pub service: ServiceRef<'a>,
    /// The simulated instant of the decision.
    pub now: SimTime,
    /// Why the scheduler is being consulted.
    pub class: RequestClass,
}

/// A Global Scheduler implementation.
pub trait GlobalScheduler: Send {
    /// The name this scheduler is loaded under.
    fn name(&self) -> &str;

    /// Chooses FAST/BEST for a request. `ctx.clusters` is never reordered
    /// between calls for one controller, so indices are stable.
    fn choose(&mut self, ctx: &SchedulingContext) -> Choice;
}

fn nearest(clusters: &[ClusterView], pred: impl Fn(&ClusterView) -> bool) -> Option<usize> {
    clusters
        .iter()
        .enumerate()
        .filter(|(_, c)| pred(c))
        .min_by_key(|(_, c)| c.distance)
        .map(|(i, _)| i)
}

/// The default scheduler: always serve from the nearest cluster, deploying
/// there if needed — on-demand deployment **with waiting** (Fig. 5). The
/// evaluation's primary configuration.
#[derive(Default)]
pub struct ProximityScheduler;

impl GlobalScheduler for ProximityScheduler {
    fn name(&self) -> &str {
        "proximity"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        Choice {
            fast: nearest(ctx.clusters, |_| true),
            best: None,
        }
    }
}

/// The low-response-time scheduler: serve the current request from the
/// nearest cluster that *already has a ready instance* (or the cloud if
/// none), while deploying at the nearest cluster for future requests —
/// on-demand deployment **without waiting** (Fig. 3).
#[derive(Default)]
pub struct LatencyAwareScheduler;

impl GlobalScheduler for LatencyAwareScheduler {
    fn name(&self) -> &str {
        "latency-aware"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        let optimal = nearest(ctx.clusters, |_| true);
        let running = nearest(ctx.clusters, |c| c.state.is_ready());
        match (running, optimal) {
            // An instance is already running at the optimal spot: done.
            (Some(r), Some(o)) if r == o => Choice { fast: Some(r), best: None },
            // Serve from the farther running instance, deploy at the optimum.
            (Some(r), o) => Choice { fast: Some(r), best: o.filter(|&x| x != r) },
            // Nothing runs anywhere: current request goes to the cloud while
            // the optimal edge deploys.
            (None, o) => Choice { fast: None, best: o },
        }
    }
}

/// Spreads services round-robin over clusters (load-balancing baseline).
#[derive(Default)]
pub struct RoundRobinScheduler {
    next: usize,
}

impl GlobalScheduler for RoundRobinScheduler {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        if ctx.clusters.is_empty() {
            return Choice { fast: None, best: None };
        }
        // Keep serving from a cluster that already runs the instance.
        if let Some(i) = ctx.clusters.iter().position(|c| c.state.is_ready()) {
            return Choice { fast: Some(i), best: None };
        }
        let i = self.next % ctx.clusters.len();
        self.next += 1;
        Choice { fast: Some(i), best: None }
    }
}

/// Section VII's hybrid: answer the first request through a **Docker**
/// cluster (fast start), while deploying on **Kubernetes** in the background
/// for automated management of future requests. Once any instance is ready,
/// the nearest ready one serves — give the K8s cluster a (marginally)
/// smaller distance to hand steady-state traffic over to it.
#[derive(Default)]
pub struct DockerFirstScheduler;

impl GlobalScheduler for DockerFirstScheduler {
    fn name(&self) -> &str {
        "docker-first"
    }

    fn choose(&mut self, ctx: &SchedulingContext) -> Choice {
        if let Some(r) = nearest(ctx.clusters, |c| c.state.is_ready()) {
            return Choice { fast: Some(r), best: None };
        }
        let docker = nearest(ctx.clusters, |c| c.kind == "docker");
        let k8s = nearest(ctx.clusters, |c| c.kind == "k8s");
        match (docker, k8s) {
            (Some(d), k) => Choice { fast: Some(d), best: k },
            (None, k) => Choice { fast: k, best: None },
        }
    }
}

/// Never uses the edge: every request goes to the cloud (the no-MEC
/// baseline the transparent approach is compared against).
#[derive(Default)]
pub struct CloudOnlyScheduler;

impl GlobalScheduler for CloudOnlyScheduler {
    fn name(&self) -> &str {
        "cloud-only"
    }

    fn choose(&mut self, _ctx: &SchedulingContext) -> Choice {
        Choice { fast: None, best: None }
    }
}

/// Names [`scheduler_by_name`] accepts, in documentation order.
pub const KNOWN_SCHEDULERS: &[&str] =
    &["proximity", "latency-aware", "round-robin", "cloud-only", "docker-first"];

/// A scheduler name no built-in answers to. The message lists the known
/// names so a YAML typo points straight at the fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownScheduler {
    /// The name that failed to resolve.
    pub requested: String,
}

impl std::fmt::Display for UnknownScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheduler `{}` (known: {})",
            self.requested,
            KNOWN_SCHEDULERS.join(", ")
        )
    }
}

impl std::error::Error for UnknownScheduler {}

/// Loads a scheduler by its configured name (the controller's
/// `scheduler = "..."` configuration key).
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn GlobalScheduler>, UnknownScheduler> {
    match name {
        "proximity" => Ok(Box::<ProximityScheduler>::default()),
        "latency-aware" => Ok(Box::<LatencyAwareScheduler>::default()),
        "round-robin" => Ok(Box::<RoundRobinScheduler>::default()),
        "cloud-only" => Ok(Box::<CloudOnlyScheduler>::default()),
        "docker-first" => Ok(Box::<DockerFirstScheduler>::default()),
        _ => Err(UnknownScheduler {
            requested: name.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::InstanceAddr;
    use netsim::addr::{Ipv4Addr, MacAddr};

    fn ctx<'a>(clusters: &'a [ClusterView]) -> SchedulingContext<'a> {
        SchedulingContext {
            clusters,
            service: ServiceRef {
                addr: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
                name: "svc",
            },
            now: SimTime::ZERO,
            class: RequestClass::NewFlow,
        }
    }

    fn view(name: &str, us: u64, ready: bool) -> ClusterView {
        ClusterView {
            name: name.into(),
            kind: "docker",
            distance: Duration::from_micros(us),
            image_cached: true,
            state: if ready {
                InstanceState::Ready(InstanceAddr {
                    mac: MacAddr::from_id(1),
                    ip: Ipv4Addr::new(10, 0, 0, 1),
                    port: 31000,
                })
            } else {
                InstanceState::NotDeployed
            },
            load: 0,
        }
    }

    #[test]
    fn proximity_always_picks_nearest() {
        let mut s = ProximityScheduler;
        let clusters = [view("far", 500, true), view("near", 100, false)];
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c, Choice { fast: Some(1), best: None });
        assert!(!c.is_without_waiting());
        // Empty cluster list → cloud.
        assert_eq!(s.choose(&ctx(&[])), Choice { fast: None, best: None });
    }

    #[test]
    fn latency_aware_uses_running_far_instance_and_deploys_near() {
        let mut s = LatencyAwareScheduler;
        // Near cluster idle, far cluster running: answer from far, deploy near.
        let clusters = [view("far", 500, true), view("near", 100, false)];
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c, Choice { fast: Some(0), best: Some(1) });
        assert!(c.is_without_waiting());
    }

    #[test]
    fn latency_aware_nothing_running_goes_to_cloud_and_deploys() {
        let mut s = LatencyAwareScheduler;
        let clusters = [view("far", 500, false), view("near", 100, false)];
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c, Choice { fast: None, best: Some(1) });
        assert!(c.is_without_waiting());
    }

    #[test]
    fn latency_aware_optimal_already_running_is_terminal() {
        let mut s = LatencyAwareScheduler;
        let clusters = [view("far", 500, false), view("near", 100, true)];
        let c = s.choose(&ctx(&clusters));
        assert_eq!(c, Choice { fast: Some(1), best: None });
        assert!(!c.is_without_waiting());
    }

    #[test]
    fn round_robin_rotates_but_sticks_to_running() {
        let mut s = RoundRobinScheduler::default();
        let idle = [view("a", 100, false), view("b", 100, false)];
        assert_eq!(s.choose(&ctx(&idle)).fast, Some(0));
        assert_eq!(s.choose(&ctx(&idle)).fast, Some(1));
        assert_eq!(s.choose(&ctx(&idle)).fast, Some(0));
        let with_running = [view("a", 100, false), view("b", 100, true)];
        assert_eq!(s.choose(&ctx(&with_running)).fast, Some(1));
    }

    #[test]
    fn cloud_only_never_uses_edge() {
        let mut s = CloudOnlyScheduler;
        let clusters = [view("near", 100, true)];
        assert_eq!(s.choose(&ctx(&clusters)), Choice { fast: None, best: None });
    }

    #[test]
    fn dynamic_loading_by_name() {
        for name in KNOWN_SCHEDULERS {
            let s = scheduler_by_name(name).unwrap();
            assert_eq!(s.name(), *name);
        }
        let err = scheduler_by_name("nope").err().unwrap();
        assert_eq!(err.requested, "nope");
        let msg = err.to_string();
        assert!(msg.contains("unknown scheduler `nope`"), "{msg}");
        for name in KNOWN_SCHEDULERS {
            assert!(msg.contains(name), "error must list `{name}`: {msg}");
        }
    }

    #[test]
    fn context_exposes_request_metadata() {
        // Schedulers are no longer blind to what they place: the context
        // carries the service, the instant, and the request class.
        let clusters = [view("near", 100, false)];
        let c = ctx(&clusters);
        assert_eq!(c.service.name, "svc");
        assert_eq!(c.now, SimTime::ZERO);
        assert_eq!(c.class.label(), "new-flow");
        assert_eq!(RequestClass::Rescheduled.label(), "rescheduled");
        assert_eq!(RequestClass::Handover.label(), "handover");
    }
}
