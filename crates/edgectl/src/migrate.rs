//! Live stateful service migration between edge zones (ROADMAP item 3).
//!
//! PR 4/5 migrate *flows*: on a handover the rewrite rules chase the client,
//! but the service instance — and the session state it accumulated — stays in
//! the old zone (anchored) or is thrown away and re-deployed cold
//! (redispatch). This module adds the third option from Fondo-Ferreiro et
//! al.'s SDN session-and-service continuity work: move the *service* with the
//! user.
//!
//! The model:
//!
//! * **Session state** grows with served requests: every request a zone
//!   answers adds `state_bytes_per_request` to that `(service, cluster)`
//!   entry in the [`SessionLedger`]. At 0 bytes/request (the default) the
//!   ledger is never touched and the whole subsystem is inert.
//! * **Snapshot + transfer**: a migration snapshots the source entry and
//!   ships it zone-to-zone over a metro link modelled by
//!   [`netsim::link::LinkSpec`] — transfer time is propagation plus
//!   `bytes / bandwidth` serialization, so the cost scales linearly in state
//!   size.
//! * **Warm start**: the target instance is deployed (pull/create/scale-up as
//!   needed) *during* the transfer; the migration completes at
//!   `max(target ready, transfer done)`.
//! * **Make-before-break flip**: on completion the controller installs the
//!   new redirect pairs first and deletes the old ones afterwards (the PR 4
//!   handover machinery), so the interruption is control-plane processing
//!   only — the source keeps serving across the whole transfer.
//!
//! Triggers (wired in [`crate::controller`]): client mobility (attachment
//! moved ≥ N cluster-hops from its instance), a circuit breaker opening on
//! the source zone (evacuate *away*, scheduler-chosen target instead of
//! falling to the cloud), and an explicit API for experiments.

use desim::{Duration, SimTime};
use netsim::link::{Link, LinkSpec};
use netsim::ServiceAddr;
use std::collections::BTreeMap;

/// What happens to a session's service when its user moves away (or its zone
/// degrades).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Sessions stay anchored to the old zone's instance (PR 4 default).
    Anchored,
    /// Sessions are re-placed cold through the Global Scheduler; session
    /// state is lost (PR 4's `redispatch` baseline).
    Redispatch,
    /// Snapshot the session state, transfer it, warm-start the target, then
    /// flip the flows make-before-break.
    Live,
}

impl MigrationPolicy {
    /// Stable label (config value / report row).
    pub fn label(&self) -> &'static str {
        match self {
            MigrationPolicy::Anchored => "anchored",
            MigrationPolicy::Redispatch => "redispatch",
            MigrationPolicy::Live => "live",
        }
    }
}

/// The `migration:` block of the controller's YAML config.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrationConfig {
    /// Continuity policy; anything but [`MigrationPolicy::Live`] leaves the
    /// subsystem inert.
    pub policy: MigrationPolicy,
    /// Session-state growth per served request. 0 (the default) disables the
    /// ledger entirely, keeping committed figures byte-identical.
    pub state_bytes_per_request: u64,
    /// One-way propagation of the metro link snapshots travel over.
    pub transfer_propagation: Duration,
    /// Bandwidth of that link, bits per second.
    pub transfer_bandwidth_bps: u64,
    /// Concurrent state transfers allowed; further triggers are ignored
    /// until a slot frees up.
    pub max_concurrent: usize,
    /// Mobility trigger threshold: migrate once the client's attachment is
    /// at least this many cluster-hops from its serving instance.
    pub mobility_hops: usize,
}

impl Default for MigrationConfig {
    fn default() -> MigrationConfig {
        MigrationConfig {
            policy: MigrationPolicy::Anchored,
            state_bytes_per_request: 0,
            // The metro backbone of the mobility topology: 2 ms between
            // zones at 10 Gbps.
            transfer_propagation: Duration::from_millis(2),
            transfer_bandwidth_bps: 10_000_000_000,
            max_concurrent: 2,
            mobility_hops: 1,
        }
    }
}

impl MigrationConfig {
    /// `true` when live migration is on.
    pub fn live(&self) -> bool {
        self.policy == MigrationPolicy::Live
    }

    /// Time to ship `bytes` of snapshot over the metro link: propagation
    /// plus serialization at the configured bandwidth (jitter-free — the
    /// transfer is a bulk copy, not a frame).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let link = Link::new(LinkSpec {
            propagation: self.transfer_propagation,
            bandwidth_bps: self.transfer_bandwidth_bps,
            jitter_max: Duration::ZERO,
        });
        self.transfer_propagation + link.serialization_delay(bytes as usize)
    }
}

/// Why a migration started.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationReason {
    /// The client's attachment moved too far from its instance.
    Mobility,
    /// The source zone's circuit breaker opened.
    BreakerOpen,
    /// Requested through the explicit API (experiments).
    Explicit,
}

impl MigrationReason {
    /// Stable label (telemetry / report row).
    pub fn label(&self) -> &'static str {
        match self {
            MigrationReason::Mobility => "mobility",
            MigrationReason::BreakerOpen => "breaker-open",
            MigrationReason::Explicit => "explicit",
        }
    }
}

/// Per-`(service, cluster)` session-state bookkeeping.
#[derive(Debug, Default)]
pub struct SessionLedger {
    bytes: BTreeMap<(ServiceAddr, usize), u64>,
}

impl SessionLedger {
    /// Adds `amount` bytes of session state at `(service, cluster)`.
    pub fn credit(&mut self, service: ServiceAddr, cluster: usize, amount: u64) {
        if amount > 0 {
            *self.bytes.entry((service, cluster)).or_insert(0) += amount;
        }
    }

    /// Current session-state size at `(service, cluster)`.
    pub fn bytes_at(&self, service: ServiceAddr, cluster: usize) -> u64 {
        self.bytes.get(&(service, cluster)).copied().unwrap_or(0)
    }

    /// Total session state across all zones (conservation checks).
    pub fn total(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Moves everything at `(service, from)` to `(service, to)` — the
    /// switchover sync: state accrued during the transfer window moves too,
    /// so nothing is lost.
    pub fn transfer(&mut self, service: ServiceAddr, from: usize, to: usize) -> u64 {
        let moved = self.bytes.remove(&(service, from)).unwrap_or(0);
        self.credit(service, to, moved);
        moved
    }

    /// Drops the entry at `(service, cluster)` (cold redispatch loses the
    /// state; that is the point of the baseline).
    pub fn forget(&mut self, service: ServiceAddr, cluster: usize) -> u64 {
        self.bytes.remove(&(service, cluster)).unwrap_or(0)
    }

    /// Every ledger entry, sorted — the snapshot export.
    pub fn export_entries(&self) -> Vec<((ServiceAddr, usize), u64)> {
        self.bytes.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Rebuilds the ledger from a snapshot export.
    pub fn restore_entries(&mut self, entries: &[((ServiceAddr, usize), u64)]) {
        self.bytes = entries.iter().copied().collect();
    }
}

/// One migration-state mutation, as appended to the controller's
/// write-ahead journal (see [`crate::journal`]).
#[derive(Clone, Copy, Debug)]
pub enum MigrationOp {
    /// A served request credited session state at `(service, cluster)`.
    Served {
        /// The serving service.
        service: ServiceAddr,
        /// The serving cluster.
        cluster: usize,
    },
    /// A migration started (already carries its computed transfer deadline).
    Begun {
        /// The in-flight record as pushed to the active set.
        migration: Migration,
    },
    /// A migration flipped: state transferred, cooldown armed.
    Completed {
        /// The migration taken from the active set.
        migration: Migration,
        /// Flip completion instant.
        at: SimTime,
        /// Redirect flows moved.
        flows_flipped: usize,
    },
    /// A migration was abandoned; state and flows stay at the source.
    Aborted {
        /// The abandoned migration.
        migration: Migration,
    },
}

/// Plain-data snapshot of the migration subsystem — ledger, in-flight
/// transfers, and cooldown deadlines. Completed-migration records and the
/// abort counter are diagnostics and deliberately excluded.
#[derive(Clone, Debug, Default)]
pub struct MigrationSnapshot {
    /// Session-state bytes per `(service, cluster)`.
    pub ledger: Vec<((ServiceAddr, usize), u64)>,
    /// In-flight migrations, in start order.
    pub active: Vec<Migration>,
    /// Per-service flip-cooldown deadlines.
    pub cooled: Vec<(ServiceAddr, SimTime)>,
}

/// An in-flight migration: state is on the wire, the target is warming up,
/// the source still serves.
#[derive(Clone, Copy, Debug)]
pub struct Migration {
    /// The migrating service.
    pub service: ServiceAddr,
    /// Source cluster index.
    pub from: usize,
    /// Target cluster index.
    pub to: usize,
    /// What triggered it.
    pub reason: MigrationReason,
    /// Snapshot size at departure.
    pub state_bytes: u64,
    /// When the snapshot + warm start began.
    pub started_at: SimTime,
    /// When both the transfer and the target's readiness complete — the
    /// earliest instant the flow flip may run.
    pub transfer_done: SimTime,
    /// Telemetry span key.
    pub request: u64,
}

/// A finished migration, for reports and experiments.
#[derive(Clone, Copy, Debug)]
pub struct MigrationRecord {
    /// The migrated service.
    pub service: ServiceAddr,
    /// Source cluster index.
    pub from: usize,
    /// Target cluster index.
    pub to: usize,
    /// What triggered it.
    pub reason: MigrationReason,
    /// Bytes shipped (snapshot plus switchover delta).
    pub state_bytes: u64,
    /// When the migration began.
    pub started_at: SimTime,
    /// When transfer + warm start completed.
    pub transfer_done: SimTime,
    /// When the make-before-break flip finished installing.
    pub completed_at: SimTime,
    /// Redirect flows moved to the target.
    pub flows_flipped: usize,
}

impl MigrationRecord {
    /// Background cost: how long the state was in flight (source kept
    /// serving throughout).
    pub fn transfer_time(&self) -> Duration {
        self.transfer_done.saturating_since(self.started_at)
    }

    /// Client-visible interruption: the make-before-break flip only.
    pub fn interruption(&self) -> Duration {
        self.completed_at.saturating_since(self.transfer_done)
    }
}

/// Minimum gap between a migration's flip and the next migration start for
/// the same service. The flip's make-before-break deletes the *old* pairs on
/// a delay (the controller's 50 ms guard interval); because the flow table
/// replaces same-match installs in place and deletes by match alone, a
/// re-migration flipping back within that window would have its fresh pairs
/// deleted by the previous flip's still-pending teardown. The cooldown keeps
/// any two flips of one service strictly farther apart than the guard — and
/// damps migration thrash when clients pull a shared service both ways.
pub const FLIP_COOLDOWN: Duration = Duration::from_millis(150);

/// The migration state machine: ledger, in-flight transfers, records.
#[derive(Debug, Default)]
pub struct MigrationManager {
    config: MigrationConfig,
    ledger: SessionLedger,
    active: Vec<Migration>,
    /// Per-service earliest next start after a flip ([`FLIP_COOLDOWN`]).
    cooled: BTreeMap<ServiceAddr, SimTime>,
    /// Every completed migration, in completion order.
    pub records: Vec<MigrationRecord>,
    /// Migrations that reached their flip with no ready target (source
    /// crash took the warm-up down too); flows stay where they were.
    pub aborted: u64,
    /// Mutation log drained by the controller's journal; `None` (the
    /// default) keeps every mutator free of logging work.
    log: Option<Vec<MigrationOp>>,
}

impl MigrationManager {
    /// Creates a manager for `config`.
    pub fn new(config: MigrationConfig) -> MigrationManager {
        MigrationManager {
            config,
            ..MigrationManager::default()
        }
    }

    /// The configuration the manager was built with.
    pub fn config(&self) -> &MigrationConfig {
        &self.config
    }

    /// `true` when live migration is on.
    pub fn live(&self) -> bool {
        self.config.live()
    }

    /// Turns mutation logging on or off (off discards undrained ops).
    pub fn set_logging(&mut self, on: bool) {
        self.log = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the ops accumulated since the last drain. Empty when logging
    /// is off.
    pub fn take_ops(&mut self) -> Vec<MigrationOp> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Ledger, active set and cooldowns as plain data — the snapshot
    /// export.
    pub fn export_state(&self) -> MigrationSnapshot {
        MigrationSnapshot {
            ledger: self.ledger.export_entries(),
            active: self.active.clone(),
            cooled: self.cooled.iter().map(|(k, v)| (*k, *v)).collect(),
        }
    }

    /// Restores a snapshot taken by [`export_state`](Self::export_state).
    pub fn restore_state(&mut self, s: &MigrationSnapshot) {
        self.ledger.restore_entries(&s.ledger);
        self.active = s.active.clone();
        self.cooled = s.cooled.iter().copied().collect();
    }

    /// Applies one logged mutation — the journal replay primitive. Call on
    /// a non-logging instance, or the replayed ops are re-logged.
    pub fn apply(&mut self, op: &MigrationOp) {
        match *op {
            MigrationOp::Served { service, cluster } => self.note_served(service, cluster),
            // Begun bypasses `can_start`: the original manager already
            // admitted this migration, and its deadline travels with it.
            MigrationOp::Begun { migration } => self.active.push(migration),
            MigrationOp::Completed {
                migration,
                at,
                flows_flipped,
            } => {
                self.active.retain(|a| {
                    !(a.service == migration.service
                        && a.from == migration.from
                        && a.started_at == migration.started_at)
                });
                self.complete(&migration, at, flows_flipped);
            }
            MigrationOp::Aborted { migration } => {
                self.active.retain(|a| {
                    !(a.service == migration.service
                        && a.from == migration.from
                        && a.started_at == migration.started_at)
                });
                self.aborted += 1;
            }
        }
    }

    /// Abandons every in-flight migration — the warm-restart policy: a
    /// transfer interrupted by a controller crash cannot be trusted to
    /// flip, so state and flows stay at the source and the pins lift.
    /// Returns how many were dropped.
    pub fn abort_all(&mut self) -> usize {
        let dropped = std::mem::take(&mut self.active);
        let n = dropped.len();
        self.aborted += n as u64;
        if let Some(log) = &mut self.log {
            log.extend(dropped.into_iter().map(|m| MigrationOp::Aborted { migration: m }));
        }
        n
    }

    /// Records one served request at `(service, cluster)`. No-op at the
    /// default 0 bytes/request.
    pub fn note_served(&mut self, service: ServiceAddr, cluster: usize) {
        if self.config.state_bytes_per_request == 0 {
            // Stateless (and the default-off) configuration: no ledger
            // entry is ever created, so the manager stays fully inert.
            return;
        }
        self.ledger
            .credit(service, cluster, self.config.state_bytes_per_request);
        if let Some(log) = &mut self.log {
            log.push(MigrationOp::Served { service, cluster });
        }
    }

    /// Session-state bookkeeping (read-only).
    pub fn ledger(&self) -> &SessionLedger {
        &self.ledger
    }

    /// Mutable ledger access (cold redispatch drops state through this).
    pub fn ledger_mut(&mut self) -> &mut SessionLedger {
        &mut self.ledger
    }

    /// Whether a migration of `service` away from `from` to `to` may start
    /// at `now`: a free slot, a real move, no duplicate in flight, and the
    /// service's previous flip (if any) out of its [`FLIP_COOLDOWN`].
    pub fn can_start(&self, service: ServiceAddr, from: usize, to: usize, now: SimTime) -> bool {
        from != to
            && self.active.len() < self.config.max_concurrent
            && self.cooled.get(&service).is_none_or(|&t| now >= t)
            && !self
                .active
                .iter()
                .any(|m| m.service == service && (m.from == from || m.to == from))
    }

    /// Starts a migration. `ready_at` is when the warm-started target
    /// instance will be ready; the flip becomes due once both the transfer
    /// and the warm start are done. Returns the in-flight record.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &mut self,
        service: ServiceAddr,
        from: usize,
        to: usize,
        reason: MigrationReason,
        now: SimTime,
        ready_at: SimTime,
        request: u64,
    ) -> Migration {
        debug_assert!(self.can_start(service, from, to, now));
        let state_bytes = self.ledger.bytes_at(service, from);
        let transfer_done = (now + self.config.transfer_time(state_bytes)).max(ready_at);
        let m = Migration {
            service,
            from,
            to,
            reason,
            state_bytes,
            started_at: now,
            transfer_done,
            request,
        };
        self.active.push(m);
        if let Some(log) = &mut self.log {
            log.push(MigrationOp::Begun { migration: m });
        }
        m
    }

    /// In-flight migrations.
    pub fn active(&self) -> &[Migration] {
        &self.active
    }

    /// `true` while `(service, cluster)` is the source or target of an
    /// in-flight migration — the pool must not be retired underneath it.
    pub fn pinned(&self, service: ServiceAddr, cluster: usize) -> bool {
        self.active
            .iter()
            .any(|m| m.service == service && (m.from == cluster || m.to == cluster))
    }

    /// The earliest instant an in-flight migration becomes flippable.
    pub fn next_due(&self) -> Option<SimTime> {
        self.active.iter().map(|m| m.transfer_done).min()
    }

    /// Removes and returns the migrations whose transfer completed by
    /// `now`, in start order.
    pub fn take_due(&mut self, now: SimTime) -> Vec<Migration> {
        let mut due = Vec::new();
        self.active.retain(|m| {
            if m.transfer_done <= now {
                due.push(*m);
                false
            } else {
                true
            }
        });
        due
    }

    /// Finishes a migration taken from [`MigrationManager::take_due`]:
    /// moves the session state (snapshot plus anything accrued during the
    /// transfer) and records the outcome. Returns the bytes moved.
    pub fn complete(&mut self, m: &Migration, completed_at: SimTime, flows_flipped: usize) -> u64 {
        self.cooled.insert(m.service, completed_at + FLIP_COOLDOWN);
        let moved = self.ledger.transfer(m.service, m.from, m.to);
        self.records.push(MigrationRecord {
            service: m.service,
            from: m.from,
            to: m.to,
            reason: m.reason,
            state_bytes: moved,
            started_at: m.started_at,
            transfer_done: m.transfer_done,
            completed_at,
            flows_flipped,
        });
        if let Some(log) = &mut self.log {
            log.push(MigrationOp::Completed {
                migration: *m,
                at: completed_at,
                flows_flipped,
            });
        }
        moved
    }

    /// Abandons a migration whose target never became ready (e.g. the
    /// fault plan took the target zone dark mid-transfer). State and flows
    /// stay at the source.
    pub fn abort(&mut self, m: &Migration) {
        self.aborted += 1;
        if let Some(log) = &mut self.log {
            log.push(MigrationOp::Aborted { migration: *m });
        }
    }

    /// Abandons every in-flight migration touching `(service, cluster)` —
    /// called when a crash retires the pool mid-transfer. The pin lifts;
    /// session state and flows stay wherever they currently are. Returns
    /// how many migrations were dropped.
    pub fn abort_involving(&mut self, service: ServiceAddr, cluster: usize) -> usize {
        let mut dropped = Vec::new();
        self.active.retain(|m| {
            if m.service == service && (m.from == cluster || m.to == cluster) {
                dropped.push(*m);
                false
            } else {
                true
            }
        });
        let n = dropped.len();
        self.aborted += n as u64;
        if let Some(log) = &mut self.log {
            log.extend(dropped.into_iter().map(|m| MigrationOp::Aborted { migration: m }));
        }
        n
    }

    /// Abandons every in-flight migration into or out of `cluster` — the
    /// zone-outage fault takes the whole zone dark at once. Returns how
    /// many migrations were dropped.
    pub fn abort_cluster(&mut self, cluster: usize) -> usize {
        let mut dropped = Vec::new();
        self.active.retain(|m| {
            if m.from == cluster || m.to == cluster {
                dropped.push(*m);
                false
            } else {
                true
            }
        });
        let n = dropped.len();
        self.aborted += n as u64;
        if let Some(log) = &mut self.log {
            log.extend(dropped.into_iter().map(|m| MigrationOp::Aborted { migration: m }));
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Ipv4Addr;

    fn svc(last: u8) -> ServiceAddr {
        ServiceAddr::new(Ipv4Addr::new(203, 0, 113, last), 80)
    }

    #[test]
    fn defaults_are_inert() {
        let c = MigrationConfig::default();
        assert_eq!(c.policy, MigrationPolicy::Anchored);
        assert!(!c.live());
        assert_eq!(c.state_bytes_per_request, 0);
        let mut m = MigrationManager::new(c);
        m.note_served(svc(1), 0);
        m.note_served(svc(1), 0);
        assert_eq!(m.ledger().total(), 0, "0 bytes/request never touches the ledger");
    }

    #[test]
    fn transfer_time_is_linear_in_state_bytes() {
        let c = MigrationConfig {
            transfer_propagation: Duration::from_millis(2),
            transfer_bandwidth_bps: 1_000_000_000,
            ..MigrationConfig::default()
        };
        // 0 bytes: pure propagation.
        assert_eq!(c.transfer_time(0), Duration::from_millis(2));
        // 1 Gbps: 125_000 bytes = 1 ms of serialization.
        let t1 = c.transfer_time(125_000);
        let t2 = c.transfer_time(250_000);
        let t4 = c.transfer_time(500_000);
        assert_eq!(t1, Duration::from_millis(3));
        // Linear in bytes past the fixed propagation term.
        assert_eq!(t2 - t1, Duration::from_millis(1));
        assert_eq!(t4 - t2, Duration::from_millis(2));
    }

    #[test]
    fn ledger_conserves_bytes_across_transfer() {
        let mut l = SessionLedger::default();
        l.credit(svc(1), 0, 700);
        l.credit(svc(1), 1, 50);
        l.credit(svc(2), 0, 11);
        assert_eq!(l.total(), 761);
        let moved = l.transfer(svc(1), 0, 2);
        assert_eq!(moved, 700);
        assert_eq!(l.bytes_at(svc(1), 0), 0);
        assert_eq!(l.bytes_at(svc(1), 2), 700);
        assert_eq!(l.total(), 761, "transfer conserves total state");
        assert_eq!(l.forget(svc(2), 0), 11);
        assert_eq!(l.total(), 750);
    }

    #[test]
    fn manager_snapshots_and_moves_switchover_delta() {
        let mut m = MigrationManager::new(MigrationConfig {
            policy: MigrationPolicy::Live,
            state_bytes_per_request: 100,
            ..MigrationConfig::default()
        });
        for _ in 0..5 {
            m.note_served(svc(1), 0);
        }
        let t0 = SimTime::from_secs(10);
        let mig = m.begin(svc(1), 0, 1, MigrationReason::Explicit, t0, t0, 1);
        assert_eq!(mig.state_bytes, 500);
        assert!(mig.transfer_done > t0, "propagation alone takes time");
        // Two more requests land at the source during the transfer window.
        m.note_served(svc(1), 0);
        m.note_served(svc(1), 0);
        let due = m.take_due(mig.transfer_done);
        assert_eq!(due.len(), 1);
        assert!(m.active().is_empty());
        let moved = m.complete(&due[0], mig.transfer_done, 3);
        assert_eq!(moved, 700, "switchover sync ships the delta too");
        assert_eq!(m.ledger().bytes_at(svc(1), 1), 700);
        assert_eq!(m.ledger().bytes_at(svc(1), 0), 0);
        let r = &m.records[0];
        assert_eq!(r.flows_flipped, 3);
        assert_eq!(r.interruption(), Duration::ZERO);
    }

    #[test]
    fn warm_start_extends_the_flip_past_target_readiness() {
        let mut m = MigrationManager::new(MigrationConfig {
            policy: MigrationPolicy::Live,
            ..MigrationConfig::default()
        });
        let t0 = SimTime::from_secs(1);
        let ready = SimTime::from_secs(5);
        let mig = m.begin(svc(1), 0, 1, MigrationReason::Mobility, t0, ready, 1);
        assert_eq!(mig.transfer_done, ready, "flip waits for the warm start");
        assert_eq!(m.next_due(), Some(ready));
        assert!(m.take_due(SimTime::from_secs(4)).is_empty());
        assert_eq!(m.take_due(ready).len(), 1);
    }

    #[test]
    fn concurrency_and_duplicates_are_bounded() {
        let mut m = MigrationManager::new(MigrationConfig {
            policy: MigrationPolicy::Live,
            max_concurrent: 2,
            ..MigrationConfig::default()
        });
        let t0 = SimTime::from_secs(1);
        assert!(!m.can_start(svc(1), 0, 0, t0), "self-migration is meaningless");
        assert!(m.can_start(svc(1), 0, 1, t0));
        m.begin(svc(1), 0, 1, MigrationReason::Explicit, t0, t0, 1);
        assert!(
            !m.can_start(svc(1), 0, 2, t0),
            "one transfer per (service, source) at a time"
        );
        assert!(
            !m.can_start(svc(1), 1, 2, t0),
            "the landing zone is not re-evacuated mid-flight"
        );
        assert!(m.can_start(svc(2), 0, 1, t0), "other services are independent");
        m.begin(svc(2), 0, 1, MigrationReason::Explicit, t0, t0, 2);
        assert!(!m.can_start(svc(3), 0, 1, t0), "max_concurrent caps the fleet");
        assert!(m.pinned(svc(1), 0) && m.pinned(svc(1), 1));
        assert!(!m.pinned(svc(1), 2) && !m.pinned(svc(3), 0));
    }

    #[test]
    fn a_flipped_service_cools_down_before_it_may_move_again() {
        let mut m = MigrationManager::new(MigrationConfig {
            policy: MigrationPolicy::Live,
            ..MigrationConfig::default()
        });
        let t0 = SimTime::from_secs(1);
        let mig = m.begin(svc(1), 0, 1, MigrationReason::Mobility, t0, t0, 1);
        let flip = mig.transfer_done + Duration::from_millis(1);
        let due = m.take_due(flip);
        assert_eq!(due.len(), 1);
        m.complete(&due[0], flip, 1);
        // Inside the cooldown the service may not start another migration —
        // otherwise the previous flip's delayed teardown (the controller's
        // 50 ms guard) could delete the pairs the new flip just installed.
        assert!(!m.can_start(svc(1), 1, 0, flip + Duration::from_millis(50)));
        assert!(!m.can_start(svc(1), 1, 0, flip + (FLIP_COOLDOWN - Duration::from_millis(1))));
        assert!(m.can_start(svc(1), 1, 0, flip + FLIP_COOLDOWN));
        // Other services are unaffected.
        assert!(m.can_start(svc(2), 1, 0, flip + Duration::from_millis(1)));
    }
}
