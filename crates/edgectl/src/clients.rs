//! Client location tracking.
//!
//! The Dispatcher "also tracks the clients' current location" (Section
//! IV-B): in the transparent edge, a client's location is the ingress switch
//! (gNB) plus the switch port its traffic arrives on. Port numbers alone are
//! ambiguous once the controller manages several ingress switches — port 1
//! on gNB 0 and port 1 on gNB 1 are different cells — so a location is the
//! `(ingress, port)` pair. When a client shows up at a different location
//! (UE mobility — it attached to a different gNB/access point), redirect
//! decisions made for the old location are stale: the nearest edge may have
//! changed, and reverse flows point at the old port. The tracker detects
//! moves so the controller can hand the client's sessions over (or, absent a
//! handover procedure, flush its memorized flows and re-schedule).

use crate::flowmemory::IngressId;
use desim::SimTime;
use netsim::addr::Ipv4Addr;
use std::collections::HashMap;

/// A detected client move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientMove {
    /// The client that moved.
    pub client: Ipv4Addr,
    /// Previous ingress switch.
    pub from_ingress: IngressId,
    /// Previous ingress port.
    pub from_port: u32,
    /// New ingress switch.
    pub to_ingress: IngressId,
    /// New ingress port.
    pub to_port: u32,
    /// When the move was observed.
    pub at: SimTime,
}

impl ClientMove {
    /// `true` if the move crossed ingress switches (a cell handover, not
    /// just a port re-patch on the same switch).
    pub fn crossed_ingress(&self) -> bool {
        self.from_ingress != self.to_ingress
    }
}

#[derive(Clone, Copy, Debug)]
struct Location {
    ingress: IngressId,
    in_port: u32,
    last_seen: SimTime,
}

/// Tracks where each client currently enters the network.
#[derive(Default)]
pub struct ClientTracker {
    locations: HashMap<Ipv4Addr, Location>,
    /// All moves observed, in order.
    moves: Vec<ClientMove>,
}

impl ClientTracker {
    /// Creates an empty tracker.
    pub fn new() -> ClientTracker {
        ClientTracker::default()
    }

    /// Records that `client` was seen on `ingress`/`in_port` at `now`.
    /// Returns the move if the client changed location.
    pub fn observe(
        &mut self,
        client: Ipv4Addr,
        ingress: IngressId,
        in_port: u32,
        now: SimTime,
    ) -> Option<ClientMove> {
        match self.locations.insert(
            client,
            Location {
                ingress,
                in_port,
                last_seen: now,
            },
        ) {
            Some(prev) if prev.ingress != ingress || prev.in_port != in_port => {
                let mv = ClientMove {
                    client,
                    from_ingress: prev.ingress,
                    from_port: prev.in_port,
                    to_ingress: ingress,
                    to_port: in_port,
                    at: now,
                };
                self.moves.push(mv);
                Some(mv)
            }
            _ => None,
        }
    }

    /// The client's current `(ingress, port)` location, if known.
    pub fn location(&self, client: Ipv4Addr) -> Option<(IngressId, u32)> {
        self.locations.get(&client).map(|l| (l.ingress, l.in_port))
    }

    /// When the client was last seen, if ever.
    pub fn last_seen(&self, client: Ipv4Addr) -> Option<SimTime> {
        self.locations.get(&client).map(|l| l.last_seen)
    }

    /// Number of tracked clients.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` if no client has been seen.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// All moves observed so far.
    pub fn moves(&self) -> &[ClientMove] {
        &self.moves
    }

    /// Exports every tracked location, sorted by client address, for
    /// journal snapshots. Detected moves are diagnostics and excluded: a
    /// warm-restarted controller re-derives post-snapshot moves by
    /// replaying the journal's sighting events through [`Self::observe`].
    pub fn export_locations(&self) -> Vec<(Ipv4Addr, IngressId, u32, SimTime)> {
        let mut out: Vec<_> = self
            .locations
            .iter()
            .map(|(c, l)| (*c, l.ingress, l.in_port, l.last_seen))
            .collect();
        out.sort_unstable_by_key(|&(c, ..)| c);
        out
    }

    /// Restores locations from a journal snapshot. Call only on a fresh
    /// tracker: entries are inserted as first sightings, so no moves are
    /// recorded.
    pub fn restore_locations(&mut self, locs: &[(Ipv4Addr, IngressId, u32, SimTime)]) {
        for &(client, ingress, in_port, last_seen) in locs {
            self.locations.insert(
                client,
                Location {
                    ingress,
                    in_port,
                    last_seen,
                },
            );
        }
    }

    /// Drops clients not seen since `cutoff` (bookkeeping hygiene on very
    /// long-running controllers).
    pub fn evict_stale(&mut self, cutoff: SimTime) -> usize {
        let before = self.locations.len();
        self.locations.retain(|_, l| l.last_seen >= cutoff);
        before - self.locations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 168, 1, last)
    }

    const G0: IngressId = IngressId(0);
    const G1: IngressId = IngressId(1);

    #[test]
    fn first_sighting_is_not_a_move() {
        let mut t = ClientTracker::new();
        assert!(t.observe(ip(20), G0, 3, SimTime::from_secs(1)).is_none());
        assert_eq!(t.location(ip(20)), Some((G0, 3)));
        assert_eq!(t.last_seen(ip(20)), Some(SimTime::from_secs(1)));
        assert!(t.moves().is_empty());
    }

    #[test]
    fn same_location_refreshes_without_move() {
        let mut t = ClientTracker::new();
        t.observe(ip(20), G0, 3, SimTime::from_secs(1));
        assert!(t.observe(ip(20), G0, 3, SimTime::from_secs(5)).is_none());
        assert_eq!(t.last_seen(ip(20)), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn port_change_is_a_move() {
        let mut t = ClientTracker::new();
        t.observe(ip(20), G0, 3, SimTime::from_secs(1));
        let mv = t.observe(ip(20), G0, 7, SimTime::from_secs(9)).unwrap();
        assert_eq!(
            mv,
            ClientMove {
                client: ip(20),
                from_ingress: G0,
                from_port: 3,
                to_ingress: G0,
                to_port: 7,
                at: SimTime::from_secs(9)
            }
        );
        assert!(!mv.crossed_ingress());
        assert_eq!(t.location(ip(20)), Some((G0, 7)));
        assert_eq!(t.moves().len(), 1);
        // Moving back counts again.
        assert!(t.observe(ip(20), G0, 3, SimTime::from_secs(12)).is_some());
        assert_eq!(t.moves().len(), 2);
    }

    #[test]
    fn ingress_change_is_a_move_even_on_the_same_port_number() {
        let mut t = ClientTracker::new();
        t.observe(ip(20), G0, 3, SimTime::from_secs(1));
        let mv = t.observe(ip(20), G1, 3, SimTime::from_secs(4)).unwrap();
        assert!(mv.crossed_ingress());
        assert_eq!((mv.from_ingress, mv.to_ingress), (G0, G1));
        assert_eq!(t.location(ip(20)), Some((G1, 3)));
    }

    #[test]
    fn clients_are_independent() {
        let mut t = ClientTracker::new();
        t.observe(ip(20), G0, 3, SimTime::from_secs(1));
        assert!(t.observe(ip(21), G1, 7, SimTime::from_secs(2)).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn eviction_drops_stale_clients() {
        let mut t = ClientTracker::new();
        t.observe(ip(20), G0, 3, SimTime::from_secs(1));
        t.observe(ip(21), G0, 4, SimTime::from_secs(100));
        assert_eq!(t.evict_stale(SimTime::from_secs(50)), 1);
        assert_eq!(t.len(), 1);
        assert!(t.location(ip(20)).is_none());
        assert!(t.location(ip(21)).is_some());
    }
}
