//! Proactive deployment prediction.
//!
//! The paper's introduction concedes that "prediction algorithms could be
//! used to pre-deploy the required services just in time", that perfect
//! prediction is impossible, and that on-demand deployment is the safety
//! net; the discussion closes with "more so when combined with good
//! prediction for proactive deployment". This module provides that hook: a
//! [`DeploymentPredictor`] observes the request stream and nominates
//! services to pre-deploy, and the testbed's proactive experiment measures
//! how prediction quality trades pre-deployments against first-request
//! latency.

use desim::{Duration, SimTime};
use netsim::ServiceAddr;
use std::collections::{HashMap, VecDeque};

/// Observes requests and nominates services worth pre-deploying.
pub trait DeploymentPredictor: Send {
    /// The name this predictor is loaded under.
    fn name(&self) -> &str;

    /// Records one observed request.
    fn observe(&mut self, service: ServiceAddr, now: SimTime);

    /// Services predicted to be needed soon (deduplicated, best first).
    /// Called periodically; implementations should be cheap.
    fn predict(&mut self, now: SimTime) -> Vec<ServiceAddr>;
}

/// Never predicts — pure reactive on-demand deployment (the paper's
/// baseline).
#[derive(Default)]
pub struct NoPredictor;

impl DeploymentPredictor for NoPredictor {
    fn name(&self) -> &str {
        "none"
    }

    fn observe(&mut self, _service: ServiceAddr, _now: SimTime) {}

    fn predict(&mut self, _now: SimTime) -> Vec<ServiceAddr> {
        Vec::new()
    }
}

/// Predicts that recently seen services will be requested again: keeps each
/// observed service "warm" for a window after its last request. Models the
/// common keep-alive heuristic.
pub struct RecencyPredictor {
    window: Duration,
    last_seen: HashMap<ServiceAddr, SimTime>,
}

impl RecencyPredictor {
    /// Predicts re-use within `window` of the last request.
    pub fn new(window: Duration) -> RecencyPredictor {
        RecencyPredictor {
            window,
            last_seen: HashMap::new(),
        }
    }
}

impl DeploymentPredictor for RecencyPredictor {
    fn name(&self) -> &str {
        "recency"
    }

    fn observe(&mut self, service: ServiceAddr, now: SimTime) {
        self.last_seen.insert(service, now);
    }

    fn predict(&mut self, now: SimTime) -> Vec<ServiceAddr> {
        let window = self.window;
        self.last_seen.retain(|_, t| now.saturating_since(*t) < window);
        let mut v: Vec<(ServiceAddr, SimTime)> =
            self.last_seen.iter().map(|(s, t)| (*s, *t)).collect();
        v.sort_by_key(|(s, t)| (std::cmp::Reverse(*t), *s));
        v.into_iter().map(|(s, _)| s).collect()
    }
}

/// Predicts the overall most-requested services (top-k by frequency over a
/// sliding history). Models popularity-based pre-deployment.
pub struct FrequencyPredictor {
    history: VecDeque<(SimTime, ServiceAddr)>,
    horizon: Duration,
    top_k: usize,
}

impl FrequencyPredictor {
    /// Counts requests within `horizon` and nominates the `top_k` busiest.
    pub fn new(horizon: Duration, top_k: usize) -> FrequencyPredictor {
        FrequencyPredictor {
            history: VecDeque::new(),
            horizon,
            top_k,
        }
    }
}

impl DeploymentPredictor for FrequencyPredictor {
    fn name(&self) -> &str {
        "frequency"
    }

    fn observe(&mut self, service: ServiceAddr, now: SimTime) {
        self.history.push_back((now, service));
    }

    fn predict(&mut self, now: SimTime) -> Vec<ServiceAddr> {
        while let Some(&(t, _)) = self.history.front() {
            if now.saturating_since(t) >= self.horizon {
                self.history.pop_front();
            } else {
                break;
            }
        }
        let mut counts: HashMap<ServiceAddr, usize> = HashMap::new();
        for &(_, s) in &self.history {
            *counts.entry(s).or_default() += 1;
        }
        let mut v: Vec<(ServiceAddr, usize)> = counts.into_iter().collect();
        v.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s));
        v.truncate(self.top_k);
        v.into_iter().map(|(s, _)| s).collect()
    }
}

/// First-order Markov predictor over the request stream: after observing
/// service *A*, predicts the services that historically followed *A*.
/// Models sequence patterns (e.g. an app that always calls auth → api →
/// media in order).
pub struct MarkovPredictor {
    transitions: HashMap<ServiceAddr, HashMap<ServiceAddr, usize>>,
    last: Option<ServiceAddr>,
    top_k: usize,
}

impl MarkovPredictor {
    /// Predicts the `top_k` most likely successors of the last request.
    pub fn new(top_k: usize) -> MarkovPredictor {
        MarkovPredictor {
            transitions: HashMap::new(),
            last: None,
            top_k,
        }
    }
}

impl DeploymentPredictor for MarkovPredictor {
    fn name(&self) -> &str {
        "markov"
    }

    fn observe(&mut self, service: ServiceAddr, _now: SimTime) {
        if let Some(prev) = self.last {
            *self
                .transitions
                .entry(prev)
                .or_default()
                .entry(service)
                .or_default() += 1;
        }
        self.last = Some(service);
    }

    fn predict(&mut self, _now: SimTime) -> Vec<ServiceAddr> {
        let Some(last) = self.last else {
            return Vec::new();
        };
        let Some(next) = self.transitions.get(&last) else {
            return Vec::new();
        };
        let mut v: Vec<(ServiceAddr, usize)> = next.iter().map(|(s, c)| (*s, *c)).collect();
        v.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s));
        v.truncate(self.top_k);
        v.into_iter().map(|(s, _)| s).collect()
    }
}

/// An oracle with a configurable hit rate: it "knows" the future request
/// (supplied via [`OraclePredictor::feed`]) but only reports it with
/// probability `accuracy` — the paper's point that "a hundred percent
/// correct prediction rate is impossible" made measurable.
pub struct OraclePredictor {
    pending: VecDeque<ServiceAddr>,
}

impl OraclePredictor {
    /// Creates an empty oracle.
    pub fn new() -> OraclePredictor {
        OraclePredictor {
            pending: VecDeque::new(),
        }
    }

    /// Feeds ground-truth future requests (the experiment decides which
    /// fraction to reveal).
    pub fn feed(&mut self, service: ServiceAddr) {
        self.pending.push_back(service);
    }
}

impl Default for OraclePredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl DeploymentPredictor for OraclePredictor {
    fn name(&self) -> &str {
        "oracle"
    }

    fn observe(&mut self, _service: ServiceAddr, _now: SimTime) {}

    fn predict(&mut self, _now: SimTime) -> Vec<ServiceAddr> {
        self.pending.drain(..).collect()
    }
}

/// Names [`predictor_by_name`] accepts, in documentation order.
pub const KNOWN_PREDICTORS: &[&str] = &["none", "recency", "frequency", "markov"];

/// Loads a predictor by configured name. Shares the typed
/// [`UnknownComponent`](crate::scheduler::UnknownComponent) error with
/// [`scheduler_by_name`](crate::scheduler::scheduler_by_name), so both
/// registries report unknown names (and the accepted list) identically.
pub fn predictor_by_name(
    name: &str,
) -> Result<Box<dyn DeploymentPredictor>, crate::scheduler::UnknownComponent> {
    match name {
        "none" => Ok(Box::<NoPredictor>::default()),
        "recency" => Ok(Box::new(RecencyPredictor::new(Duration::from_secs(60)))),
        "frequency" => Ok(Box::new(FrequencyPredictor::new(
            Duration::from_secs(120),
            8,
        ))),
        "markov" => Ok(Box::new(MarkovPredictor::new(3))),
        _ => Err(crate::scheduler::UnknownComponent {
            kind: "predictor",
            requested: name.to_owned(),
            known: KNOWN_PREDICTORS,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::addr::Ipv4Addr;

    fn svc(i: u8) -> ServiceAddr {
        ServiceAddr::new(Ipv4Addr::new(203, 0, 113, i), 80)
    }

    #[test]
    fn none_predicts_nothing() {
        let mut p = NoPredictor;
        p.observe(svc(1), SimTime::ZERO);
        assert!(p.predict(SimTime::from_secs(1)).is_empty());
    }

    #[test]
    fn recency_keeps_within_window_only() {
        let mut p = RecencyPredictor::new(Duration::from_secs(10));
        p.observe(svc(1), SimTime::from_secs(0));
        p.observe(svc(2), SimTime::from_secs(5));
        let out = p.predict(SimTime::from_secs(8));
        assert_eq!(out, vec![svc(2), svc(1)], "most recent first");
        let out = p.predict(SimTime::from_secs(12));
        assert_eq!(out, vec![svc(2)], "svc 1 aged out");
        assert!(p.predict(SimTime::from_secs(30)).is_empty());
    }

    #[test]
    fn frequency_ranks_by_count() {
        let mut p = FrequencyPredictor::new(Duration::from_secs(100), 2);
        for _ in 0..5 {
            p.observe(svc(1), SimTime::from_secs(1));
        }
        for _ in 0..3 {
            p.observe(svc(2), SimTime::from_secs(2));
        }
        p.observe(svc(3), SimTime::from_secs(3));
        let out = p.predict(SimTime::from_secs(4));
        assert_eq!(out, vec![svc(1), svc(2)], "top-2 by frequency");
    }

    #[test]
    fn frequency_slides_its_horizon() {
        let mut p = FrequencyPredictor::new(Duration::from_secs(10), 5);
        p.observe(svc(1), SimTime::from_secs(0));
        p.observe(svc(2), SimTime::from_secs(9));
        assert_eq!(p.predict(SimTime::from_secs(9)).len(), 2);
        assert_eq!(p.predict(SimTime::from_secs(15)), vec![svc(2)]);
    }

    #[test]
    fn markov_learns_successions() {
        let mut p = MarkovPredictor::new(2);
        // Pattern: 1 → 2 → 3, repeated.
        for _ in 0..4 {
            p.observe(svc(1), SimTime::ZERO);
            p.observe(svc(2), SimTime::ZERO);
            p.observe(svc(3), SimTime::ZERO);
        }
        p.observe(svc(1), SimTime::ZERO);
        assert_eq!(p.predict(SimTime::ZERO), vec![svc(2)], "2 follows 1");
        p.observe(svc(2), SimTime::ZERO);
        assert_eq!(p.predict(SimTime::ZERO), vec![svc(3)], "3 follows 2");
    }

    #[test]
    fn markov_empty_until_pattern_exists() {
        let mut p = MarkovPredictor::new(2);
        assert!(p.predict(SimTime::ZERO).is_empty());
        p.observe(svc(1), SimTime::ZERO);
        assert!(p.predict(SimTime::ZERO).is_empty(), "no successor known yet");
    }

    #[test]
    fn oracle_replays_fed_futures() {
        let mut p = OraclePredictor::new();
        p.feed(svc(4));
        p.feed(svc(5));
        assert_eq!(p.predict(SimTime::ZERO), vec![svc(4), svc(5)]);
        assert!(p.predict(SimTime::ZERO).is_empty(), "drained");
    }

    #[test]
    fn loading_by_name() {
        for name in KNOWN_PREDICTORS {
            assert_eq!(predictor_by_name(name).unwrap().name(), *name);
        }
        let err = predictor_by_name("crystal-ball").err().unwrap();
        assert_eq!(err.kind, "predictor");
        assert_eq!(err.requested, "crystal-ball");
        let msg = err.to_string();
        assert!(msg.contains("unknown predictor `crystal-ball`"), "{msg}");
        for name in KNOWN_PREDICTORS {
            assert!(msg.contains(name), "error must list `{name}`: {msg}");
        }
    }
}
