//! Automated annotation of service definition files (Section V).
//!
//! Each edge service is defined in a YAML file using the established
//! *Kubernetes Deployment* format; the same definition drives both Docker and
//! Kubernetes clusters. Only the image name is mandatory — the annotation
//! engine supplies everything else:
//!
//! 1. a **unique worldwide name** derived from the registered service
//!    address (developers testing locally tend to forget global uniqueness);
//! 2. the `matchLabels` Kubernetes requires, plus an **`edge.service`**
//!    label so the controller can address and query its services distinctly;
//! 3. **`replicas: 0`** — services are created scaled-to-zero and scaled up
//!    on demand;
//! 4. the **`schedulerName`** when a Local Scheduler is configured for the
//!    cluster;
//! 5. a generated **`Service`** object (unless the developer provided one)
//!    carrying the exposed port, target port and `TCP` protocol.

use containerd::ContainerSpec;
use netsim::ServiceAddr;
use registry::ImageRef;
use yamlite::Value;

/// The label key the controller uses to address its services.
pub const EDGE_SERVICE_LABEL: &str = "edge.service";

/// Errors from annotating a definition file.
#[derive(Clone, Debug, PartialEq)]
pub enum AnnotateError {
    /// The YAML failed to parse.
    Yaml(yamlite::ParseError),
    /// No container with an image was found (the image is the only mandatory
    /// field).
    MissingImage,
    /// The document is not shaped like a Deployment (mapping expected).
    NotADeployment,
    /// More than two documents, or unexpected extra document kinds.
    UnexpectedDocuments(usize),
}

impl std::fmt::Display for AnnotateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnotateError::Yaml(e) => write!(f, "{e}"),
            AnnotateError::MissingImage => write!(f, "service definition has no container image"),
            AnnotateError::NotADeployment => write!(f, "definition is not a Deployment mapping"),
            AnnotateError::UnexpectedDocuments(n) => {
                write!(f, "expected 1-2 YAML documents (Deployment [+ Service]), found {n}")
            }
        }
    }
}

impl std::error::Error for AnnotateError {}

impl From<yamlite::ParseError> for AnnotateError {
    fn from(e: yamlite::ParseError) -> Self {
        AnnotateError::Yaml(e)
    }
}

/// The annotation output: the rewritten Deployment, the (possibly generated)
/// Service, and the parsed container specs shared by both cluster types.
#[derive(Clone, Debug)]
pub struct AnnotatedService {
    /// The unique worldwide service name.
    pub service_name: String,
    /// The label value identifying this service (`<ip>_<port>`).
    pub edge_label: String,
    /// Annotated Deployment document.
    pub deployment: Value,
    /// Service document (generated if absent in the input).
    pub service: Value,
    /// Parsed container specs (subset understood by Docker too: image,
    /// ports, env, hostPath volume mounts).
    pub containers: Vec<ContainerSpec>,
    /// The port the service exposes (the registered port).
    pub port: u16,
    /// The container port traffic is forwarded to.
    pub target_port: u16,
}

impl AnnotatedService {
    /// Images referenced by the containers.
    pub fn images(&self) -> Vec<ImageRef> {
        self.containers.iter().map(|c| c.image.clone()).collect()
    }

    /// Renders both documents back to a multi-document YAML stream.
    pub fn to_yaml(&self) -> String {
        format!(
            "---\n{}---\n{}",
            yamlite::to_string(&self.deployment),
            yamlite::to_string(&self.service)
        )
    }
}

/// Derives the unique worldwide name from the registered address.
pub fn unique_name(addr: ServiceAddr) -> String {
    let o = addr.ip.octets();
    format!("edge-{}-{}-{}-{}-{}", o[0], o[1], o[2], o[3], addr.port)
}

/// Label value for `edge.service` (label-charset-safe form of the address).
pub fn edge_label_value(addr: ServiceAddr) -> String {
    format!("{}_{}", addr.ip, addr.port)
}

/// Annotates a service definition for deployment at `addr`. `scheduler_name`
/// is the configured Local Scheduler for the target cluster, if any.
pub fn annotate_deployment(
    yaml: &str,
    addr: ServiceAddr,
    scheduler_name: Option<&str>,
) -> Result<AnnotatedService, AnnotateError> {
    let docs = yamlite::parse_documents(yaml)?;
    let (mut deployment, provided_service) = split_documents(docs)?;
    if !matches!(deployment, Value::Map(_)) {
        return Err(AnnotateError::NotADeployment);
    }

    let name = unique_name(addr);
    let label = edge_label_value(addr);

    // apiVersion/kind for bare definitions.
    if !deployment.contains_key("apiVersion") {
        deployment.insert("apiVersion", Value::from("apps/v1"));
    }
    if !deployment.contains_key("kind") {
        deployment.insert("kind", Value::from("Deployment"));
    }

    // 1. Unique worldwide name.
    deployment.entry_map("metadata").insert("name", Value::from(name.clone()));

    // 2. Labels: app + edge.service, applied to the deployment, the
    //    selector, and the pod template.
    let mut labels = Value::new_map();
    labels.insert("app", Value::from(name.clone()));
    labels.insert(EDGE_SERVICE_LABEL, Value::from(label.clone()));
    deployment
        .entry_map("metadata")
        .insert("labels", labels.clone());
    deployment
        .entry_map("spec")
        .entry_map("selector")
        .insert("matchLabels", labels.clone());
    deployment
        .entry_map("spec")
        .entry_map("template")
        .entry_map("metadata")
        .insert("labels", labels.clone());

    // 3. Scale to zero by default.
    deployment.entry_map("spec").insert("replicas", Value::Int(0));

    // 4. Local Scheduler, when configured for this cluster.
    if let Some(s) = scheduler_name {
        deployment
            .entry_map("spec")
            .entry_map("template")
            .entry_map("spec")
            .insert("schedulerName", Value::from(s));
    }

    // Parse containers (image is the only mandatory datum).
    let containers = parse_containers(&deployment, &name, &label)?;
    let target_port = containers
        .iter()
        .find_map(|c| c.listen_port)
        .unwrap_or(addr.port);

    // 5. The Service object: generated unless provided.
    let service = match provided_service {
        Some(mut svc) => {
            svc.entry_map("metadata").insert("name", Value::from(name.clone()));
            if !svc.entry_map("spec").contains_key("selector") {
                svc.entry_map("spec").insert("selector", labels.clone());
            }
            svc
        }
        None => generate_service(&name, &labels, addr.port, target_port),
    };

    Ok(AnnotatedService {
        service_name: name,
        edge_label: label,
        deployment,
        service,
        containers,
        port: addr.port,
        target_port,
    })
}

fn split_documents(docs: Vec<Value>) -> Result<(Value, Option<Value>), AnnotateError> {
    match docs.len() {
        1 => {
            let mut it = docs.into_iter();
            Ok((it.next().expect("len checked"), None))
        }
        2 => {
            let mut deployment = None;
            let mut service = None;
            for d in docs {
                match d["kind"].as_str() {
                    Some("Service") => service = Some(d),
                    _ => deployment = Some(d),
                }
            }
            let deployment = deployment.ok_or(AnnotateError::NotADeployment)?;
            Ok((deployment, service))
        }
        n => Err(AnnotateError::UnexpectedDocuments(n)),
    }
}

fn generate_service(name: &str, labels: &Value, port: u16, target_port: u16) -> Value {
    let mut ports_entry = Value::new_map();
    ports_entry.insert("port", Value::Int(port as i64));
    ports_entry.insert("targetPort", Value::Int(target_port as i64));
    ports_entry.insert("protocol", Value::from("TCP"));

    let mut spec = Value::new_map();
    spec.insert("selector", labels.clone());
    spec.insert("ports", Value::Seq(vec![ports_entry]));

    let mut meta = Value::new_map();
    meta.insert("name", Value::from(name));
    meta.insert("labels", labels.clone());

    let mut svc = Value::new_map();
    svc.insert("apiVersion", Value::from("v1"));
    svc.insert("kind", Value::from("Service"));
    svc.insert("metadata", meta);
    svc.insert("spec", spec);
    svc
}

/// Extracts the container subset both cluster types understand. For Docker,
/// only a subset of the Deployment values (volume mounts, env, ports) is
/// parsed — mirroring the reference implementation.
fn parse_containers(
    deployment: &Value,
    name: &str,
    label: &str,
) -> Result<Vec<ContainerSpec>, AnnotateError> {
    let containers = deployment
        .path("spec/template/spec/containers")
        .and_then(Value::as_seq)
        .ok_or(AnnotateError::MissingImage)?;
    if containers.is_empty() {
        return Err(AnnotateError::MissingImage);
    }

    // hostPath volumes by name, for mount resolution.
    let volumes = deployment
        .path("spec/template/spec/volumes")
        .and_then(Value::as_seq)
        .unwrap_or(&[]);
    let host_path_of = |vol_name: &str| -> Option<String> {
        volumes.iter().find_map(|v| {
            (v["name"].as_str() == Some(vol_name))
                .then(|| v["hostPath"]["path"].as_str().map(str::to_owned))
                .flatten()
        })
    };

    let mut out = Vec::with_capacity(containers.len());
    for (i, c) in containers.iter().enumerate() {
        let image = c["image"].as_str().ok_or(AnnotateError::MissingImage)?;
        let cname = c["name"]
            .as_str()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("{name}-c{i}"));
        let listen_port = c["ports"][0]["containerPort"]
            .as_i64()
            .and_then(|p| u16::try_from(p).ok());
        let mut spec = ContainerSpec::new(
            format!("{name}-{cname}"),
            ImageRef::parse(image),
            listen_port,
        )
        .with_label(EDGE_SERVICE_LABEL, label);
        if let Some(envs) = c["env"].as_seq() {
            for e in envs {
                if let (Some(k), Some(v)) = (e["name"].as_str(), e["value"].as_str()) {
                    spec = spec.with_env(k, v);
                }
            }
        }
        if let Some(mounts) = c["volumeMounts"].as_seq() {
            for m in mounts {
                if let (Some(vol), Some(path)) = (m["name"].as_str(), m["mountPath"].as_str()) {
                    if let Some(host) = host_path_of(vol) {
                        spec = spec.with_mount(host, path);
                    }
                }
            }
        }
        out.push(spec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::addr::Ipv4Addr;

    fn addr() -> ServiceAddr {
        ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80)
    }

    const MINIMAL: &str = "
spec:
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 8080
";

    #[test]
    fn minimal_definition_gets_fully_annotated() {
        let a = annotate_deployment(MINIMAL, addr(), Some("edge-pack-scheduler")).unwrap();
        assert_eq!(a.service_name, "edge-203-0-113-10-80");
        assert_eq!(a.edge_label, "203.0.113.10_80");
        let d = &a.deployment;
        assert_eq!(d["apiVersion"].as_str(), Some("apps/v1"));
        assert_eq!(d["kind"].as_str(), Some("Deployment"));
        assert_eq!(d["metadata"]["name"].as_str(), Some("edge-203-0-113-10-80"));
        assert_eq!(d["spec"]["replicas"].as_i64(), Some(0), "scale to zero");
        assert_eq!(
            d["metadata"]["labels"][EDGE_SERVICE_LABEL].as_str(),
            Some("203.0.113.10_80")
        );
        assert_eq!(
            d["spec"]["selector"]["matchLabels"]["app"].as_str(),
            Some("edge-203-0-113-10-80")
        );
        assert_eq!(
            d["spec"]["template"]["metadata"]["labels"][EDGE_SERVICE_LABEL].as_str(),
            Some("203.0.113.10_80")
        );
        assert_eq!(
            d["spec"]["template"]["spec"]["schedulerName"].as_str(),
            Some("edge-pack-scheduler")
        );
    }

    #[test]
    fn service_is_generated_with_ports() {
        let a = annotate_deployment(MINIMAL, addr(), None).unwrap();
        let s = &a.service;
        assert_eq!(s["kind"].as_str(), Some("Service"));
        assert_eq!(s["metadata"]["name"].as_str(), Some("edge-203-0-113-10-80"));
        assert_eq!(s["spec"]["ports"][0]["port"].as_i64(), Some(80));
        assert_eq!(s["spec"]["ports"][0]["targetPort"].as_i64(), Some(8080));
        assert_eq!(s["spec"]["ports"][0]["protocol"].as_str(), Some("TCP"));
        assert_eq!(
            s["spec"]["selector"][EDGE_SERVICE_LABEL].as_str(),
            Some("203.0.113.10_80")
        );
        assert_eq!(a.port, 80);
        assert_eq!(a.target_port, 8080);
    }

    #[test]
    fn containers_are_parsed_for_docker_too() {
        let yaml = "
spec:
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          env:
            - name: MODE
              value: edge
          volumeMounts:
            - name: content
              mountPath: /usr/share/nginx/html
      volumes:
        - name: content
          hostPath:
            path: /srv/edge/content
";
        let a = annotate_deployment(yaml, addr(), None).unwrap();
        assert_eq!(a.containers.len(), 1);
        let c = &a.containers[0];
        assert_eq!(c.image.to_string(), "docker.io/nginx:1.23.2");
        assert_eq!(c.listen_port, Some(80));
        assert_eq!(c.env["MODE"], "edge");
        assert_eq!(
            c.mounts,
            vec![("/srv/edge/content".to_owned(), "/usr/share/nginx/html".to_owned())]
        );
        assert_eq!(c.labels[EDGE_SERVICE_LABEL], "203.0.113.10_80");
    }

    #[test]
    fn image_only_definition_is_enough() {
        let yaml = "
spec:
  template:
    spec:
      containers:
        - image: josefhammer/web-asm:amd64
";
        let a = annotate_deployment(yaml, addr(), None).unwrap();
        assert_eq!(a.containers.len(), 1);
        // No containerPort given: the registered port is the target.
        assert_eq!(a.target_port, 80);
        assert!(a.containers[0].name.starts_with("edge-203-0-113-10-80-"));
    }

    #[test]
    fn missing_image_is_an_error() {
        assert_eq!(
            annotate_deployment("spec:\n  replicas: 3\n", addr(), None).unwrap_err(),
            AnnotateError::MissingImage
        );
        let no_image = "
spec:
  template:
    spec:
      containers:
        - name: web
";
        assert_eq!(
            annotate_deployment(no_image, addr(), None).unwrap_err(),
            AnnotateError::MissingImage
        );
    }

    #[test]
    fn bad_yaml_is_reported() {
        assert!(matches!(
            annotate_deployment("a: [unclosed", addr(), None),
            Err(AnnotateError::Yaml(_))
        ));
        assert!(matches!(
            annotate_deployment("just a scalar", addr(), None),
            Err(AnnotateError::NotADeployment)
        ));
    }

    #[test]
    fn provided_service_is_kept_but_renamed() {
        let yaml = format!(
            "{MINIMAL}---\nkind: Service\nmetadata:\n  name: my-svc\nspec:\n  ports:\n    - port: 80\n      targetPort: 8080\n"
        );
        let a = annotate_deployment(&yaml, addr(), None).unwrap();
        assert_eq!(a.service["metadata"]["name"].as_str(), Some("edge-203-0-113-10-80"));
        // Selector injected because the user omitted it.
        assert_eq!(
            a.service["spec"]["selector"][EDGE_SERVICE_LABEL].as_str(),
            Some("203.0.113.10_80")
        );
        // User's ports preserved.
        assert_eq!(a.service["spec"]["ports"][0]["targetPort"].as_i64(), Some(8080));
    }

    #[test]
    fn three_documents_rejected() {
        let yaml = format!("{MINIMAL}---\nkind: Service\n---\nkind: ConfigMap\n");
        assert_eq!(
            annotate_deployment(&yaml, addr(), None).unwrap_err(),
            AnnotateError::UnexpectedDocuments(3)
        );
    }

    #[test]
    fn annotated_yaml_roundtrips() {
        let a = annotate_deployment(MINIMAL, addr(), Some("s")).unwrap();
        let text = a.to_yaml();
        let docs = yamlite::parse_documents(&text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0], a.deployment);
        assert_eq!(docs[1], a.service);
    }

    #[test]
    fn unique_names_differ_by_address() {
        let a = unique_name(ServiceAddr::new(Ipv4Addr::new(1, 2, 3, 4), 80));
        let b = unique_name(ServiceAddr::new(Ipv4Addr::new(1, 2, 3, 4), 81));
        let c = unique_name(ServiceAddr::new(Ipv4Addr::new(1, 2, 3, 5), 80));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
