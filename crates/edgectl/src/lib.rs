//! `edgectl` — the transparent-edge SDN controller (the paper's core
//! contribution).
//!
//! The controller makes Multi-access Edge Computing *transparent*: clients
//! address registered cloud services (`ip:port`), the network intercepts
//! those requests at the ingress OpenFlow switch, and the controller
//! redirects them — rewriting packets — to service instances it deploys **on
//! demand** in edge clusters.
//!
//! The crate follows the paper's architecture:
//!
//! * [`service`] — the registry of edge services, keyed by their unique
//!   cloud `ip:port` (Section II);
//! * [`annotate`] — automated annotation of Kubernetes-style service
//!   definition files: unique worldwide name, `matchLabels`, the
//!   `edge.service` label, `replicas: 0` (scale-to-zero), `schedulerName`,
//!   and a generated `Service` object (Section V);
//! * [`cluster`] — the [`cluster::EdgeCluster`] abstraction over Docker and
//!   Kubernetes with the paper's deployment phases: **Pull**, **Create**,
//!   **Scale Up**, **Scale Down**, **Remove** (Fig. 4);
//! * [`flowmemory`] — memorized redirect flows with idle timeouts; expiry
//!   both keeps switch tables small and triggers automatic scale-down of
//!   idle services (Section V);
//! * [`scheduler`] — the *Global Scheduler* trait returning the FAST/BEST
//!   choice pair, with loadable implementations (Section IV-B, Fig. 6);
//! * [`clients`] — client location tracking (the Dispatcher "also tracks
//!   the clients' current location") across multiple ingress switches; an
//!   announced attachment change triggers the make-before-break handover
//!   in [`controller`], an unannounced one flushes the client's memorized
//!   flows so it gets re-scheduled;
//! * [`health`] — runtime health: per-cluster circuit breakers (closed →
//!   open → half-open) gating the scheduler, plus declared zone-outage
//!   windows; the detection/repair loop itself lives in [`controller`];
//! * [`autoscale`] — per-instance request queues (deterministic service
//!   time, concurrency limit, bounded backlog with rejection) and the
//!   horizontal autoscaler flexing replica counts on queue depth and
//!   utilization with hysteresis and cooldown (off by default);
//! * [`migrate`] — live stateful service migration between zones: a
//!   session-state ledger growing with served requests, snapshot transfer
//!   over a bandwidth-modelled metro link, warm start at the target, and a
//!   make-before-break flow flip (off by default);
//! * [`journal`] — controller crash-recovery: a write-ahead journal of
//!   state mutations with periodic compacted snapshots, and deterministic
//!   replay rebuilding the controller's recoverable state after a crash
//!   (off by default — with the journal disabled every mutation hook is a
//!   never-taken branch);
//! * [`predict`] — proactive-deployment predictors (Sections I/VII);
//! * [`config`] — the controller's YAML configuration file;
//! * [`dispatch`] — the Dispatcher: the flow chart of Fig. 7, including
//!   on-demand deployment **with** and **without waiting** (Figs. 2/3/5);
//! * [`controller`] — the OpenFlow-facing controller binding everything
//!   together: packet-in handling, flow installation (forward rewrite +
//!   reverse masquerade), buffered-packet release, flow-removed handling.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` in the repository root for an end-to-end
//! run: register a service, fire a client request, watch the controller
//! deploy on demand and answer through the edge.

#![warn(missing_docs)]

pub mod annotate;
pub mod autoscale;
pub mod clients;
pub mod cluster;
pub mod config;
pub mod controller;
pub mod dispatch;
pub mod flowmemory;
pub mod health;
pub mod journal;
pub mod migrate;
pub mod predict;
pub mod scheduler;
pub mod service;

pub use annotate::{annotate_deployment, AnnotateError, AnnotatedService};
pub use autoscale::{Admission, AutoscaleConfig, LoadTracker, QueueConfig, ScaleEvent};
pub use cluster::{DockerCluster, EdgeCluster, InstanceAddr, InstanceState, K8sEdgeCluster};
pub use controller::{
    ControlPlaneError, Controller, ControllerConfig, HandoverOutcome, HandoverPolicy,
    OutboundMessage, PortMap,
};
pub use dispatch::{DispatchDecision, Dispatcher};
pub use flowmemory::{FlowKey, FlowMemory, IngressId};
pub use health::{BreakerState, HealthConfig, HealthMonitor};
pub use journal::{Journal, JournalConfig, JournalStats, RecoveryMode, RecoveryReport};
pub use migrate::{
    Migration, MigrationConfig, MigrationManager, MigrationPolicy, MigrationReason,
    MigrationRecord, SessionLedger,
};
pub use scheduler::{
    scheduler_by_name, Choice, ClusterView, CloudOnlyScheduler, DockerFirstScheduler,
    GlobalScheduler, InstanceView, LatencyAwareScheduler, LatencyEwmaScheduler,
    LeastConnectionsScheduler, PredictiveScheduler, ProximityScheduler, RandomScheduler,
    RequestClass, RoundRobinScheduler, SchedulingContext, ServiceRef, Target, UnknownComponent,
    KNOWN_SCHEDULERS,
};
pub use clients::{ClientMove, ClientTracker};
pub use config::EdgeConfig;
pub use predict::{predictor_by_name, DeploymentPredictor, KNOWN_PREDICTORS};
pub use service::{EdgeService, ServiceRegistry};
