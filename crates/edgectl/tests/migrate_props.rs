//! Property tests for live migration (satellite of the `edgectl::migrate`
//! work): whatever the request history, flow population, and transfer
//! interleaving, a live migration is *lossless* — the session byte-count and
//! the FlowMemory entries at the target equal the source snapshot (plus the
//! switchover delta), and nothing that belonged to a bystander moves.

use desim::{Duration, SimTime};
use edgectl::flowmemory::{FlowKey, FlowMemory, IngressId};
use edgectl::{
    InstanceAddr, MigrationConfig, MigrationManager, MigrationPolicy, MigrationReason,
};
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::ServiceAddr;
use proptest::prelude::*;

fn svc(last: u8) -> ServiceAddr {
    ServiceAddr::new(Ipv4Addr::new(203, 0, 113, last), 80)
}

fn inst_on(cluster: usize) -> InstanceAddr {
    InstanceAddr {
        mac: MacAddr::from_id(700 + cluster as u32),
        ip: Ipv4Addr::new(10, cluster as u8, 0, 1),
        port: 31000 + cluster as u16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ledger half: the snapshot equals served-requests × bytes/request,
    /// the bytes landing at the target equal the snapshot plus whatever
    /// accrued during the transfer window, the source ends at zero, and the
    /// grand total (including bystander services) is conserved.
    #[test]
    fn live_migration_conserves_session_bytes(
        bytes_per_request in 1u64..10_000,
        served_before in 0u64..500,
        served_during in 0u64..100,
        from in 0usize..4,
        hop in 1usize..4,
        bystanders in prop::collection::vec((1u8..20, 0usize..4, 1u64..100), 0..6),
    ) {
        let to = (from + hop) % 4;
        let mut m = MigrationManager::new(MigrationConfig {
            policy: MigrationPolicy::Live,
            state_bytes_per_request: bytes_per_request,
            ..MigrationConfig::default()
        });
        let mover = svc(200);
        for _ in 0..served_before {
            m.note_served(mover, from);
        }
        let mut bystander_total = 0;
        for (s, c, n) in &bystanders {
            // Bystander state at *other* services (any cluster) must never
            // be dragged along by the mover's transfer.
            for _ in 0..*n {
                m.note_served(svc(*s), *c);
            }
            bystander_total += n * bytes_per_request;
        }
        let snapshot = m.ledger().bytes_at(mover, from);
        prop_assert_eq!(snapshot, served_before * bytes_per_request);

        let t0 = SimTime::from_secs(10);
        prop_assert!(m.can_start(mover, from, to, t0));
        let mig = m.begin(mover, from, to, MigrationReason::Explicit, t0, t0, 1);
        prop_assert_eq!(mig.state_bytes, snapshot, "snapshot taken at departure");
        // The transfer cost is linear in the snapshot: propagation plus an
        // exact serialization term.
        prop_assert_eq!(
            mig.transfer_done.saturating_since(t0),
            m.config().transfer_time(snapshot)
        );
        prop_assert!(m.pinned(mover, from) && m.pinned(mover, to));

        // The source keeps serving while the state is on the wire.
        for _ in 0..served_during {
            m.note_served(mover, from);
        }
        let total_before_flip = m.ledger().total();

        let due = m.take_due(mig.transfer_done);
        prop_assert_eq!(due.len(), 1);
        let moved = m.complete(&due[0], mig.transfer_done, 1);
        prop_assert_eq!(
            moved,
            snapshot + served_during * bytes_per_request,
            "switchover sync ships the delta accrued during the transfer"
        );
        prop_assert_eq!(m.ledger().bytes_at(mover, to), moved);
        prop_assert_eq!(m.ledger().bytes_at(mover, from), 0);
        prop_assert_eq!(m.ledger().total(), total_before_flip, "bytes conserved");
        prop_assert!(!m.pinned(mover, from) && !m.pinned(mover, to), "pin lifted");
        // Bystander services still hold exactly what they accrued.
        let mover_bytes = m.ledger().bytes_at(mover, to);
        prop_assert_eq!(m.ledger().total() - mover_bytes, bystander_total);
    }

    /// The FlowMemory half: after the flip, the target holds exactly the
    /// entries the source held — same (ingress, client, service) keys, all
    /// repointed to the target instance — and every bystander flow (other
    /// services, other clusters) is untouched.
    #[test]
    fn live_migration_moves_every_flow_and_only_those(
        movers in prop::collection::vec((0u32..3, 0u8..8), 1..10),
        bystanders in prop::collection::vec((0u32..3, 0u8..8, 1u8..20), 0..10),
        from in 0usize..3,
        hop in 1usize..3,
    ) {
        let to = (from + hop) % 3;
        let mut memory = FlowMemory::new(Duration::from_secs(600));
        let now = SimTime::from_secs(1);
        let service = svc(200);

        let mut mover_keys = std::collections::HashSet::new();
        for (g, c) in &movers {
            let key = FlowKey {
                ingress: IngressId(*g),
                client_ip: Ipv4Addr::new(192, 168, 1, 20 + c),
                service,
            };
            memory.memorize(key, inst_on(from), from, now);
            mover_keys.insert(key);
        }
        let mut bystander_keys = std::collections::HashSet::new();
        for (g, c, s) in &bystanders {
            let key = FlowKey {
                ingress: IngressId(*g),
                client_ip: Ipv4Addr::new(192, 168, 1, 20 + c),
                service: svc(*s),
            };
            // Bystanders live on the *source* cluster too — migrating one
            // service away must not move its neighbours' flows.
            memory.memorize(key, inst_on(from), from, now);
            bystander_keys.insert(key);
        }

        let snapshot = memory.entries_at(service, from);
        prop_assert_eq!(snapshot.len(), mover_keys.len());

        // The controller's flip: repoint every snapshot entry to the target.
        let flip_at = now + Duration::from_secs(3);
        for (key, _) in &snapshot {
            prop_assert!(memory.repoint(key, inst_on(to), to, flip_at));
        }

        prop_assert!(memory.entries_at(service, from).is_empty(), "source drained");
        let landed = memory.entries_at(service, to);
        prop_assert_eq!(landed.len(), mover_keys.len(), "every entry arrived");
        for (key, flow) in &landed {
            prop_assert!(mover_keys.contains(key), "no invented entries");
            prop_assert_eq!(flow.instance, inst_on(to), "repointed to the target");
            prop_assert_eq!(flow.cluster, to);
            prop_assert_eq!(flow.last_used, flip_at, "flip refreshes idle time");
        }
        for key in &bystander_keys {
            if mover_keys.contains(key) {
                continue;
            }
            let flow = memory.lookup(*key, flip_at).expect("bystander survives");
            prop_assert_eq!(flow.instance, inst_on(from), "bystander not dragged along");
            prop_assert_eq!(flow.cluster, from);
        }
    }

    /// Degenerate case pin: at state size zero the transfer is a bare
    /// propagation delay — a live migration degrades exactly to the PR 4
    /// make-before-break handover, never worse.
    #[test]
    fn zero_state_transfer_is_pure_propagation(
        prop_ms in 1u64..50,
        bandwidth in 1u64..100_000,
    ) {
        let c = MigrationConfig {
            policy: MigrationPolicy::Live,
            transfer_propagation: Duration::from_millis(prop_ms),
            transfer_bandwidth_bps: bandwidth * 1_000_000,
            ..MigrationConfig::default()
        };
        prop_assert_eq!(c.transfer_time(0), Duration::from_millis(prop_ms));
        // And the cost is monotone in bytes past that floor.
        prop_assert!(c.transfer_time(1_000_000) >= c.transfer_time(1_000));
    }
}
