//! Property tests for controller crash-recovery: whatever the
//! interleaving of packet-ins, handovers, live migrations, idle sweeps
//! and the crash instant — and in both warm (journal-replay) and cold
//! (empty-state) restart modes, with exact or aggregated rules — the
//! recovered controller always converges: one reconcile pass per switch
//! fixes all drift, a second pass finds nothing, and no session is
//! stranded (every pre-crash client's next request is still answered).

use desim::{Duration, SimRng, SimTime};
use edgectl::cluster::DockerCluster;
use edgectl::scheduler::ProximityScheduler;
use edgectl::{
    annotate_deployment, Controller, ControllerConfig, EdgeService, HandoverPolicy, IngressId,
    JournalConfig, MigrationConfig, MigrationPolicy, MigrationReason, PortMap, RecoveryMode,
};
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::{ServiceAddr, TcpFrame};
use openflow::FlowEntry;
use ovs::{Effect, Switch, SwitchConfig};
use proptest::prelude::*;
use std::collections::HashMap;

const CLIENT_PORT: u32 = 1;
const EDGE_A_PORT: u32 = 2;
const CLOUD_PORT: u32 = 3;
const EDGE_B_PORT: u32 = 4;

const ASM: ServiceAddr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);

fn make_service() -> EdgeService {
    let profile = containerd::ServiceSet::by_key("asm").unwrap();
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
        profile.manifests[0].reference, profile.listen_port
    );
    let annotated = annotate_deployment(&yaml, ASM, None).unwrap();
    EdgeService {
        addr: ASM,
        name: annotated.service_name.clone(),
        annotated,
        profile,
    }
}

fn ports() -> PortMap {
    PortMap {
        cluster_ports: HashMap::new(),
        cloud_port: CLOUD_PORT,
    }
}

fn setup(rng: &mut SimRng, aggregate: bool) -> (Controller, Vec<Switch>) {
    let mut config = ControllerConfig {
        journal: JournalConfig {
            enabled: true,
            snapshot_every: 3,
        },
        migration: MigrationConfig {
            policy: MigrationPolicy::Live,
            state_bytes_per_request: 256,
            ..MigrationConfig::default()
        },
        ..ControllerConfig::default()
    };
    config.aggregate_rules = aggregate;
    let mut ctl = Controller::new(Box::<ProximityScheduler>::default(), ports(), config);
    for (i, (name, latency_us)) in [("edge-a", 150u64), ("edge-b", 400u64)].iter().enumerate() {
        let mut engine = dockersim::DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, rng);
        let cluster = DockerCluster::new(
            *name,
            engine,
            MacAddr::from_id(200 + i as u32),
            Ipv4Addr::new(10, 0, i as u8, 10),
            Duration::from_micros(*latency_us),
        );
        let port = if i == 0 { EDGE_A_PORT } else { EDGE_B_PORT };
        ctl.add_cluster(Box::new(cluster), port);
    }
    let g1 = ctl.add_ingress(ports());
    for (name, port) in [("edge-a", EDGE_A_PORT), ("edge-b", EDGE_B_PORT)] {
        ctl.map_cluster_port(g1, name, port);
    }
    ctl.register_service(make_service());
    let switches = (0..2)
        .map(|i| {
            Switch::new(SwitchConfig {
                datapath_id: 1 + i,
                n_buffers: 64,
                miss_send_len: 0xffff,
                ports: vec![CLIENT_PORT, EDGE_A_PORT, CLOUD_PORT, EDGE_B_PORT],
            })
        })
        .collect();
    (ctl, switches)
}

fn packet_in(
    ctl: &mut Controller,
    sws: &mut [Switch],
    g: usize,
    client: u8,
    src_port: u16,
    now: SimTime,
    rng: &mut SimRng,
) {
    let frame = TcpFrame::syn(
        MacAddr::from_id(client as u32),
        MacAddr::from_id(99),
        Ipv4Addr::new(192, 168, 1, client),
        src_port,
        ASM,
    );
    let effects = sws[g].handle_frame(now, CLIENT_PORT, &frame.encode());
    for e in effects {
        if let Effect::ToController(bytes) = e {
            let out = ctl
                .handle_switch_message_from(IngressId(g as u32), now, &bytes, rng)
                .expect("well-formed packet-in");
            for m in out {
                let _ = sws[g].handle_controller(m.at, &m.data);
            }
        }
    }
}

/// One abstract step of the pre-crash history, decoded from a raw tuple.
fn apply_op(
    ctl: &mut Controller,
    sws: &mut [Switch],
    op: (u8, u8, u8),
    now: SimTime,
    rng: &mut SimRng,
) {
    let (kind, a, b) = op;
    let client = 20 + a % 6;
    let g = (b % 2) as usize;
    match kind % 6 {
        // Ordinary table-miss traffic (the common case, weighted double).
        0 | 1 => packet_in(ctl, sws, g, client, 50_000 + a as u16, now, rng),
        // An announced handover to the other ingress.
        2 => {
            let policy = if b % 4 < 2 {
                HandoverPolicy::Anchored
            } else {
                HandoverPolicy::Redispatch
            };
            let ho = ctl.handle_attachment_change(
                now,
                Ipv4Addr::new(192, 168, 1, client),
                MacAddr::from_id(client as u32),
                MacAddr::from_id(99),
                IngressId(1 - g as u32),
                IngressId(g as u32),
                CLIENT_PORT,
                policy,
                rng,
            );
            for (gi, m) in &ho.messages {
                let _ = sws[gi.0 as usize].handle_controller(m.at, &m.data);
            }
        }
        // Session state accrues, then a live migration may start; crashing
        // while it is in flight is the interesting interleaving.
        3 => {
            for _ in 0..3 {
                ctl.note_served(ASM, g);
            }
            ctl.begin_migration(now, ASM, g, 1 - g, MigrationReason::Explicit, rng);
        }
        // Flip whatever migration came due.
        4 => {
            let out = ctl.migration_tick(now, rng);
            for (gi, m) in &out {
                let _ = sws[gi.0 as usize].handle_controller(m.at, &m.data);
            }
        }
        // Idle sweep + switch-side expiry (FlowRemoved tombstones).
        _ => {
            ctl.tick(now, rng);
            for (g, sw) in sws.iter_mut().enumerate() {
                let effects = sw.expire_flows(now);
                for e in effects {
                    if let Effect::ToController(bytes) = e {
                        let out = ctl
                            .handle_switch_message_from(IngressId(g as u32), now, &bytes, rng)
                            .expect("well-formed flow-removed");
                        for m in out {
                            let _ = sw.handle_controller(m.at, &m.data);
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-during-anything convergence: run a random operation history,
    /// crash at a random point in either mode, reconcile, and require a
    /// clean fixpoint with no stranded session.
    #[test]
    fn crash_replay_and_reconcile_always_converge(
        ops in prop::collection::vec((0u8..6, 0u8..6, 0u8..4), 1..14),
        warm in any::<bool>(),
        aggregate in any::<bool>(),
        seed in 0u64..64,
    ) {
        let mut rng = SimRng::new(1000 + seed);
        let (mut ctl, mut sws) = setup(&mut rng, aggregate);
        let mut now = SimTime::from_secs(1);
        let mut seen: Vec<u8> = Vec::new();
        for &op in &ops {
            apply_op(&mut ctl, &mut sws, op, now, &mut rng);
            if op.0 % 6 <= 1 {
                let c = 20 + op.1 % 6;
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
            now += Duration::from_secs(2);
        }

        // The journal's own invariant held right up to the crash.
        if !aggregate {
            prop_assert_eq!(ctl.journal_rebuild_digest().unwrap(), ctl.state_digest());
        } else {
            prop_assert_eq!(
                ctl.journal_rebuild_digest().unwrap(),
                ctl.state_digest(),
                "oracle must hold with aggregated rules too"
            );
        }

        // Crash. Warm replays the journal; cold starts from nothing.
        let mode = if warm { RecoveryMode::Warm } else { RecoveryMode::Cold };
        let digest_before = ctl.state_digest();
        let report = ctl.crash_restart(mode, now);
        prop_assert_eq!(report.mode, mode);
        if warm && report.aborted_migrations == 0 {
            prop_assert_eq!(ctl.state_digest(), digest_before, "lossless warm restart");
        }

        // Reconcile every switch; apply the fixes; the second pass must be
        // empty in BOTH modes — that is the convergence contract.
        now += Duration::from_secs(1);
        for (g, sw) in sws.iter_mut().enumerate() {
            let flows: Vec<FlowEntry> = sw.table().entries().cloned().collect();
            let out = ctl.reconcile(IngressId(g as u32), &flows, now);
            for m in out {
                let _ = sw.handle_controller(m.at, &m.data);
            }
        }
        now += Duration::from_secs(1);
        for (g, sw) in sws.iter_mut().enumerate() {
            let flows: Vec<FlowEntry> = sw.table().entries().cloned().collect();
            let residual = ctl.reconcile(IngressId(g as u32), &flows, now);
            prop_assert!(
                residual.is_empty(),
                "second reconcile pass must find nothing (mode {:?}, residual {})",
                mode,
                residual.len()
            );
        }

        // No stranded session: every client that had traffic before the
        // crash gets its next request answered — a fresh SYN either hits
        // surviving flows on the switch or re-enters dispatch, never an
        // error.
        now += Duration::from_secs(1);
        for (i, &client) in seen.iter().enumerate() {
            packet_in(&mut ctl, &mut sws, i % 2, client, 60_000 + i as u16, now, &mut rng);
            now += Duration::from_secs(1);
        }

        // And the restarted controller's journal is already good for the
        // *next* crash: rebuild still matches the live state.
        prop_assert_eq!(ctl.journal_rebuild_digest().unwrap(), ctl.state_digest());
    }
}
