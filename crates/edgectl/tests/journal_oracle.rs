//! Differential oracle for the crash-recovery journal: at **every**
//! mutation boundary, rebuilding controller state from the journal
//! (compacted snapshot + replayed tail) must be byte-identical to the
//! live, uncrashed controller's recoverable state. The live controller is
//! the "uncrashed twin"; [`Controller::journal_rebuild_digest`] is what a
//! warm restart at that instant would recover.

use desim::{Duration, SimRng, SimTime};
use edgectl::cluster::DockerCluster;
use edgectl::scheduler::ProximityScheduler;
use edgectl::{
    annotate_deployment, Controller, ControllerConfig, EdgeService, HandoverPolicy, IngressId,
    JournalConfig, MigrationConfig, MigrationPolicy, MigrationReason, PortMap, RecoveryMode,
};
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::{ServiceAddr, TcpFrame};
use openflow::FlowEntry;
use ovs::{Effect, Switch, SwitchConfig};
use std::collections::HashMap;

const CLIENT_PORT: u32 = 1;
const EDGE_A_PORT: u32 = 2;
const CLOUD_PORT: u32 = 3;
const EDGE_B_PORT: u32 = 4;

fn make_service(key: &str, ip_last: u8) -> EdgeService {
    let profile = containerd::ServiceSet::by_key(key).unwrap();
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, ip_last), 80);
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
        profile.manifests[0].reference, profile.listen_port
    );
    let annotated = annotate_deployment(&yaml, addr, None).unwrap();
    EdgeService {
        addr,
        name: annotated.service_name.clone(),
        annotated,
        profile,
    }
}

fn ports() -> PortMap {
    PortMap {
        cluster_ports: HashMap::new(),
        cloud_port: CLOUD_PORT,
    }
}

/// Two-cluster, two-ingress controller with the journal on (tiny
/// compaction threshold so snapshots actually happen mid-sequence) and
/// live migration enabled, plus one switch per ingress.
fn setup(rng: &mut SimRng, aggregate: bool) -> (Controller, Vec<Switch>) {
    let mut config = ControllerConfig {
        journal: JournalConfig {
            enabled: true,
            snapshot_every: 4,
        },
        migration: MigrationConfig {
            policy: MigrationPolicy::Live,
            state_bytes_per_request: 512,
            ..MigrationConfig::default()
        },
        ..ControllerConfig::default()
    };
    config.aggregate_rules = aggregate;
    let mut ctl = Controller::new(Box::<ProximityScheduler>::default(), ports(), config);
    for (i, (name, latency_us)) in [("edge-a", 150u64), ("edge-b", 400u64)].iter().enumerate() {
        let mut engine = dockersim::DockerEngine::with_defaults();
        engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, rng);
        let cluster = DockerCluster::new(
            *name,
            engine,
            MacAddr::from_id(200 + i as u32),
            Ipv4Addr::new(10, 0, i as u8, 10),
            Duration::from_micros(*latency_us),
        );
        let port = if i == 0 { EDGE_A_PORT } else { EDGE_B_PORT };
        ctl.add_cluster(Box::new(cluster), port);
    }
    let g1 = ctl.add_ingress(ports());
    for (name, port) in [("edge-a", EDGE_A_PORT), ("edge-b", EDGE_B_PORT)] {
        ctl.map_cluster_port(g1, name, port);
    }
    ctl.register_service(make_service("asm", 10));
    ctl.register_service(make_service("nginx", 11));
    let switches = (0..2)
        .map(|i| {
            Switch::new(SwitchConfig {
                datapath_id: 1 + i,
                n_buffers: 64,
                miss_send_len: 0xffff,
                ports: vec![CLIENT_PORT, EDGE_A_PORT, CLOUD_PORT, EDGE_B_PORT],
            })
        })
        .collect();
    (ctl, switches)
}

fn client_syn(client_last: u8, src_port: u16, svc_last: u8) -> TcpFrame {
    TcpFrame::syn(
        MacAddr::from_id(client_last as u32),
        MacAddr::from_id(99),
        Ipv4Addr::new(192, 168, 1, client_last),
        src_port,
        ServiceAddr::new(Ipv4Addr::new(203, 0, 113, svc_last), 80),
    )
}

/// One data-plane round: frame into the switch, packet-in (if any) to the
/// controller, controller replies back into the switch.
fn pump(
    ctl: &mut Controller,
    sw: &mut Switch,
    ingress: IngressId,
    now: SimTime,
    frame: &TcpFrame,
    rng: &mut SimRng,
) {
    let effects = sw.handle_frame(now, CLIENT_PORT, &frame.encode());
    deliver(ctl, sw, ingress, now, effects, rng);
}

fn deliver(
    ctl: &mut Controller,
    sw: &mut Switch,
    ingress: IngressId,
    now: SimTime,
    effects: Vec<Effect>,
    rng: &mut SimRng,
) {
    for e in effects {
        if let Effect::ToController(bytes) = e {
            let out = ctl
                .handle_switch_message_from(ingress, now, &bytes, rng)
                .expect("controller accepts switch message");
            for m in out {
                let _ = sw.handle_controller(m.at, &m.data);
            }
        }
    }
}

#[track_caller]
fn assert_oracle(ctl: &Controller, label: &str) {
    let live = ctl.state_digest();
    let rebuilt = ctl.journal_rebuild_digest().expect("journal is on");
    assert_eq!(rebuilt, live, "journal rebuild diverged after {label}");
}

fn run_mutation_sequence(aggregate: bool) {
    let mut rng = SimRng::new(77);
    let (mut ctl, mut sws) = setup(&mut rng, aggregate);
    let asm = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    assert_oracle(&ctl, "construction");

    // Packet-ins across both ingresses and both services: FlowMemory
    // inserts, pair installs, client sightings, MAC learning.
    let mut now = SimTime::from_secs(1);
    for (i, &(client, svc)) in [(20u8, 10u8), (21, 10), (22, 11), (23, 10), (24, 11), (20, 11)]
        .iter()
        .enumerate()
    {
        let g = i % 2;
        let f = client_syn(client, 50_000 + i as u16, svc);
        pump(&mut ctl, &mut sws[g], IngressId(g as u32), now, &f, &mut rng);
        assert_oracle(&ctl, "packet-in");
        now += Duration::from_secs(2);
    }
    assert!(
        ctl.journal_stats().snapshots_taken > 0,
        "snapshot_every=4 must have compacted by now"
    );

    // An announced handover: sweep + re-install at the new ingress.
    let ho = ctl.handle_attachment_change(
        now,
        Ipv4Addr::new(192, 168, 1, 20),
        MacAddr::from_id(20),
        MacAddr::from_id(99),
        IngressId(0),
        IngressId(1),
        CLIENT_PORT,
        HandoverPolicy::Anchored,
        &mut rng,
    );
    for (g, m) in &ho.messages {
        let _ = sws[g.0 as usize].handle_controller(m.at, &m.data);
    }
    assert_oracle(&ctl, "handover");
    now = ho.completed_at + Duration::from_secs(1);

    // A live migration: ledger writes, begin, flow flip (repoints +
    // teardown tombstones), completion.
    for _ in 0..5 {
        ctl.note_served(asm, 0);
    }
    assert_oracle(&ctl, "note_served");
    assert!(ctl.begin_migration(now, asm, 0, 1, MigrationReason::Explicit, &mut rng));
    assert_oracle(&ctl, "begin_migration");
    let due = ctl.next_migration_at().expect("one migration in flight");
    let out = ctl.migration_tick(due, &mut rng);
    for (g, m) in &out {
        let _ = sws[g.0 as usize].handle_controller(m.at, &m.data);
    }
    assert_oracle(&ctl, "migration_tick");
    now = due + Duration::from_secs(1);

    // Switch-side idle expiry raises FlowRemoved: tombstones + Forget.
    now += Duration::from_secs(30);
    for (g, sw) in sws.iter_mut().enumerate() {
        let effects = sw.expire_flows(now);
        deliver(&mut ctl, sw, IngressId(g as u32), now, effects, &mut rng);
        assert_oracle(&ctl, "flow-removed");
    }

    // Idle sweep past the memory timeout: expiries + scale-down events.
    now += Duration::from_secs(120);
    ctl.tick(now, &mut rng);
    assert_oracle(&ctl, "tick");

    // A zone outage begins and ends: breaker ops + aggregate retains.
    let msgs = ctl.begin_zone_outage(1, now, now + Duration::from_secs(30), &mut rng);
    for (g, m) in &msgs {
        let _ = sws[g.0 as usize].handle_controller(m.at, &m.data);
    }
    assert_oracle(&ctl, "begin_zone_outage");
    ctl.end_zone_outage(1);
    assert_oracle(&ctl, "end_zone_outage");

    // Instance crash + detection sweep: memory forgets, breaker feeds.
    now += Duration::from_secs(5);
    let f = client_syn(25, 51_000, 10);
    pump(&mut ctl, &mut sws[0], IngressId(0), now, &f, &mut rng);
    assert_oracle(&ctl, "packet-in (redeploy)");
    now += Duration::from_secs(5);
    ctl.inject_instance_crash(0, asm, now, &mut rng);
    let msgs = ctl.health_check(now + Duration::from_secs(1));
    for (g, m) in &msgs {
        let _ = sws[g.0 as usize].handle_controller(m.at, &m.data);
    }
    assert_oracle(&ctl, "health_check");

    // A warm restart mid-sequence must re-seed the journal: the oracle
    // keeps holding for mutations after the restart (regression for the
    // second-crash-rebuilds-from-empty bug).
    let report = ctl.crash_restart(RecoveryMode::Warm, now);
    assert_eq!(report.mode, RecoveryMode::Warm);
    assert_oracle(&ctl, "crash_restart(warm)");
    now += Duration::from_secs(2);
    let f = client_syn(26, 52_000, 10);
    pump(&mut ctl, &mut sws[0], IngressId(0), now, &f, &mut rng);
    assert_oracle(&ctl, "packet-in after warm restart");
}

#[test]
fn rebuild_matches_live_state_at_every_mutation_boundary() {
    run_mutation_sequence(false);
}

#[test]
fn rebuild_matches_live_state_with_aggregate_rules() {
    run_mutation_sequence(true);
}

#[test]
fn warm_restart_preserves_recoverable_state_and_cold_does_not() {
    let mut rng = SimRng::new(78);
    let (mut ctl, mut sws) = setup(&mut rng, false);
    let mut now = SimTime::from_secs(1);
    for (i, client) in [20u8, 21, 22].iter().enumerate() {
        let g = i % 2;
        let f = client_syn(*client, 50_000 + i as u16, 10);
        pump(&mut ctl, &mut sws[g], IngressId(g as u32), now, &f, &mut rng);
        now += Duration::from_secs(2);
    }
    let before = ctl.state_digest();
    assert!(!ctl.memory().is_empty());

    // Warm: recoverable state survives byte-identically (no in-flight
    // migration to abort here).
    let report = ctl.crash_restart(RecoveryMode::Warm, now);
    assert_eq!(report.aborted_migrations, 0);
    assert!(report.replayed_events > 0 || report.snapshot_entries > 0);
    assert_eq!(ctl.state_digest(), before, "warm restart loses nothing");

    // Second crash right after the first: the re-seeded journal must
    // still carry the full state.
    ctl.crash_restart(RecoveryMode::Warm, now + Duration::from_secs(1));
    assert_eq!(ctl.state_digest(), before, "state survives a double crash");

    // Cold: everything recoverable is gone; reconciliation starts over.
    let report = ctl.crash_restart(RecoveryMode::Cold, now + Duration::from_secs(2));
    assert_eq!((report.replayed_events, report.snapshot_entries), (0, 0));
    assert!(ctl.memory().is_empty());
    assert_ne!(ctl.state_digest(), before);

    // Either way, a reconcile pass converges the switch tables: the
    // second pass has nothing left to fix.
    let t = now + Duration::from_secs(3);
    for (g, sw) in sws.iter_mut().enumerate() {
        let flows: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        let out = ctl.reconcile(IngressId(g as u32), &flows, t);
        for m in out {
            let _ = sw.handle_controller(m.at, &m.data);
        }
        let flows: Vec<FlowEntry> = sw.table().entries().cloned().collect();
        assert!(
            ctl.reconcile(IngressId(g as u32), &flows, t + Duration::from_secs(1))
                .is_empty(),
            "cold-restart reconcile converges in one pass"
        );
    }
}
