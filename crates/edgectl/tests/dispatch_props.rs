//! Property tests for the controller's dispatch logic and FlowMemory.

use desim::{Duration, SimRng, SimTime};
use edgectl::annotate_deployment;
use edgectl::cluster::{DockerCluster, EdgeCluster};
use edgectl::dispatch::{DispatchDecision, Dispatcher};
use edgectl::flowmemory::{FlowKey, FlowMemory, IngressId};
use edgectl::scheduler::scheduler_by_name;
use edgectl::EdgeService;
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::ServiceAddr;
use proptest::prelude::*;

fn make_service(port: u16) -> EdgeService {
    let profile = containerd::ServiceSet::by_key("asm").unwrap();
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), port);
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - image: {}\n          ports:\n            - containerPort: 80\n",
        profile.manifests[0].reference
    );
    let annotated = annotate_deployment(&yaml, addr, None).unwrap();
    EdgeService {
        addr,
        name: annotated.service_name.clone(),
        annotated,
        profile,
    }
}

fn clusters(n: usize, seed: u64) -> Vec<Box<dyn EdgeCluster>> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| {
            let mut engine = dockersim::DockerEngine::with_defaults();
            engine.pull(
                &containerd::ServiceSet::by_key("asm").unwrap().manifests,
                &mut rng,
            );
            Box::new(DockerCluster::new(
                format!("edge-{i}"),
                engine,
                MacAddr::from_id(100 + i as u32),
                Ipv4Addr::new(10, i as u8, 0, 1),
                Duration::from_micros(100 * (i as u64 + 1)),
            )) as Box<dyn EdgeCluster>
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the scheduler and request interleaving: once a request was
    /// dispatched to the edge, *subsequent* requests from the same client to
    /// the same service never re-deploy while the instance is alive.
    #[test]
    fn repeat_dispatches_never_redeploy(
        scheduler in prop_oneof![Just("proximity"), Just("round-robin")],
        n_clusters in 1usize..4,
        gaps in prop::collection::vec(1u64..20, 1..8),
        seed in any::<u64>(),
    ) {
        let svc = make_service(80);
        let mut cls = clusters(n_clusters, seed);
        let mut memory = FlowMemory::new(Duration::from_secs(600));
        let mut d = Dispatcher::new(scheduler_by_name(scheduler).unwrap(), Duration::from_millis(25));
        let mut rng = SimRng::new(seed ^ 1);
        let client = Ipv4Addr::new(192, 168, 1, 20);

        let mut now = SimTime::from_secs(1);
        let first = d.dispatch_untraced(&svc, client, now, &mut cls, &mut memory, &mut rng);
        let ready = match first.decision {
            DispatchDecision::WaitThenRedirect { ready_at, .. } => ready_at,
            DispatchDecision::Redirect { .. } => now,
            // Cloud-only paths (including breaker fallback) prove nothing here.
            DispatchDecision::ForwardToCloud => return Ok(()),
            DispatchDecision::FallbackCloud { .. } => return Ok(()),
        };
        now = ready;
        for g in gaps {
            now += Duration::from_secs(g);
            let out = d.dispatch_untraced(&svc, client, now, &mut cls, &mut memory, &mut rng);
            prop_assert!(
                matches!(out.decision, DispatchDecision::Redirect { .. }),
                "redeployed at {now:?}: {:?}", out.decision
            );
            prop_assert!(out.phases.scale_up_at.is_none(), "no new scale-up");
        }
    }

    /// Distinct clients to the same service always land on the *same*
    /// instance while it is alive (the service is deployed once).
    #[test]
    fn many_clients_one_instance(
        n_clients in 2usize..12,
        seed in any::<u64>(),
    ) {
        let svc = make_service(80);
        let mut cls = clusters(2, seed);
        let mut memory = FlowMemory::new(Duration::from_secs(600));
        let mut d = Dispatcher::new(scheduler_by_name("proximity").unwrap(), Duration::from_millis(25));
        let mut rng = SimRng::new(seed ^ 2);

        let mut instances = std::collections::HashSet::new();
        let mut now = SimTime::from_secs(1);
        for i in 0..n_clients {
            let client = Ipv4Addr::new(192, 168, 1, 20 + i as u8);
            let out = d.dispatch_untraced(&svc, client, now, &mut cls, &mut memory, &mut rng);
            match out.decision {
                DispatchDecision::Redirect { instance, .. } => {
                    instances.insert((instance.ip, instance.port));
                }
                DispatchDecision::WaitThenRedirect { instance, ready_at, .. } => {
                    instances.insert((instance.ip, instance.port));
                    now = now.max(ready_at);
                }
                DispatchDecision::ForwardToCloud | DispatchDecision::FallbackCloud { .. } => {
                    return Err(TestCaseError::fail("unexpected cloud"));
                }
            }
            now += Duration::from_millis(100);
        }
        prop_assert_eq!(instances.len(), 1, "one shared instance");
        prop_assert_eq!(memory.len(), n_clients, "one memorized flow per client");
    }

    /// FlowMemory expiry is exact: entries live strictly less than the idle
    /// timeout without traffic, and touching always extends life.
    #[test]
    fn flow_memory_expiry_is_exact(
        timeout_s in 1u64..100,
        touches in prop::collection::vec(1u64..50, 0..10),
        seed in any::<u64>(),
    ) {
        let timeout = Duration::from_secs(timeout_s);
        let mut m = FlowMemory::new(timeout);
        let key = FlowKey {
            ingress: IngressId::DEFAULT,
            client_ip: Ipv4Addr::new(192, 168, 1, 20),
            service: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        };
        let inst = edgectl::InstanceAddr {
            mac: MacAddr::from_id(1),
            ip: Ipv4Addr::new(10, 0, 0, 1),
            port: 31000,
        };
        let mut now = SimTime::from_secs(1);
        m.memorize(key, inst, 0, now);
        let mut rng = SimRng::new(seed);
        for t in touches {
            // Touch strictly within the timeout: entry must survive.
            let dt = Duration::from_secs(t.min(timeout_s.saturating_sub(1).max(1) )) ;
            let dt = if dt >= timeout { Duration::from_secs(timeout_s - 1) } else { dt };
            now += dt;
            let _ = rng.next_u64();
            prop_assert!(m.lookup(key, now).is_some(), "alive within timeout");
        }
        // One instant before expiry: alive (and refreshed). At a full
        // timeout after that refresh: gone.
        let just_before = now + (timeout - Duration::from_nanos(1));
        prop_assert!(m.lookup(key, just_before).is_some());
        let at_expiry = just_before + timeout;
        prop_assert!(m.lookup(key, at_expiry).is_none());
        let idle = m.expire(at_expiry);
        prop_assert_eq!(idle.len(), 1);
        prop_assert!(m.is_empty());
    }

    /// Ingress isolation: entries memorized under one gNB's switch are never
    /// visible through another's key — neither via `lookup` nor via
    /// `flows_of_client_at` — whatever the mix of ingresses, clients, and
    /// services.
    #[test]
    fn flow_memory_never_leaks_across_ingresses(
        entries in prop::collection::vec((0u32..4, 0u8..6, 0u16..3), 1..24),
    ) {
        let mut m = FlowMemory::new(Duration::from_secs(600));
        let now = SimTime::from_secs(1);
        let mut expected = std::collections::HashSet::new();
        for (g, c, s) in entries {
            let key = FlowKey {
                ingress: IngressId(g),
                client_ip: Ipv4Addr::new(192, 168, 1, 20 + c),
                service: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80 + s),
            };
            let inst = edgectl::InstanceAddr {
                mac: MacAddr::from_id(g),
                ip: Ipv4Addr::new(10, g as u8, 0, 1),
                port: 31000 + g as u16,
            };
            m.memorize(key, inst, g as usize, now);
            expected.insert(key);
        }
        prop_assert_eq!(m.len(), expected.len());
        for g in 0..4u32 {
            for c in 0..6u8 {
                let client = Ipv4Addr::new(192, 168, 1, 20 + c);
                let visible = m.flows_of_client_at(client, IngressId(g));
                // Exactly the keys memorized under (g, c) — nothing borrowed
                // from a neighbouring switch.
                let want: std::collections::HashSet<FlowKey> = expected
                    .iter()
                    .filter(|k| k.ingress == IngressId(g) && k.client_ip == client)
                    .copied()
                    .collect();
                let got: std::collections::HashSet<FlowKey> =
                    visible.iter().map(|(k, _)| *k).collect();
                prop_assert_eq!(got, want);
                for (k, f) in visible {
                    prop_assert_eq!(k.ingress, IngressId(g));
                    // The memorized instance is the one for this ingress.
                    prop_assert_eq!(f.cluster, k.ingress.0 as usize);
                }
            }
        }
        // A key that differs only in ingress never hits.
        for key in &expected {
            let foreign = FlowKey { ingress: IngressId(key.ingress.0 + 100), ..*key };
            prop_assert!(m.lookup(foreign, now).is_none(), "foreign ingress must miss");
        }
    }

    /// Handover re-keying is lossless: moving a client's entries from one
    /// ingress to another preserves every (service → instance) binding, and
    /// leaves both the old ingress empty and every *other* client and
    /// ingress untouched.
    #[test]
    fn rekeying_on_handover_preserves_every_flow(
        n_services in 1u16..5,
        from in 0u32..3,
        to in 0u32..3,
        bystanders in prop::collection::vec((0u32..3, 0u16..5), 0..8),
    ) {
        let mut m = FlowMemory::new(Duration::from_secs(600));
        let now = SimTime::from_secs(1);
        let mover = Ipv4Addr::new(192, 168, 1, 20);
        let other = Ipv4Addr::new(192, 168, 1, 99);
        let inst_of = |s: u16| edgectl::InstanceAddr {
            mac: MacAddr::from_id(s as u32),
            ip: Ipv4Addr::new(10, 0, 0, 1 + s as u8),
            port: 31000 + s,
        };
        for s in 0..n_services {
            let key = FlowKey {
                ingress: IngressId(from),
                client_ip: mover,
                service: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80 + s),
            };
            m.memorize(key, inst_of(s), s as usize, now);
        }
        let mut bystander_keys = std::collections::HashSet::new();
        for (g, s) in bystanders {
            let key = FlowKey {
                ingress: IngressId(g),
                client_ip: other,
                service: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80 + s),
            };
            m.memorize(key, inst_of(s), 0, now);
            bystander_keys.insert(key);
        }
        let later = now + Duration::from_secs(5);
        let moved = m.rekey_client(mover, IngressId(from), IngressId(to), later);
        prop_assert_eq!(moved, n_services as usize, "every entry re-keyed");
        if from != to {
            prop_assert!(m.flows_of_client_at(mover, IngressId(from)).is_empty());
        }
        let at_new = m.flows_of_client_at(mover, IngressId(to));
        prop_assert_eq!(at_new.len(), n_services as usize);
        for (k, f) in at_new {
            let s = k.service.port - 80;
            prop_assert_eq!(f.instance, inst_of(s), "binding survives the move");
            prop_assert_eq!(f.cluster, s as usize);
            prop_assert_eq!(f.last_used, later, "re-key refreshes idle time");
        }
        // Bystanders: exactly as memorized, wherever they were keyed.
        for key in bystander_keys {
            prop_assert!(m.lookup(key, later).is_some(), "bystander untouched");
        }
    }

    /// The stale-redirect oracle: after an instance crash is repaired with
    /// `forget_instance` (or a whole zone with `forget_cluster`), no lookup —
    /// through any key, at any later time — ever returns the removed
    /// address again, while every binding to a surviving instance remains
    /// intact.
    #[test]
    fn crashed_instance_is_never_returned_again(
        entries in prop::collection::vec((0u32..3, 0u8..6, 0u16..3, 0u32..4), 1..32),
        victim in 0u32..4,
        by_cluster in any::<bool>(),
        later_s in 0u64..300,
    ) {
        let mut m = FlowMemory::new(Duration::from_secs(600));
        let now = SimTime::from_secs(1);
        let inst_of = |i: u32| edgectl::InstanceAddr {
            mac: MacAddr::from_id(500 + i),
            ip: Ipv4Addr::new(10, i as u8, 0, 1),
            port: 31000 + i as u16,
        };
        let mut keys_of = std::collections::HashMap::new();
        for (g, c, s, i) in entries {
            let key = FlowKey {
                ingress: IngressId(g),
                client_ip: Ipv4Addr::new(192, 168, 1, 20 + c),
                service: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80 + s),
            };
            // Instance i lives on cluster i: forgetting by address and by
            // cluster must evict exactly the same set.
            m.memorize(key, inst_of(i), i as usize, now);
            keys_of.insert(key, i);
        }
        let before = m.len();
        let evicted = if by_cluster {
            m.forget_cluster(victim as usize)
        } else {
            m.forget_instance(inst_of(victim))
        };
        let hit: Vec<&FlowKey> =
            keys_of.iter().filter(|(_, i)| **i == victim).map(|(k, _)| k).collect();
        prop_assert_eq!(evicted.len(), hit.len(), "exactly the victim's flows evicted");
        prop_assert_eq!(m.len(), before - hit.len());
        let later = now + Duration::from_secs(later_s);
        for (key, i) in &keys_of {
            let got = m.lookup(*key, later);
            if *i == victim {
                prop_assert!(got.is_none(), "stale redirect for {key:?} after crash");
            } else {
                let f = got.expect("survivor binding intact");
                prop_assert_eq!(f.instance, inst_of(*i));
            }
        }
        // The crashed address is gone from the instance inventory too — the
        // health sweep can never see (and re-repair) a ghost.
        prop_assert!(
            m.instances().iter().all(|(_, inst, _)| *inst != inst_of(victim)),
            "inventory still lists the crashed instance"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Least-connections never selects an at-capacity replica while any
    /// schedulable sibling still has headroom: saturation of the pick
    /// implies saturation of the whole ready fleet.
    #[test]
    fn least_connections_never_picks_saturated_over_headroom(
        shapes in prop::collection::vec(
            // (ready, distance µs, per-instance (in_flight, backlog))
            (
                any::<bool>(),
                100u64..1000,
                prop::collection::vec((0usize..6, 0usize..4), 0..4),
            ),
            1..5,
        ),
    ) {
        use edgectl::cluster::{InstanceAddr, InstanceState};
        use edgectl::scheduler::{
            ClusterView, GlobalScheduler, InstanceView, LeastConnectionsScheduler,
            RequestClass, SchedulingContext, ServiceRef,
        };

        const CONCURRENCY: usize = 3;
        let views: Vec<ClusterView> = shapes
            .iter()
            .enumerate()
            .map(|(i, (ready, us, loads))| ClusterView {
                name: format!("edge-{i}"),
                kind: "docker",
                distance: Duration::from_micros(*us),
                image_cached: true,
                state: if *ready {
                    InstanceState::Ready(InstanceAddr {
                        mac: MacAddr::from_id(1 + i as u32),
                        ip: Ipv4Addr::new(10, i as u8, 0, 1),
                        port: 31000,
                    })
                } else {
                    InstanceState::NotDeployed
                },
                load: 0,
                breaker: edgectl::BreakerState::Closed,
                instances: loads
                    .iter()
                    .enumerate()
                    .map(|(r, (in_flight, backlog))| InstanceView {
                        instance: r,
                        in_flight: *in_flight,
                        backlog: *backlog,
                        concurrency: CONCURRENCY,
                        utilization: *in_flight as f64 / CONCURRENCY as f64,
                        ewma_latency: Duration::ZERO,
                    })
                    .collect(),
            })
            .collect();
        let mut s = LeastConnectionsScheduler;
        let choice = s.choose(&SchedulingContext {
            clusters: &views,
            service: ServiceRef {
                addr: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
                name: "svc",
            },
            now: SimTime::ZERO,
            class: RequestClass::NewFlow,
        });
        // Every schedulable (ready) instance, with the synthetic idle view a
        // ready-but-untracked cluster contributes as replica 0.
        let schedulable: Vec<(usize, usize, bool)> = views
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state.is_ready())
            .flat_map(|(ci, c)| {
                if c.instances.is_empty() {
                    vec![(ci, 0, false)]
                } else {
                    c.instances
                        .iter()
                        .map(|v| (ci, v.instance, v.at_capacity()))
                        .collect()
                }
            })
            .collect();
        match choice.fast {
            None => prop_assert!(schedulable.is_empty() && views.is_empty()),
            Some(t) => {
                if schedulable.is_empty() {
                    // No ready cluster anywhere: LC falls back to the
                    // nearest cluster's sole replica for deployment.
                    prop_assert_eq!(t.instance, 0);
                } else {
                    let picked_saturated = schedulable
                        .iter()
                        .find(|(c, i, _)| (*c, *i) == (t.cluster, t.instance))
                        .map(|(_, _, s)| *s)
                        .expect("pick must be a schedulable instance");
                    let headroom_exists = schedulable.iter().any(|(_, _, s)| !s);
                    prop_assert!(
                        !(picked_saturated && headroom_exists),
                        "picked saturated ({}, {}) while headroom existed: {views:?}",
                        t.cluster,
                        t.instance,
                    );
                }
            }
        }
    }

    /// Satellite of the migration work: `ClusterView` now carries the
    /// circuit-breaker state, and the load-aware schedulers must never serve
    /// from (or migrate onto) a cluster whose breaker is Open — however
    /// ready or idle it looks. Migration target selection builds its own
    /// views, so this holds at the scheduler layer, not just in dispatch's
    /// candidate filtering.
    #[test]
    fn load_aware_schedulers_never_pick_an_open_cluster(
        shapes in prop::collection::vec(
            // (ready, breaker 0=closed/1=open/2=half-open, distance µs,
            //  per-instance (in_flight, backlog))
            (
                any::<bool>(),
                0u8..3,
                100u64..1000,
                prop::collection::vec((0usize..6, 0usize..4), 0..4),
            ),
            1..6,
        ),
        use_ewma in any::<bool>(),
    ) {
        use edgectl::cluster::{InstanceAddr, InstanceState};
        use edgectl::scheduler::{
            ClusterView, GlobalScheduler, InstanceView, LatencyEwmaScheduler,
            LeastConnectionsScheduler, RequestClass, SchedulingContext, ServiceRef,
        };
        use edgectl::BreakerState;

        const CONCURRENCY: usize = 3;
        let views: Vec<ClusterView> = shapes
            .iter()
            .enumerate()
            .map(|(i, (ready, breaker, us, loads))| ClusterView {
                name: format!("edge-{i}"),
                kind: "docker",
                distance: Duration::from_micros(*us),
                image_cached: true,
                state: if *ready {
                    InstanceState::Ready(InstanceAddr {
                        mac: MacAddr::from_id(1 + i as u32),
                        ip: Ipv4Addr::new(10, i as u8, 0, 1),
                        port: 31000,
                    })
                } else {
                    InstanceState::NotDeployed
                },
                load: 0,
                breaker: match breaker {
                    0 => BreakerState::Closed,
                    1 => BreakerState::Open,
                    _ => BreakerState::HalfOpen,
                },
                instances: loads
                    .iter()
                    .enumerate()
                    .map(|(r, (in_flight, backlog))| InstanceView {
                        instance: r,
                        in_flight: *in_flight,
                        backlog: *backlog,
                        concurrency: CONCURRENCY,
                        utilization: *in_flight as f64 / CONCURRENCY as f64,
                        ewma_latency: Duration::ZERO,
                    })
                    .collect(),
            })
            .collect();
        let ctx = SchedulingContext {
            clusters: &views,
            service: ServiceRef {
                addr: ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
                name: "svc",
            },
            now: SimTime::ZERO,
            class: RequestClass::Rescheduled,
        };
        let choice = if use_ewma {
            LatencyEwmaScheduler.choose(&ctx)
        } else {
            LeastConnectionsScheduler.choose(&ctx)
        };
        let any_serving = views
            .iter()
            .any(|c| c.state.is_ready() && c.breaker != BreakerState::Open);
        for t in choice.fast.iter().chain(choice.best.iter()) {
            let c = &views[t.cluster];
            // A fallback (deploy-here) pick of a not-ready cluster is fine;
            // an Open cluster must never be *served from*.
            if c.state.is_ready() {
                prop_assert!(
                    c.breaker != BreakerState::Open || !any_serving,
                    "picked ready cluster {} with an open breaker: {views:?}",
                    c.name,
                );
            }
        }
    }
}
