//! Property tests for the container lifecycle state machine: timestamps are
//! causally ordered and readiness behaves monotonically for arbitrary
//! operation timings.

use containerd::{ContainerSpec, ContainerState, ContainerdNode};
use desim::{Duration, SimRng, SimTime};
use proptest::prelude::*;
use registry::image::catalog;
use registry::ImageRef;

proptest! {
    /// create → start → stop → remove keeps strictly ordered timestamps and
    /// readiness flips exactly at `ready_at` for arbitrary gaps/delays.
    #[test]
    fn lifecycle_timestamps_are_causal(
        seed in any::<u64>(),
        gap1 in 0u64..10_000,
        gap2 in 0u64..10_000,
        ready_ms in 0u64..5_000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut n = ContainerdNode::with_defaults();
        n.pull(&[catalog::web_asm()], &mut rng);
        let spec = ContainerSpec::new("c", ImageRef::parse("josefhammer/web-asm:amd64"), Some(80));

        let t0 = SimTime::from_millis(1000);
        let (id, created_at) = n.create(spec, &catalog::web_asm(), t0, &mut rng)
            .expect("no fault injection configured");
        prop_assert!(created_at > t0);

        let t1 = created_at + Duration::from_millis(gap1);
        let ready_delay = Duration::from_millis(ready_ms);
        let (started_at, ready_at) = n.start(id, t1, ready_delay, &mut rng)
            .expect("no fault injection configured");
        prop_assert!(started_at > t1);
        prop_assert_eq!(ready_at, started_at + ready_delay);

        // Readiness is a step function at ready_at.
        if ready_at.as_nanos() > 0 {
            prop_assert!(!n.port_open(id, 80, SimTime::from_nanos(ready_at.as_nanos() - 1)));
        }
        prop_assert!(n.port_open(id, 80, ready_at));

        let t2 = ready_at + Duration::from_millis(gap2);
        let stopped_at = n.stop(id, t2, &mut rng);
        prop_assert!(stopped_at > t2);
        let is_stopped = matches!(n.state(id), Some(ContainerState::Stopped { .. }));
        prop_assert!(is_stopped);
        prop_assert!(!n.port_open(id, 80, stopped_at + Duration::from_secs(1)));

        let removed_at = n.remove(id, stopped_at, &mut rng);
        prop_assert!(removed_at > stopped_at);
        prop_assert!(n.state(id).is_none());
    }

    /// Restarting a stopped container works and produces a fresh readiness
    /// instant after the restart (stop → start cycles ad infinitum).
    #[test]
    fn stop_start_cycles(seed in any::<u64>(), cycles in 1usize..5) {
        let mut rng = SimRng::new(seed);
        let mut n = ContainerdNode::with_defaults();
        n.pull(&[catalog::web_asm()], &mut rng);
        let spec = ContainerSpec::new("c", ImageRef::parse("josefhammer/web-asm:amd64"), Some(80));
        let (id, mut t) = n.create(spec, &catalog::web_asm(), SimTime::from_secs(1), &mut rng)
            .expect("no fault injection configured");
        for _ in 0..cycles {
            let (_, ready) = n.start(id, t, Duration::from_millis(5), &mut rng)
                .expect("no fault injection configured");
            prop_assert!(n.port_open(id, 80, ready));
            t = n.stop(id, ready + Duration::from_secs(1), &mut rng);
            prop_assert!(!n.port_open(id, 80, t + Duration::from_secs(1)));
        }
    }

    /// Label queries always return exactly the containers carrying the label,
    /// independent of creation order.
    #[test]
    fn label_queries_exact(seed in any::<u64>(), labels in prop::collection::vec(0u8..4, 1..12)) {
        let mut rng = SimRng::new(seed);
        let mut n = ContainerdNode::with_defaults();
        n.pull(&[catalog::web_asm()], &mut rng);
        let mut expected: std::collections::HashMap<u8, usize> = Default::default();
        for (i, &l) in labels.iter().enumerate() {
            let spec = ContainerSpec::new(
                format!("c{i}"),
                ImageRef::parse("josefhammer/web-asm:amd64"),
                Some(80),
            )
            .with_label("edge.service", format!("svc-{l}"));
            n.create(spec, &catalog::web_asm(), SimTime::from_secs(1), &mut rng)
                .expect("no fault injection configured");
            *expected.entry(l).or_default() += 1;
        }
        for l in 0u8..4 {
            let found = n.find_by_label("edge.service", &format!("svc-{l}"));
            prop_assert_eq!(found.len(), expected.get(&l).copied().unwrap_or(0));
        }
    }
}
