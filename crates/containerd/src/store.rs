//! The content store: digest-addressed layers plus pull orchestration.

use desim::{Duration, FaultInjector, SimRng};
use registry::{ImageManifest, LayerCache, PullError, PullOutcome, PullPlanner, RegistryProfile};
use std::collections::HashMap;

/// The node-local content store. Owns the layer cache and knows how to reach
/// registries (public by default, optionally a private mirror).
pub struct ContentStore {
    cache: LayerCache,
    /// Optional private registry used for every pull when set (the paper's
    /// in-network registry alternative).
    mirror: Option<RegistryProfile>,
    /// Manifests known to this store (by display reference), so `has_image`
    /// queries can resolve locally.
    manifests: HashMap<String, ImageManifest>,
    /// Chaos-testing fault injector, consulted only by the `try_*` pull
    /// entry points.
    faults: Option<FaultInjector>,
}

impl Default for ContentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentStore {
    /// Creates an empty store pulling from public registries.
    pub fn new() -> ContentStore {
        ContentStore {
            cache: LayerCache::new(),
            mirror: None,
            manifests: HashMap::new(),
            faults: None,
        }
    }

    /// Creates a store that pulls everything from a private mirror.
    pub fn with_mirror(mirror: RegistryProfile) -> ContentStore {
        ContentStore {
            cache: LayerCache::new(),
            mirror: Some(mirror),
            manifests: HashMap::new(),
            faults: None,
        }
    }

    /// Wires a fault injector into the pull path. Only the fallible
    /// [`ContentStore::try_pull`] / [`ContentStore::try_pull_all`] entry
    /// points consult it; the infallible `pull`/`pull_all` remain
    /// fault-free (experiment setup helpers keep working under any plan).
    pub fn set_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// `true` if every layer of `manifest` is on disk.
    pub fn has_image(&self, manifest: &ImageManifest) -> bool {
        self.cache.has_image(manifest)
    }

    /// Pulls an image, returning the outcome (zero-duration when cached).
    pub fn pull(&mut self, manifest: &ImageManifest, rng: &mut SimRng) -> PullOutcome {
        let profile = match &self.mirror {
            Some(m) => m.clone(),
            None => RegistryProfile::for_host(&manifest.reference.host),
        };
        let planner = PullPlanner::new(&profile);
        let out = planner.pull(manifest, &mut self.cache, rng);
        self.manifests
            .insert(manifest.reference.to_string(), manifest.clone());
        out
    }

    /// Pulls several images *concurrently* (e.g. the two containers of the
    /// Nginx+Py service): wall time is the max of the individual pulls, since
    /// each registry connection is independent.
    pub fn pull_all(&mut self, manifests: &[ImageManifest], rng: &mut SimRng) -> Duration {
        manifests
            .iter()
            .map(|m| self.pull(m, rng).duration)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Fallible single pull consulting the wired fault injector (if any).
    /// With no injector the behaviour — including the `rng` draw sequence —
    /// is identical to [`ContentStore::pull`].
    pub fn try_pull(
        &mut self,
        manifest: &ImageManifest,
        rng: &mut SimRng,
    ) -> Result<PullOutcome, PullError> {
        let profile = match &self.mirror {
            Some(m) => m.clone(),
            None => RegistryProfile::for_host(&manifest.reference.host),
        };
        let planner = PullPlanner::new(&profile);
        let out = planner.pull_with_faults(manifest, &mut self.cache, rng, self.faults.as_mut())?;
        self.manifests
            .insert(manifest.reference.to_string(), manifest.clone());
        Ok(out)
    }

    /// Fallible concurrent pull of several images. All transfers run in
    /// parallel, so a failure surfaces only after the slowest attempt:
    /// the error's `elapsed` is the max over every attempt (successes keep
    /// their layers cached, making a retry cheaper).
    pub fn try_pull_all(
        &mut self,
        manifests: &[ImageManifest],
        rng: &mut SimRng,
    ) -> Result<Duration, PullError> {
        let mut wall = Duration::ZERO;
        let mut first_err: Option<PullError> = None;
        for m in manifests {
            match self.try_pull(m, rng) {
                Ok(out) => wall = wall.max(out.duration),
                Err(e) => {
                    wall = wall.max(e.elapsed);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(mut e) => {
                e.elapsed = wall;
                Err(e)
            }
            None => Ok(wall),
        }
    }

    /// Deletes an image's layers except those shared with other known images.
    /// Returns bytes freed.
    pub fn delete_image(&mut self, manifest: &ImageManifest) -> u64 {
        self.manifests.remove(&manifest.reference.to_string());
        let still_used: Vec<_> = self
            .manifests
            .values()
            .flat_map(|m| m.layers.iter().map(|l| l.digest))
            .collect();
        self.cache.remove_image(manifest, &still_used)
    }

    /// Bytes on disk.
    pub fn disk_usage(&self) -> u64 {
        self.cache.disk_usage()
    }

    /// Direct cache access (tests, stats).
    pub fn cache(&self) -> &LayerCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::image::catalog;

    #[test]
    fn pull_then_cached() {
        let mut s = ContentStore::new();
        let mut rng = SimRng::new(1);
        let m = catalog::nginx();
        assert!(!s.has_image(&m));
        let out = s.pull(&m, &mut rng);
        assert!(out.duration > Duration::ZERO);
        assert!(s.has_image(&m));
        let out = s.pull(&m, &mut rng);
        assert_eq!(out.duration, Duration::ZERO);
    }

    #[test]
    fn mirror_is_faster_than_hub() {
        let m = catalog::nginx();
        let mut hub = ContentStore::new();
        let mut private = ContentStore::with_mirror(RegistryProfile::private_local());
        let mut r1 = SimRng::new(7);
        let mut r2 = SimRng::new(7);
        let t_hub = hub.pull(&m, &mut r1).duration;
        let t_priv = private.pull(&m, &mut r2).duration;
        assert!(t_priv < t_hub);
    }

    #[test]
    fn pull_all_is_max_not_sum() {
        let mut s = ContentStore::new();
        let mut rng = SimRng::new(3);
        let manifests = [catalog::nginx(), catalog::env_writer_py()];
        let combined = s.pull_all(&manifests, &mut rng);
        // Must not exceed a fresh pull of both sequentially.
        let mut s2 = ContentStore::new();
        let mut rng2 = SimRng::new(3);
        let a = s2.pull(&manifests[0], &mut rng2).duration;
        let b = s2.pull(&manifests[1], &mut rng2).duration;
        assert!(combined < a + b);
        assert!(combined >= a.max(b).min(a) || combined > Duration::ZERO);
    }

    #[test]
    fn delete_respects_cross_image_sharing() {
        let mut s = ContentStore::new();
        let mut rng = SimRng::new(5);
        let nginx = catalog::nginx();
        let py = catalog::env_writer_py();
        s.pull(&nginx, &mut rng);
        s.pull(&py, &mut rng);
        let usage = s.disk_usage();
        let freed = s.delete_image(&py);
        assert_eq!(freed, py.total_size());
        assert_eq!(s.disk_usage(), usage - freed);
        assert!(s.has_image(&nginx));
        assert!(!s.has_image(&py));
    }
}
