//! A containerd node: content store + container table + operation timings.

use crate::container::{ContainerId, ContainerSpec, ContainerState};
use crate::store::ContentStore;
use desim::{Duration, FaultInjector, LogNormal, Sample, SimRng, SimTime};
use registry::{ImageManifest, PullError};
use std::collections::BTreeMap;

/// Typed failure of a runtime operation.
///
/// Programming errors (unknown container id, double start) still panic —
/// they indicate a broken caller, not a runtime condition to recover from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// **Create** was called before the image's layers were pulled; pulls
    /// are a separate, observable phase (Fig. 4) and must happen first.
    ImageNotPulled {
        /// The offending image reference.
        reference: String,
    },
    /// An injected runtime fault: the operation failed, surfacing at `at`.
    Injected {
        /// When the failure was observed.
        at: SimTime,
        /// Which operation failed.
        what: &'static str,
    },
    /// The task started but crashed before turning ready (injected); the
    /// container is back in the stopped state and may be started again.
    CrashedAfterStart {
        /// When the crash was observed.
        at: SimTime,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ImageNotPulled { reference } => {
                write!(f, "image {reference} not pulled before create")
            }
            RuntimeError::Injected { at, what } => {
                write!(f, "containerd {what} failed at {at} (injected)")
            }
            RuntimeError::CrashedAfterStart { at } => {
                write!(f, "task crashed before readiness at {at} (injected)")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Timing model for runtime operations. Mohan et al. (cited by the paper)
/// attribute ~90 % of container startup to network-namespace creation and
/// initialization; that cost lives in `task_start`.
#[derive(Clone, Debug)]
pub struct RuntimeTimings {
    /// Writing the container spec + preparing the snapshot (**Create**).
    pub create: LogNormal,
    /// Launching the task: runc, namespaces, cgroups (**Scale Up**).
    pub task_start: LogNormal,
    /// Stopping a task (**Scale Down**).
    pub stop: LogNormal,
    /// Removing a container (**Remove**).
    pub remove: LogNormal,
}

impl Default for RuntimeTimings {
    fn default() -> Self {
        RuntimeTimings {
            create: LogNormal::from_median(0.090, 0.25),
            task_start: LogNormal::from_median(0.400, 0.20),
            stop: LogNormal::from_median(0.200, 0.25),
            remove: LogNormal::from_median(0.050, 0.25),
        }
    }
}

struct Entry {
    spec: ContainerSpec,
    state: ContainerState,
}

/// A containerd instance on one host, shared by the Docker engine and the
/// kubelet exactly as on the paper's Edge Gateway Server.
pub struct ContainerdNode {
    store: ContentStore,
    timings: RuntimeTimings,
    containers: BTreeMap<ContainerId, Entry>,
    next_id: u64,
    /// Chaos-testing fault injector for create/start/crash faults.
    faults: Option<FaultInjector>,
}

impl ContainerdNode {
    /// Creates a node with the given store and timing model.
    pub fn new(store: ContentStore, timings: RuntimeTimings) -> ContainerdNode {
        ContainerdNode {
            store,
            timings,
            containers: BTreeMap::new(),
            next_id: 1,
            faults: None,
        }
    }

    /// Wires a fault injector into create/start. Success-path timing draws
    /// are unchanged: the injector uses its own RNG stream, so a zero-rate
    /// plan leaves behaviour byte-identical.
    pub fn set_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Creates a node with defaults (public registries).
    pub fn with_defaults() -> ContainerdNode {
        Self::new(ContentStore::new(), RuntimeTimings::default())
    }

    /// The content store.
    pub fn store(&self) -> &ContentStore {
        &self.store
    }

    /// Mutable content store access (pulls).
    pub fn store_mut(&mut self) -> &mut ContentStore {
        &mut self.store
    }

    /// Pulls image layers for `manifests` concurrently; returns wall time
    /// (zero when fully cached).
    pub fn pull(&mut self, manifests: &[ImageManifest], rng: &mut SimRng) -> Duration {
        self.store.pull_all(manifests, rng)
    }

    /// Fallible pull consulting the store's fault injector (if wired).
    pub fn try_pull(
        &mut self,
        manifests: &[ImageManifest],
        rng: &mut SimRng,
    ) -> Result<Duration, PullError> {
        self.store.try_pull_all(manifests, rng)
    }

    /// **Create** phase for one container. Returns the id and the instant
    /// creation completes.
    ///
    /// Fails with [`RuntimeError::ImageNotPulled`] when the image's layers
    /// are not in the content store, or [`RuntimeError::Injected`] under an
    /// active fault plan; a failed create registers nothing, so a retry is
    /// a clean second attempt.
    pub fn create(
        &mut self,
        spec: ContainerSpec,
        manifest: &ImageManifest,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<(ContainerId, SimTime), RuntimeError> {
        if !self.store.has_image(manifest) {
            return Err(RuntimeError::ImageNotPulled {
                reference: manifest.reference.to_string(),
            });
        }
        let done = now + self.timings.create.sample_duration(rng);
        if self.faults.as_mut().is_some_and(|f| f.create_fails()) {
            return Err(RuntimeError::Injected { at: done, what: "create" });
        }
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        self.containers.insert(
            id,
            Entry {
                spec,
                state: ContainerState::Created { at: done },
            },
        );
        Ok((id, done))
    }

    /// **Scale Up** phase: starts the task. `ready_delay` is the
    /// application's own startup time (sampled from its service profile by
    /// the caller). Returns `(task_started_at, ready_at)`.
    ///
    /// Under an active fault plan the start may fail outright
    /// ([`RuntimeError::Injected`], state unchanged) or the task may crash
    /// between start and readiness ([`RuntimeError::CrashedAfterStart`],
    /// container back in the stopped state) — both leave the container
    /// startable again.
    ///
    /// # Panics
    /// Panics if the container does not exist or is already running.
    pub fn start(
        &mut self,
        id: ContainerId,
        now: SimTime,
        ready_delay: Duration,
        rng: &mut SimRng,
    ) -> Result<(SimTime, SimTime), RuntimeError> {
        let entry = self.containers.get_mut(&id).expect("unknown container");
        assert!(
            !entry.state.is_running(),
            "container {id:?} already running"
        );
        let started_at = now + self.timings.task_start.sample_duration(rng);
        if let Some(f) = self.faults.as_mut() {
            if f.start_fails() {
                return Err(RuntimeError::Injected { at: started_at, what: "start" });
            }
            if let Some(frac) = f.crashes_after_start() {
                let crash_at = started_at + ready_delay.mul_f64(frac);
                entry.state = ContainerState::Stopped { at: crash_at };
                return Err(RuntimeError::CrashedAfterStart { at: crash_at });
            }
        }
        let ready_at = started_at + ready_delay;
        entry.state = ContainerState::Running {
            started_at,
            ready_at,
        };
        Ok((started_at, ready_at))
    }

    /// **Scale Down** phase: stops the task. Returns the completion instant.
    pub fn stop(&mut self, id: ContainerId, now: SimTime, rng: &mut SimRng) -> SimTime {
        let entry = self.containers.get_mut(&id).expect("unknown container");
        let done = now + self.timings.stop.sample_duration(rng);
        entry.state = ContainerState::Stopped { at: done };
        done
    }

    /// **Remove** phase: deletes the container record.
    pub fn remove(&mut self, id: ContainerId, now: SimTime, rng: &mut SimRng) -> SimTime {
        self.containers.remove(&id).expect("unknown container");
        now + self.timings.remove.sample_duration(rng)
    }

    /// State query.
    pub fn state(&self, id: ContainerId) -> Option<ContainerState> {
        self.containers.get(&id).map(|e| e.state)
    }

    /// Spec query.
    pub fn spec(&self, id: ContainerId) -> Option<&ContainerSpec> {
        self.containers.get(&id).map(|e| &e.spec)
    }

    /// The controller's readiness probe: is `port` accepting connections on
    /// container `id` at `now`? (Section VI: "the controller continuously
    /// tests if the respective port is open".)
    pub fn port_open(&self, id: ContainerId, port: u16, now: SimTime) -> bool {
        self.containers.get(&id).is_some_and(|e| {
            e.spec.listen_port == Some(port) && e.state.is_ready(now)
        })
    }

    /// All containers carrying label `key=value` (the controller queries its
    /// `edge.service` label this way).
    pub fn find_by_label(&self, key: &str, value: &str) -> Vec<ContainerId> {
        self.containers
            .iter()
            .filter(|(_, e)| e.spec.labels.get(key).is_some_and(|v| v == value))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of containers (any state).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::image::catalog;
    use registry::ImageRef;

    fn node_with_nginx(rng: &mut SimRng) -> ContainerdNode {
        let mut n = ContainerdNode::with_defaults();
        n.pull(&[catalog::nginx()], rng);
        n
    }

    fn nginx_spec() -> ContainerSpec {
        ContainerSpec::new("web", ImageRef::parse("nginx:1.23.2"), Some(80))
            .with_label("edge.service", "svc-a")
    }

    #[test]
    fn full_lifecycle() {
        let mut rng = SimRng::new(1);
        let mut n = node_with_nginx(&mut rng);
        let t0 = SimTime::from_secs(10);
        let (id, created_at) = n.create(nginx_spec(), &catalog::nginx(), t0, &mut rng).unwrap();
        assert!(created_at > t0);
        assert!(matches!(n.state(id), Some(ContainerState::Created { .. })));

        let (started_at, ready_at) =
            n.start(id, created_at, Duration::from_millis(50), &mut rng).unwrap();
        assert!(started_at > created_at);
        assert_eq!(ready_at, started_at + Duration::from_millis(50));
        assert!(!n.port_open(id, 80, started_at));
        assert!(n.port_open(id, 80, ready_at));
        assert!(!n.port_open(id, 8080, ready_at), "wrong port stays closed");

        let stopped_at = n.stop(id, ready_at + Duration::from_secs(60), &mut rng);
        assert!(!n.port_open(id, 80, stopped_at));
        n.remove(id, stopped_at, &mut rng);
        assert_eq!(n.state(id), None);
        assert_eq!(n.container_count(), 0);
    }

    #[test]
    fn create_without_pull_is_a_typed_error() {
        let mut rng = SimRng::new(2);
        let mut n = ContainerdNode::with_defaults();
        let err = n
            .create(nginx_spec(), &catalog::nginx(), SimTime::ZERO, &mut rng)
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::ImageNotPulled { ref reference } if reference.contains("nginx")),
            "{err}"
        );
        assert_eq!(n.container_count(), 0, "failed create registers nothing");
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn double_start_panics() {
        let mut rng = SimRng::new(3);
        let mut n = node_with_nginx(&mut rng);
        let (id, t) = n.create(nginx_spec(), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        n.start(id, t, Duration::ZERO, &mut rng).unwrap();
        let _ = n.start(id, t + Duration::from_secs(1), Duration::ZERO, &mut rng);
    }

    #[test]
    fn injected_create_and_start_faults_are_retryable() {
        use desim::FaultPlan;
        let mut rng = SimRng::new(8);
        let mut n = node_with_nginx(&mut rng);
        // Every create fails; starts succeed.
        n.set_faults(
            FaultPlan {
                create_failure: 1.0,
                ..FaultPlan::default()
            }
            .injector(0x1),
        );
        let err = n
            .create(nginx_spec(), &catalog::nginx(), SimTime::ZERO, &mut rng)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Injected { what: "create", .. }), "{err}");
        assert_eq!(n.container_count(), 0);

        // Flip to start-crash faults: create succeeds, start crashes, the
        // container is left stopped and can be started again fault-free.
        n.set_faults(
            FaultPlan {
                crash_after_start: 1.0,
                ..FaultPlan::default()
            }
            .injector(0x2),
        );
        let (id, t) = n.create(nginx_spec(), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        let err = n.start(id, t, Duration::from_millis(100), &mut rng).unwrap_err();
        let RuntimeError::CrashedAfterStart { at } = err else {
            panic!("expected crash, got {err}");
        };
        assert!(at >= t && at <= t + Duration::from_secs(2));
        assert!(matches!(n.state(id), Some(ContainerState::Stopped { .. })));
        n.set_faults(FaultPlan::default().injector(0x3));
        let (started, ready) = n.start(id, at, Duration::ZERO, &mut rng).unwrap();
        assert!(ready >= started);
    }

    #[test]
    fn label_queries() {
        let mut rng = SimRng::new(4);
        let mut n = node_with_nginx(&mut rng);
        let (a, _) = n.create(nginx_spec(), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        let other = ContainerSpec::new("web2", ImageRef::parse("nginx:1.23.2"), Some(80))
            .with_label("edge.service", "svc-b");
        let (_b, _) = n.create(other, &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(n.find_by_label("edge.service", "svc-a"), vec![a]);
        assert_eq!(n.find_by_label("edge.service", "nope"), vec![]);
        assert_eq!(n.container_count(), 2);
    }

    #[test]
    fn create_start_medians_are_calibrated() {
        // Across many runs, create ≈ 90 ms and task start ≈ 330 ms medians —
        // the "+100 ms for create" and sub-second Docker starts of the paper.
        let mut creates = Vec::new();
        let mut starts = Vec::new();
        for seed in 0..200 {
            let mut rng = SimRng::new(seed);
            let mut n = node_with_nginx(&mut rng);
            let (id, c) = n.create(nginx_spec(), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
            creates.push((c - SimTime::ZERO).as_secs_f64());
            let (s, _) = n.start(id, c, Duration::ZERO, &mut rng).unwrap();
            starts.push((s - c).as_secs_f64());
        }
        let mc = desim::Summary::new(creates).median().unwrap();
        let ms = desim::Summary::new(starts).median().unwrap();
        assert!((0.07..0.12).contains(&mc), "create median {mc}");
        assert!((0.30..0.52).contains(&ms), "start median {ms}");
    }
}
