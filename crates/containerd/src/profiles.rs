//! The four edge services of Table I with calibrated timing models.
//!
//! | key       | Service                          | Image(s)                    | Size/Layers   | Containers | HTTP |
//! |-----------|----------------------------------|-----------------------------|---------------|------------|------|
//! | `asm`     | Assembler web server (asmttpd)   | josefhammer/web-asm:amd64   | 6.18 KiB / 1  | 1          | GET  |
//! | `nginx`   | Nginx web server                 | nginx:1.23.2                | 135 MiB / 6   | 1          | GET  |
//! | `resnet`  | TensorFlow Serving + ResNet50    | gcr.io/tensorflow-serving/… | 308 MiB / 9   | 1          | POST |
//! | `nginx-py`| Nginx + Python env-writer        | nginx + josefhammer/env-…   | 181 MiB / 7   | 2          | GET  |
//!
//! The distributions are calibrated to the medians the paper reports:
//! negligible app-start for the Assembler server, tens of milliseconds for
//! nginx, seconds of model loading for ResNet (its readiness wait alone
//! exceeds a quarter of the total scale-up time), ~1 ms steady-state
//! responses for the static services and substantially longer for inference.

use desim::LogNormal;
use registry::image::catalog;
use registry::ImageManifest;

/// A deployable edge service: its images plus timing/traffic behaviour.
#[derive(Clone, Debug)]
pub struct ServiceProfile {
    /// Short machine key (`asm`, `nginx`, `resnet`, `nginx-py`).
    pub key: &'static str,
    /// Human-readable name as in Table I.
    pub display: &'static str,
    /// Container images (one per container; first is the serving container).
    pub manifests: Vec<ImageManifest>,
    /// TCP port the service listens on inside the cluster.
    pub listen_port: u16,
    /// Delay from task start until the serving container accepts
    /// connections (model loading, config parsing...).
    pub ready_delay: LogNormal,
    /// Per-request server processing time once running.
    pub request_processing: LogNormal,
    /// Request payload bytes (83 KiB cat picture for ResNet POST).
    pub request_bytes: usize,
    /// Response payload bytes.
    pub response_bytes: usize,
    /// HTTP method used by clients.
    pub http_method: &'static str,
}

impl ServiceProfile {
    /// The Assembler web server — the smallest possible service; its launch
    /// time measures the bare overhead of starting *any* container.
    pub fn asm() -> ServiceProfile {
        ServiceProfile {
            key: "asm",
            display: "Assembler Web Server (asmttpd)",
            manifests: vec![catalog::web_asm()],
            listen_port: 80,
            ready_delay: LogNormal::from_median(0.004, 0.30),
            request_processing: LogNormal::from_median(0.00020, 0.30),
            request_bytes: 120,
            response_bytes: 230,
            http_method: "GET",
        }
    }

    /// Nginx — the most popular container image; the paper's representative
    /// "typical" service.
    pub fn nginx() -> ServiceProfile {
        ServiceProfile {
            key: "nginx",
            display: "Nginx Web Server",
            manifests: vec![catalog::nginx()],
            listen_port: 80,
            ready_delay: LogNormal::from_median(0.045, 0.25),
            request_processing: LogNormal::from_median(0.00040, 0.30),
            request_bytes: 120,
            response_bytes: 230,
            http_method: "GET",
        }
    }

    /// TensorFlow Serving with a built-in ResNet50 model — the heavyweight
    /// case; loading the model dominates readiness.
    pub fn resnet() -> ServiceProfile {
        ServiceProfile {
            key: "resnet",
            display: "TensorFlow Serving (ResNet50)",
            manifests: vec![catalog::resnet()],
            listen_port: 8501,
            ready_delay: LogNormal::from_median(2.2, 0.18),
            request_processing: LogNormal::from_median(0.180, 0.25),
            request_bytes: 83 * 1024,
            response_bytes: 1200,
            http_method: "POST",
        }
    }

    /// Nginx + Python env-writer — a two-container microservice composition;
    /// nginx serves while the Python sidecar refreshes `index.html`.
    pub fn nginx_py() -> ServiceProfile {
        ServiceProfile {
            key: "nginx-py",
            display: "Nginx Web Server + Python Application",
            manifests: vec![catalog::nginx(), catalog::env_writer_py()],
            listen_port: 80,
            ready_delay: LogNormal::from_median(0.045, 0.25),
            request_processing: LogNormal::from_median(0.00040, 0.30),
            request_bytes: 120,
            response_bytes: 420,
            http_method: "GET",
        }
    }

    /// Number of containers in this service.
    pub fn container_count(&self) -> usize {
        self.manifests.len()
    }

    /// Combined transfer size of all images.
    pub fn total_image_size(&self) -> u64 {
        self.manifests.iter().map(ImageManifest::total_size).sum()
    }

    /// Combined layer count of all images.
    pub fn total_layers(&self) -> usize {
        self.manifests.iter().map(ImageManifest::layer_count).sum()
    }
}

/// The full evaluation set in Table I order.
#[derive(Clone, Debug)]
pub struct ServiceSet;

impl ServiceSet {
    /// All four services, Table I order.
    pub fn all() -> Vec<ServiceProfile> {
        vec![
            ServiceProfile::asm(),
            ServiceProfile::nginx(),
            ServiceProfile::resnet(),
            ServiceProfile::nginx_py(),
        ]
    }

    /// Looks up a profile by key.
    pub fn by_key(key: &str) -> Option<ServiceProfile> {
        Self::all().into_iter().find(|p| p.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::image::mib;

    #[test]
    fn table_one_shape() {
        let all = ServiceSet::all();
        assert_eq!(all.len(), 4);
        let keys: Vec<_> = all.iter().map(|p| p.key).collect();
        assert_eq!(keys, ["asm", "nginx", "resnet", "nginx-py"]);

        let asm = &all[0];
        assert_eq!(asm.container_count(), 1);
        assert_eq!(asm.total_image_size(), 6328);
        assert_eq!(asm.http_method, "GET");

        let resnet = &all[2];
        assert_eq!(resnet.total_image_size(), mib(308));
        assert_eq!(resnet.total_layers(), 9);
        assert_eq!(resnet.http_method, "POST");
        assert_eq!(resnet.request_bytes, 83 * 1024);

        let py = &all[3];
        assert_eq!(py.container_count(), 2);
        assert_eq!(py.total_image_size(), mib(181));
        assert_eq!(py.total_layers(), 7);
    }

    #[test]
    fn readiness_ordering_matches_paper() {
        // asm ≈ nginx (no notable difference) << resnet.
        let asm = ServiceProfile::asm().ready_delay.median;
        let nginx = ServiceProfile::nginx().ready_delay.median;
        let resnet = ServiceProfile::resnet().ready_delay.median;
        assert!(asm < nginx);
        assert!(nginx < 0.1, "nginx readiness is sub-100ms");
        assert!(resnet > 1.0, "resnet model load takes seconds");
    }

    #[test]
    fn steady_state_processing_matches_fig16() {
        // ~1 ms-scale responses for static services, much longer for ResNet.
        for p in [ServiceProfile::asm(), ServiceProfile::nginx(), ServiceProfile::nginx_py()] {
            assert!(p.request_processing.median < 0.002, "{}", p.key);
        }
        assert!(ServiceProfile::resnet().request_processing.median > 0.05);
    }

    #[test]
    fn by_key_lookup() {
        assert_eq!(ServiceSet::by_key("nginx").unwrap().key, "nginx");
        assert!(ServiceSet::by_key("unknown").is_none());
    }
}
