//! `containerd` — the simulated container runtime shared by Docker and
//! Kubernetes.
//!
//! In the paper's testbed both cluster types run on the *same* `containerd`
//! runtime on the Edge Gateway Server — which is exactly why the measured
//! difference between Docker (<1 s) and Kubernetes (≈3 s) scale-up is
//! attributable to orchestrator overhead, not the container runtime. This
//! crate models that shared runtime:
//!
//! * [`store`] — the content store: image pulls (via the `registry` crate)
//!   into a digest-addressed layer cache,
//! * [`container`] — container specs and the Created → Running(ready) →
//!   Stopped → Removed lifecycle with timestamped transitions,
//! * [`node`] — a containerd node: the store plus the container table and
//!   the timing model for create/start/stop operations,
//! * [`profiles`] — the four edge services of Table I with calibrated
//!   startup/readiness/request-latency distributions (the basis of
//!   Figs. 11–16).

#![warn(missing_docs)]

pub mod container;
pub mod node;
pub mod profiles;
pub mod store;

pub use container::{ContainerId, ContainerSpec, ContainerState};
pub use node::{ContainerdNode, RuntimeError, RuntimeTimings};
pub use profiles::{ServiceProfile, ServiceSet};
pub use store::ContentStore;
