//! Container specs and lifecycle.

use desim::SimTime;
use registry::ImageRef;
use std::collections::BTreeMap;

/// Identifies a container on a node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContainerId(pub u64);

/// What to run: image, listening port, environment and host mounts.
///
/// This is the subset of an OCI spec the edge services need — it is produced
/// from the (annotated) Kubernetes-style service definition for both cluster
/// types, per Section V of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct ContainerSpec {
    /// Container name (unique per deployment unit).
    pub name: String,
    /// Image to run.
    pub image: ImageRef,
    /// TCP port the application listens on (`None` for sidecars that serve
    /// no traffic, like the env-writer).
    pub listen_port: Option<u16>,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Host-path volume mounts: `(host_path, container_path)`.
    pub mounts: Vec<(String, String)>,
    /// Labels (the controller adds `edge.service` to address its services).
    pub labels: BTreeMap<String, String>,
}

impl ContainerSpec {
    /// Minimal spec: a named image listening on a port.
    pub fn new(name: impl Into<String>, image: ImageRef, listen_port: Option<u16>) -> Self {
        ContainerSpec {
            name: name.into(),
            image,
            listen_port,
            env: BTreeMap::new(),
            mounts: Vec::new(),
            labels: BTreeMap::new(),
        }
    }

    /// Builder: adds a label.
    pub fn with_label(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.labels.insert(k.into(), v.into());
        self
    }

    /// Builder: adds an environment variable.
    pub fn with_env(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.env.insert(k.into(), v.into());
        self
    }

    /// Builder: adds a host mount.
    pub fn with_mount(mut self, host: impl Into<String>, guest: impl Into<String>) -> Self {
        self.mounts.push((host.into(), guest.into()));
        self
    }
}

/// Lifecycle state with transition timestamps. `Running` carries `ready_at`,
/// the instant the application inside actually accepts connections — the gap
/// between task start and readiness is what the controller's port polling
/// (Figs. 14/15) measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainerState {
    /// Created but not started (the paper's **Create** phase output).
    Created {
        /// When creation completed.
        at: SimTime,
    },
    /// Task started (the **Scale Up** phase output).
    Running {
        /// When the task launched.
        started_at: SimTime,
        /// When the app inside accepts TCP connections.
        ready_at: SimTime,
    },
    /// Task stopped (the **Scale Down** phase output).
    Stopped {
        /// When it stopped.
        at: SimTime,
    },
}

impl ContainerState {
    /// `true` if the container's application accepts connections at `now`.
    pub fn is_ready(&self, now: SimTime) -> bool {
        matches!(self, ContainerState::Running { ready_at, .. } if *ready_at <= now)
    }

    /// `true` if the task is running (though possibly not yet ready).
    pub fn is_running(&self) -> bool {
        matches!(self, ContainerState::Running { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let spec = ContainerSpec::new("web", ImageRef::parse("nginx:1.23.2"), Some(80))
            .with_label("edge.service", "svc-1")
            .with_env("MODE", "edge")
            .with_mount("/srv/content", "/usr/share/nginx/html");
        assert_eq!(spec.listen_port, Some(80));
        assert_eq!(spec.labels["edge.service"], "svc-1");
        assert_eq!(spec.env["MODE"], "edge");
        assert_eq!(spec.mounts.len(), 1);
    }

    #[test]
    fn readiness_semantics() {
        let s = ContainerState::Running {
            started_at: SimTime::from_millis(100),
            ready_at: SimTime::from_millis(400),
        };
        assert!(s.is_running());
        assert!(!s.is_ready(SimTime::from_millis(399)));
        assert!(s.is_ready(SimTime::from_millis(400)));
        let c = ContainerState::Created { at: SimTime::ZERO };
        assert!(!c.is_running());
        assert!(!c.is_ready(SimTime::from_secs(100)));
        let st = ContainerState::Stopped { at: SimTime::ZERO };
        assert!(!st.is_ready(SimTime::from_secs(100)));
    }
}
