//! `dockersim` — a Docker-Engine-like layer over the simulated containerd.
//!
//! The paper evaluates Docker as the *lightweight* cluster type: starting a
//! cached container takes well under a second, which makes Docker the better
//! choice for answering the very first request of an on-demand deployment
//! (Section VII even proposes Docker-first + Kubernetes-later hybrid
//! operation). This crate models the engine: a thin API daemon in front of
//! containerd that adds per-call overhead, container naming, and label-based
//! queries — the operations the SDN controller drives through the Docker
//! client library in the reference implementation.

#![warn(missing_docs)]

use containerd::{ContainerId, ContainerSpec, ContainerState, ContainerdNode, RuntimeError};
use desim::{Duration, LogNormal, Sample, SimRng, SimTime};
use registry::{ImageManifest, PullError};
use std::collections::HashMap;

/// Docker Engine API timing: every engine call pays a small daemon overhead
/// on top of the underlying containerd work.
#[derive(Clone, Debug)]
pub struct EngineTimings {
    /// Per-API-call daemon overhead (HTTP handling, state bookkeeping).
    pub api_overhead: LogNormal,
}

impl Default for EngineTimings {
    fn default() -> Self {
        EngineTimings {
            api_overhead: LogNormal::from_median(0.025, 0.30),
        }
    }
}

/// Errors surfaced by the engine API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DockerError {
    /// A container with this name already exists.
    NameConflict(String),
    /// No such container.
    NoSuchContainer(String),
    /// The underlying containerd runtime refused or aborted the operation
    /// (injected faults, missing images). Carries the runtime's own error so
    /// callers can recover the failure instant for retry scheduling.
    Runtime(RuntimeError),
}

impl std::fmt::Display for DockerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DockerError::NameConflict(n) => write!(f, "container name `{n}` already in use"),
            DockerError::NoSuchContainer(n) => write!(f, "no such container: {n}"),
            DockerError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for DockerError {}

/// Lifetime counts of engine API calls (successful or not), read when a
/// telemetry snapshot is taken.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `docker pull` calls.
    pub pulls: u64,
    /// `docker create` calls.
    pub creates: u64,
    /// `docker start` calls.
    pub starts: u64,
    /// `docker stop` calls.
    pub stops: u64,
    /// `docker rm` calls.
    pub removes: u64,
}

/// The simulated Docker Engine on one host.
pub struct DockerEngine {
    node: ContainerdNode,
    timings: EngineTimings,
    names: HashMap<String, ContainerId>,
    /// API call counters for telemetry.
    pub ops: OpCounts,
}

impl DockerEngine {
    /// Creates an engine over the given containerd node.
    pub fn new(node: ContainerdNode, timings: EngineTimings) -> DockerEngine {
        DockerEngine {
            node,
            timings,
            names: HashMap::new(),
            ops: OpCounts::default(),
        }
    }

    /// Engine over a default containerd node.
    pub fn with_defaults() -> DockerEngine {
        Self::new(ContainerdNode::with_defaults(), EngineTimings::default())
    }

    /// The underlying containerd node.
    pub fn node(&self) -> &ContainerdNode {
        &self.node
    }

    /// Mutable access to the underlying node (image pre-seeding in tests).
    pub fn node_mut(&mut self) -> &mut ContainerdNode {
        &mut self.node
    }

    fn overhead(&self, rng: &mut SimRng) -> Duration {
        self.timings.api_overhead.sample_duration(rng)
    }

    /// `docker pull`: fetches image layers (no-op duration when cached).
    pub fn pull(&mut self, manifests: &[ImageManifest], rng: &mut SimRng) -> Duration {
        self.ops.pulls += 1;
        self.overhead(rng) + self.node.pull(manifests, rng)
    }

    /// Fallible `docker pull` consulting the node's fault injector (if any).
    /// Behaves exactly like [`DockerEngine::pull`] when no injector is wired;
    /// on failure the error's `elapsed` includes the daemon overhead.
    pub fn try_pull(
        &mut self,
        manifests: &[ImageManifest],
        rng: &mut SimRng,
    ) -> Result<Duration, PullError> {
        self.ops.pulls += 1;
        let oh = self.overhead(rng);
        match self.node.try_pull(manifests, rng) {
            Ok(d) => Ok(oh + d),
            Err(mut e) => {
                e.elapsed = oh + e.elapsed;
                Err(e)
            }
        }
    }

    /// `docker create`: allocates a named container. Returns the id and the
    /// completion instant.
    pub fn create(
        &mut self,
        spec: ContainerSpec,
        manifest: &ImageManifest,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<(ContainerId, SimTime), DockerError> {
        self.ops.creates += 1;
        if self.names.contains_key(&spec.name) {
            return Err(DockerError::NameConflict(spec.name));
        }
        let t = now + self.overhead(rng);
        let name = spec.name.clone();
        let (id, done) = self
            .node
            .create(spec, manifest, t, rng)
            .map_err(DockerError::Runtime)?;
        self.names.insert(name, id);
        Ok((id, done))
    }

    /// `docker start`: launches the container's task. Returns
    /// `(start_completed_at, app_ready_at)`.
    pub fn start(
        &mut self,
        name: &str,
        now: SimTime,
        ready_delay: Duration,
        rng: &mut SimRng,
    ) -> Result<(SimTime, SimTime), DockerError> {
        self.ops.starts += 1;
        let id = self.id_of(name)?;
        let t = now + self.overhead(rng);
        self.node
            .start(id, t, ready_delay, rng)
            .map_err(DockerError::Runtime)
    }

    /// `docker stop`. Returns the completion instant.
    pub fn stop(&mut self, name: &str, now: SimTime, rng: &mut SimRng) -> Result<SimTime, DockerError> {
        self.ops.stops += 1;
        let id = self.id_of(name)?;
        let t = now + self.overhead(rng);
        Ok(self.node.stop(id, t, rng))
    }

    /// `docker rm`. Returns the completion instant.
    pub fn remove(&mut self, name: &str, now: SimTime, rng: &mut SimRng) -> Result<SimTime, DockerError> {
        self.ops.removes += 1;
        let id = self.id_of(name)?;
        let t = now + self.overhead(rng);
        let done = self.node.remove(id, t, rng);
        self.names.retain(|_, v| *v != id);
        Ok(done)
    }

    /// Resolves a container name.
    pub fn id_of(&self, name: &str) -> Result<ContainerId, DockerError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| DockerError::NoSuchContainer(name.to_owned()))
    }

    /// Container state by name.
    pub fn state(&self, name: &str) -> Option<ContainerState> {
        self.names.get(name).and_then(|id| self.node.state(*id))
    }

    /// `docker ps --filter label=key=value`: running containers carrying the
    /// label.
    pub fn ps_by_label(&self, key: &str, value: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .names
            .iter()
            .filter(|(_, id)| {
                self.node
                    .spec(**id)
                    .is_some_and(|s| s.labels.get(key).is_some_and(|v| v == value))
                    && self.node.state(**id).is_some_and(|s| s.is_running())
            })
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Readiness probe against a named container's port.
    pub fn port_open(&self, name: &str, port: u16, now: SimTime) -> bool {
        self.names
            .get(name)
            .is_some_and(|id| self.node.port_open(*id, port, now))
    }

    /// Number of containers known to the engine.
    pub fn container_count(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::image::catalog;
    use registry::ImageRef;

    fn engine_with_nginx(rng: &mut SimRng) -> DockerEngine {
        let mut e = DockerEngine::with_defaults();
        e.pull(&[catalog::nginx()], rng);
        e
    }

    fn spec(name: &str) -> ContainerSpec {
        ContainerSpec::new(name, ImageRef::parse("nginx:1.23.2"), Some(80))
            .with_label("edge.service", "svc-a")
    }

    #[test]
    fn run_lifecycle_under_a_second_when_cached() {
        let mut rng = SimRng::new(1);
        let mut e = engine_with_nginx(&mut rng);
        let t0 = SimTime::from_secs(5);
        let (_, created) = e.create(spec("web"), &catalog::nginx(), t0, &mut rng).unwrap();
        let (started, ready) = e
            .start("web", created, Duration::from_millis(45), &mut rng)
            .unwrap();
        // The headline Docker result: create+start+ready well under 1 s.
        let total = ready - t0;
        assert!(total < Duration::from_secs(1), "took {total}");
        assert!(e.port_open("web", 80, ready));
        assert!(!e.port_open("web", 80, started));
    }

    #[test]
    fn name_conflicts_rejected() {
        let mut rng = SimRng::new(2);
        let mut e = engine_with_nginx(&mut rng);
        e.create(spec("web"), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        let err = e
            .create(spec("web"), &catalog::nginx(), SimTime::ZERO, &mut rng)
            .unwrap_err();
        assert_eq!(err, DockerError::NameConflict("web".into()));
    }

    #[test]
    fn injected_create_fault_leaves_the_name_free_for_retry() {
        use desim::FaultPlan;
        let mut rng = SimRng::new(9);
        let mut e = engine_with_nginx(&mut rng);
        e.node_mut().set_faults(
            FaultPlan {
                create_failure: 1.0,
                ..FaultPlan::default()
            }
            .injector(0x7),
        );
        let err = e
            .create(spec("web"), &catalog::nginx(), SimTime::ZERO, &mut rng)
            .unwrap_err();
        assert!(matches!(err, DockerError::Runtime(RuntimeError::Injected { .. })), "{err}");
        assert_eq!(e.container_count(), 0);
        // Retry under a clean injector reuses the name without conflict.
        e.node_mut().set_faults(FaultPlan::default().injector(0x8));
        e.create(spec("web"), &catalog::nginx(), SimTime::from_secs(1), &mut rng)
            .unwrap();
    }

    #[test]
    fn unknown_names_error() {
        let mut rng = SimRng::new(3);
        let mut e = DockerEngine::with_defaults();
        assert!(matches!(
            e.start("ghost", SimTime::ZERO, Duration::ZERO, &mut rng),
            Err(DockerError::NoSuchContainer(_))
        ));
        assert!(matches!(
            e.stop("ghost", SimTime::ZERO, &mut rng),
            Err(DockerError::NoSuchContainer(_))
        ));
        assert!(matches!(
            e.remove("ghost", SimTime::ZERO, &mut rng),
            Err(DockerError::NoSuchContainer(_))
        ));
    }

    #[test]
    fn ps_filters_by_label_and_running_state() {
        let mut rng = SimRng::new(4);
        let mut e = engine_with_nginx(&mut rng);
        let (_, c1) = e.create(spec("web1"), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        e.create(spec("web2"), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        e.start("web1", c1, Duration::ZERO, &mut rng).unwrap();
        assert_eq!(e.ps_by_label("edge.service", "svc-a"), vec!["web1"]);
        assert!(e.ps_by_label("edge.service", "other").is_empty());
    }

    #[test]
    fn remove_frees_the_name() {
        let mut rng = SimRng::new(5);
        let mut e = engine_with_nginx(&mut rng);
        e.create(spec("web"), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        e.remove("web", SimTime::from_secs(1), &mut rng).unwrap();
        assert_eq!(e.container_count(), 0);
        // Name can be reused.
        e.create(spec("web"), &catalog::nginx(), SimTime::from_secs(2), &mut rng).unwrap();
    }

    #[test]
    fn stop_closes_the_port() {
        let mut rng = SimRng::new(6);
        let mut e = engine_with_nginx(&mut rng);
        let (_, c) = e.create(spec("web"), &catalog::nginx(), SimTime::ZERO, &mut rng).unwrap();
        let (_, ready) = e.start("web", c, Duration::ZERO, &mut rng).unwrap();
        assert!(e.port_open("web", 80, ready));
        let stopped = e.stop("web", ready + Duration::from_secs(30), &mut rng).unwrap();
        assert!(!e.port_open("web", 80, stopped + Duration::from_secs(1)));
    }
}
