//! Property tests for trace generation: the published aggregate invariants
//! hold for every feasible configuration and seed.

use desim::{Duration, SimTime};
use proptest::prelude::*;
use workload::{Trace, TraceConfig};

fn arb_config() -> impl Strategy<Value = TraceConfig> {
    (2usize..30, 5usize..40, 1usize..15, 30u64..600, 1usize..25).prop_map(
        |(n_services, per, min, secs, clients)| TraceConfig {
            n_services,
            n_requests: n_services * (min + per),
            min_per_service: min,
            duration: Duration::from_secs(secs),
            n_clients: clients,
            ..TraceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counts are exact: total requests, service floor, client bounds and
    /// the time horizon all hold for arbitrary feasible configurations.
    #[test]
    fn invariants_for_all_configs(cfg in arb_config(), seed in any::<u64>()) {
        let horizon = SimTime::ZERO + cfg.duration;
        let trace = Trace::generate(cfg.clone(), seed);
        prop_assert_eq!(trace.requests.len(), cfg.n_requests);
        let counts = trace.per_service_counts();
        prop_assert_eq!(counts.len(), cfg.n_services);
        prop_assert_eq!(counts.iter().sum::<usize>(), cfg.n_requests);
        prop_assert!(counts.iter().all(|&c| c >= cfg.min_per_service));
        prop_assert!(trace.requests.iter().all(|r| r.client < cfg.n_clients));
        prop_assert!(trace.requests.iter().all(|r| r.at <= horizon));
        prop_assert!(trace.requests.windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// Deployment accounting: exactly one deployment per service, at the
    /// service's earliest request; histograms sum to the totals.
    #[test]
    fn deployment_accounting(cfg in arb_config(), seed in any::<u64>()) {
        let trace = Trace::generate(cfg.clone(), seed);
        let firsts = trace.deployment_times();
        prop_assert_eq!(firsts.len(), cfg.n_services);
        for (svc, &t) in firsts.iter().enumerate() {
            let earliest = trace
                .requests
                .iter()
                .filter(|r| r.service == svc)
                .map(|r| r.at)
                .min()
                .unwrap();
            prop_assert_eq!(t, earliest);
        }
        prop_assert_eq!(
            trace.deployments_per_second().iter().sum::<u64>(),
            cfg.n_services as u64
        );
        prop_assert_eq!(
            trace.requests_per_second().iter().sum::<u64>(),
            cfg.n_requests as u64
        );
    }

    /// Determinism: identical (config, seed) pairs generate identical traces.
    #[test]
    fn deterministic(cfg in arb_config(), seed in any::<u64>()) {
        let a = Trace::generate(cfg.clone(), seed);
        let b = Trace::generate(cfg, seed);
        prop_assert_eq!(a.requests, b.requests);
    }
}
