//! Client-side measurement: `timecurl` semantics.
//!
//! The paper measures with a curl wrapper: `time_total` includes everything
//! from the moment curl starts establishing the TCP connection until it has
//! received the full HTTP response. [`RequestTiming`] captures the milestones
//! the emulated client observes and derives the same quantity.

use desim::{Duration, SimTime};

/// Milestones of one emulated HTTP request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestTiming {
    /// TCP connect started (SYN sent) — `time_total`'s clock starts here.
    pub connect_start: SimTime,
    /// TCP handshake completed (ACK sent after SYN-ACK).
    pub connected: Option<SimTime>,
    /// First response byte received (`time_starttransfer` in curl terms).
    pub first_byte: Option<SimTime>,
    /// Full response received — `time_total`'s clock stops here.
    pub complete: Option<SimTime>,
}

impl RequestTiming {
    /// Starts a timing record at the SYN send instant.
    pub fn started(connect_start: SimTime) -> RequestTiming {
        RequestTiming {
            connect_start,
            connected: None,
            first_byte: None,
            complete: None,
        }
    }

    /// curl's `time_total`: connect start → response complete.
    pub fn time_total(&self) -> Option<Duration> {
        Some(self.complete? - self.connect_start)
    }

    /// curl's `time_connect`: connect start → handshake done.
    pub fn time_connect(&self) -> Option<Duration> {
        Some(self.connected? - self.connect_start)
    }

    /// curl's `time_starttransfer`: connect start → first response byte.
    pub fn time_starttransfer(&self) -> Option<Duration> {
        Some(self.first_byte? - self.connect_start)
    }

    /// `true` once the response fully arrived.
    pub fn is_complete(&self) -> bool {
        self.complete.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milestones_derive_curl_metrics() {
        let mut t = RequestTiming::started(SimTime::from_millis(1000));
        assert!(!t.is_complete());
        assert_eq!(t.time_total(), None);
        t.connected = Some(SimTime::from_millis(1002));
        t.first_byte = Some(SimTime::from_millis(1003));
        t.complete = Some(SimTime::from_millis(1004));
        assert!(t.is_complete());
        assert_eq!(t.time_connect(), Some(Duration::from_millis(2)));
        assert_eq!(t.time_starttransfer(), Some(Duration::from_millis(3)));
        assert_eq!(t.time_total(), Some(Duration::from_millis(4)));
    }

    #[test]
    fn waiting_time_shows_up_in_time_total() {
        // A request held at the controller for on-demand deployment simply
        // sees a long connect phase — exactly how the paper's client
        // perceives with-waiting deployment.
        let mut t = RequestTiming::started(SimTime::from_secs(10));
        t.connected = Some(SimTime::from_secs(10) + Duration::from_millis(520));
        t.first_byte = Some(SimTime::from_secs(10) + Duration::from_millis(521));
        t.complete = Some(SimTime::from_secs(10) + Duration::from_millis(521));
        assert_eq!(t.time_total(), Some(Duration::from_millis(521)));
        assert!(t.time_connect().unwrap() > Duration::from_millis(500));
    }
}
