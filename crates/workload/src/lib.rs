//! `workload` — request traces and client measurement semantics.
//!
//! The paper emulates realistic simultaneous request arrivals by replaying
//! the five-minute `bigFlows.pcap` capture: all TCP conversations to public
//! addresses on port 80, keeping destinations with ≥ 20 requests — **42
//! services receiving 1708 requests** (Fig. 9), whose first occurrences
//! produce **42 on-demand deployments** clustered at the start of the trace,
//! up to ~8 per second (Fig. 10).
//!
//! The capture itself is not redistributable, so [`trace`] synthesizes a
//! deterministic trace matching those published aggregate statistics: the
//! same service/request counts, a heavy-tailed request distribution with the
//! ≥ 20 floor, and conversation start times that pile up early exactly as a
//! cold trace replay does.
//!
//! [`client`] models the measurement side: `timecurl.sh` semantics, where
//! `time_total` spans from the start of the TCP connect until the HTTP
//! response is fully received.

#![warn(missing_docs)]

//! ```
//! use workload::{Trace, TraceConfig};
//!
//! let trace = Trace::generate(TraceConfig::default(), 7);
//! assert_eq!(trace.requests.len(), 1708);
//! assert_eq!(trace.per_service_counts().len(), 42);
//! assert!(trace.per_service_counts().iter().all(|&c| c >= 20));
//! ```

pub mod client;
pub mod trace;

pub use client::RequestTiming;
pub use trace::{BurstConfig, Request, Trace, TraceConfig};
