//! Synthetic bigFlows-like trace generation.

use desim::{Duration, Exponential, Sample, SimRng, SimTime, Uniform};

/// Trace generation parameters. Defaults reproduce the paper's filtered
/// bigFlows statistics.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Number of distinct services (destination addresses).
    pub n_services: usize,
    /// Total number of requests.
    pub n_requests: usize,
    /// Minimum requests per service (the paper's filter threshold).
    pub min_per_service: usize,
    /// Trace length.
    pub duration: Duration,
    /// Number of client hosts issuing requests (the 20 Raspberry Pis).
    pub n_clients: usize,
    /// Zipf-like skew exponent of the request distribution.
    pub skew: f64,
    /// Mean of the exponential conversation-start offset (small ⇒
    /// deployments pile up early, as in Fig. 10).
    pub start_mean_secs: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            n_services: 42,
            n_requests: 1708,
            min_per_service: 20,
            duration: Duration::from_secs(300),
            n_clients: 20,
            skew: 0.9,
            start_mean_secs: 8.0,
        }
    }
}

impl TraceConfig {
    /// The chaos-experiment workload: small enough to replay twice per run
    /// (determinism check) under fault injection, large enough that every
    /// failure mode fires at a ~10% per-phase rate.
    pub fn chaos() -> TraceConfig {
        TraceConfig {
            n_services: 12,
            n_requests: 360,
            min_per_service: 10,
            duration: Duration::from_secs(180),
            ..TraceConfig::default()
        }
    }

    /// A shrunk chaos workload for CI smoke runs: seconds, not minutes.
    pub fn chaos_smoke() -> TraceConfig {
        TraceConfig {
            n_services: 6,
            n_requests: 90,
            min_per_service: 8,
            duration: Duration::from_secs(90),
            ..TraceConfig::default()
        }
    }
}

/// One request in the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Arrival time (when the client opens the connection).
    pub at: SimTime,
    /// Service index (`0..n_services`).
    pub service: usize,
    /// Client index (`0..n_clients`).
    pub client: usize,
}

/// A generated trace, sorted by arrival time.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The configuration it was generated from.
    pub config: TraceConfig,
    /// Requests in time order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Generates a trace. Identical `(config, seed)` pairs generate identical
    /// traces.
    pub fn generate(config: TraceConfig, seed: u64) -> Trace {
        assert!(config.n_services > 0 && config.n_clients > 0);
        assert!(
            config.n_requests >= config.n_services * config.min_per_service,
            "not enough requests to give every service its minimum"
        );
        let mut rng = SimRng::new(seed);
        let counts = request_counts(&config);
        debug_assert_eq!(counts.iter().sum::<usize>(), config.n_requests);

        let start_dist = Exponential::with_mean(config.start_mean_secs);
        let horizon = config.duration.as_secs_f64();
        let mut requests = Vec::with_capacity(config.n_requests);
        for (service, &count) in counts.iter().enumerate() {
            // Conversation start: early-biased; the remaining requests of the
            // conversation spread uniformly to the end of the trace.
            let start = start_dist.sample(&mut rng).min(horizon * 0.8);
            let span = Uniform::new(start, horizon);
            let mut times = Vec::with_capacity(count);
            times.push(start);
            for _ in 1..count {
                times.push(span.sample(&mut rng));
            }
            for at in times {
                requests.push(Request {
                    at: SimTime::from_nanos((at * 1e9) as u64),
                    service,
                    client: rng.below(config.n_clients as u64) as usize,
                });
            }
        }
        requests.sort_by_key(|r| (r.at, r.service, r.client));
        Trace { config, requests }
    }

    /// Requests per service (Fig. 9's distribution).
    pub fn per_service_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.n_services];
        for r in &self.requests {
            counts[r.service] += 1;
        }
        counts
    }

    /// First-request (deployment) time per service, in service order
    /// (Fig. 10's distribution).
    pub fn deployment_times(&self) -> Vec<SimTime> {
        let mut firsts = vec![SimTime::MAX; self.config.n_services];
        for r in &self.requests {
            if r.at < firsts[r.service] {
                firsts[r.service] = r.at;
            }
        }
        firsts
    }

    /// Per-second histogram of request arrivals over the trace.
    pub fn requests_per_second(&self) -> Vec<u64> {
        let secs = self.config.duration.as_nanos().div_ceil(1_000_000_000) as usize;
        let mut bins = vec![0u64; secs];
        for r in &self.requests {
            let b = (r.at.as_nanos() / 1_000_000_000) as usize;
            if b < bins.len() {
                bins[b] += 1;
            }
        }
        bins
    }

    /// Per-second histogram of deployments (first requests).
    pub fn deployments_per_second(&self) -> Vec<u64> {
        let secs = self.config.duration.as_nanos().div_ceil(1_000_000_000) as usize;
        let mut bins = vec![0u64; secs];
        for t in self.deployment_times() {
            let b = (t.as_nanos() / 1_000_000_000) as usize;
            if b < bins.len() {
                bins[b] += 1;
            }
        }
        bins
    }
}

/// Parameters of the bursty workload used by the scheduler tournament:
/// periodic request bursts slam one (rotating) hot service hard enough to
/// saturate a single instance, over a uniform background trickle that keeps
/// every service deployed. Unlike the bigFlows-style trace — whose load is
/// spread thin — a burst makes per-instance queueing and horizontal scaling
/// *matter*: schedulers that ignore load (proximity, random) pile the burst
/// onto one replica while load-aware ones spread it.
#[derive(Clone, Debug)]
pub struct BurstConfig {
    /// Number of distinct services.
    pub n_services: usize,
    /// Number of client hosts issuing requests.
    pub n_clients: usize,
    /// Number of bursts; burst `b` targets service `b % n_services`.
    pub bursts: usize,
    /// Requests per burst, arriving within one [`burst_width`](Self::burst_width).
    pub burst_size: usize,
    /// Window the burst's requests spread across (small ⇒ deep queues).
    pub burst_width: Duration,
    /// Gap between consecutive burst starts.
    pub gap: Duration,
    /// Warm-up before the first burst (lets the trickle deploy everything).
    pub warmup: Duration,
    /// Mean background request rate (per second, across all services).
    pub background_rps: f64,
    /// Trace length.
    pub duration: Duration,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig::full()
    }
}

impl BurstConfig {
    /// The tournament workload: 6 bursts of 48 requests in 400 ms — a
    /// ~120 req/s spike against replicas that serve 100 req/s each — every
    /// 5 s, over a 4 req/s trickle. The client pool is wide (96) so most
    /// burst arrivals are *fresh* flows: placement is decided by the
    /// scheduler under load, not replayed from flow memory.
    pub fn full() -> BurstConfig {
        BurstConfig {
            n_services: 4,
            n_clients: 96,
            bursts: 6,
            burst_size: 48,
            burst_width: Duration::from_millis(400),
            gap: Duration::from_secs(5),
            warmup: Duration::from_secs(2),
            background_rps: 4.0,
            duration: Duration::from_secs(36),
        }
    }

    /// A shrunk burst workload for CI smoke runs.
    pub fn smoke() -> BurstConfig {
        BurstConfig {
            bursts: 2,
            burst_size: 32,
            duration: Duration::from_secs(14),
            ..BurstConfig::full()
        }
    }

    /// Generates the bursty trace. Identical `(config, seed)` pairs generate
    /// identical traces. The embedded [`TraceConfig`] describes the result
    /// (so the histogram helpers work), not generator knobs.
    pub fn generate(self, seed: u64) -> Trace {
        assert!(self.n_services > 0 && self.n_clients > 0);
        let mut rng = SimRng::new(seed);
        let mut requests = Vec::new();
        let horizon = self.duration.as_secs_f64();
        for b in 0..self.bursts {
            let start = self.warmup + self.gap.mul_f64(b as f64);
            let window = Uniform::new(0.0, self.burst_width.as_secs_f64());
            for _ in 0..self.burst_size {
                let at = start + Duration::from_secs_f64(window.sample(&mut rng));
                requests.push(Request {
                    at: SimTime::ZERO + at,
                    service: b % self.n_services,
                    client: rng.below(self.n_clients as u64) as usize,
                });
            }
        }
        let n_background = (self.background_rps * horizon) as usize;
        let span = Uniform::new(0.0, horizon);
        for _ in 0..n_background {
            requests.push(Request {
                at: SimTime::from_nanos((span.sample(&mut rng) * 1e9) as u64),
                service: rng.below(self.n_services as u64) as usize,
                client: rng.below(self.n_clients as u64) as usize,
            });
        }
        requests.sort_by_key(|r| (r.at, r.service, r.client));
        let config = TraceConfig {
            n_services: self.n_services,
            n_requests: requests.len(),
            min_per_service: 0,
            duration: self.duration,
            n_clients: self.n_clients,
            skew: 0.0,
            start_mean_secs: self.warmup.as_secs_f64(),
        };
        Trace { config, requests }
    }
}

/// Splits `n_requests` over services: Zipf-like weights with a hard floor of
/// `min_per_service`, summing exactly to `n_requests`.
fn request_counts(config: &TraceConfig) -> Vec<usize> {
    let n = config.n_services;
    let floor = config.min_per_service;
    let total = config.n_requests;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(config.skew)).collect();
    let wsum: f64 = weights.iter().sum();
    let extra = total - n * floor;
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| floor + (extra as f64 * w / wsum) as usize)
        .collect();
    // Distribute the rounding remainder to the largest services.
    let mut assigned: usize = counts.iter().sum();
    let mut i = 0;
    while assigned < total {
        counts[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_trace_matches_paper_aggregates() {
        let t = Trace::generate(TraceConfig::default(), 7);
        assert_eq!(t.requests.len(), 1708);
        let counts = t.per_service_counts();
        assert_eq!(counts.len(), 42);
        assert_eq!(counts.iter().sum::<usize>(), 1708);
        assert!(counts.iter().all(|&c| c >= 20), "≥20 requests per service");
        // Heavy tail: the busiest service clearly dominates the floor.
        assert!(*counts.iter().max().unwrap() > 60);
    }

    #[test]
    fn trace_is_time_sorted_and_within_duration() {
        let t = Trace::generate(TraceConfig::default(), 3);
        assert!(t.requests.windows(2).all(|w| w[0].at <= w[1].at));
        let horizon = SimTime::from_secs(300);
        assert!(t.requests.iter().all(|r| r.at <= horizon));
        assert!(t.requests.iter().all(|r| r.client < 20));
    }

    #[test]
    fn deployments_cluster_early() {
        let t = Trace::generate(TraceConfig::default(), 11);
        let firsts = t.deployment_times();
        assert_eq!(firsts.len(), 42);
        let within_first_minute = firsts
            .iter()
            .filter(|&&f| f <= SimTime::from_secs(60))
            .count();
        // Fig. 10: most deployments happen at the start of the trace.
        assert!(
            within_first_minute * 10 >= 42 * 9,
            "{within_first_minute}/42 within first minute"
        );
        let peak = *t.deployments_per_second().iter().max().unwrap();
        assert!((2..=12).contains(&peak), "peak {peak}/s (paper: up to ~8)");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Trace::generate(TraceConfig::default(), 5);
        let b = Trace::generate(TraceConfig::default(), 5);
        assert_eq!(a.requests, b.requests);
        let c = Trace::generate(TraceConfig::default(), 6);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn histograms_account_for_everything() {
        let t = Trace::generate(TraceConfig::default(), 9);
        assert_eq!(t.requests_per_second().iter().sum::<u64>(), 1708);
        assert_eq!(t.deployments_per_second().iter().sum::<u64>(), 42);
    }

    #[test]
    fn custom_configs_work() {
        let cfg = TraceConfig {
            n_services: 5,
            n_requests: 200,
            min_per_service: 10,
            duration: Duration::from_secs(60),
            n_clients: 3,
            ..TraceConfig::default()
        };
        let t = Trace::generate(cfg, 1);
        assert_eq!(t.requests.len(), 200);
        assert_eq!(t.per_service_counts().len(), 5);
        assert!(t.per_service_counts().iter().all(|&c| c >= 10));
    }

    #[test]
    fn chaos_configs_are_feasible_and_deterministic() {
        for cfg in [TraceConfig::chaos(), TraceConfig::chaos_smoke()] {
            let a = Trace::generate(cfg.clone(), 7);
            let b = Trace::generate(cfg.clone(), 7);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.requests.len(), cfg.n_requests);
            assert_eq!(a.per_service_counts().len(), cfg.n_services);
            assert!(a
                .per_service_counts()
                .iter()
                .all(|&c| c >= cfg.min_per_service));
        }
    }

    #[test]
    fn bursty_trace_is_deterministic_and_bursty() {
        let cfg = BurstConfig::full();
        let a = cfg.clone().generate(7);
        let b = cfg.clone().generate(7);
        assert_eq!(a.requests, b.requests);
        assert_ne!(a.requests, cfg.clone().generate(8).requests);
        assert!(a.requests.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.requests.iter().all(|r| r.service < cfg.n_services));
        assert!(a.requests.iter().all(|r| r.client < cfg.n_clients));
        // The peak second carries a full burst; the background alone is an
        // order of magnitude below it.
        let peak = *a.requests_per_second().iter().max().unwrap();
        assert!(peak as usize >= cfg.burst_size, "peak {peak}/s");
        // Every service sees traffic (bursts rotate + trickle covers all).
        assert!(a.per_service_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn bursty_smoke_is_a_subset_scale() {
        let t = BurstConfig::smoke().generate(7);
        let full = BurstConfig::full().generate(7);
        assert!(t.requests.len() < full.requests.len());
        assert!(t.requests.iter().all(|r| r.at <= SimTime::from_secs(14)));
    }

    #[test]
    #[should_panic(expected = "not enough requests")]
    fn infeasible_config_rejected() {
        Trace::generate(
            TraceConfig {
                n_services: 42,
                n_requests: 100,
                ..TraceConfig::default()
            },
            1,
        );
    }
}
