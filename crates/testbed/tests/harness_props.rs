//! Property tests over the full harness: random request schedules against
//! random service mixes must always complete, never reset a connection,
//! never leak edge addressing, and never lose a frame.

use desim::{Duration, SimTime};
use edgectl::ControllerConfig;
use netsim::{Ipv4Addr, ServiceAddr};
use proptest::prelude::*;
use testbed::{ClusterKind, Testbed, TestbedConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary schedules of requests over a random service mix.
    #[test]
    fn random_schedules_always_complete(
        kind in prop_oneof![Just(ClusterKind::Docker), Just(ClusterKind::K8s)],
        service_keys in prop::collection::vec(
            prop_oneof![Just("asm"), Just("nginx"), Just("nginx-py")], 1..3),
        schedule in prop::collection::vec((0u64..60_000, 0usize..20, 0usize..3), 1..15),
        memory_idle in 10u64..120,
        seed in any::<u64>(),
    ) {
        let mut tb = Testbed::new(TestbedConfig {
            cluster: kind,
            seed,
            controller: ControllerConfig {
                memory_idle: Duration::from_secs(memory_idle),
                ..ControllerConfig::default()
            },
            ..TestbedConfig::default()
        });
        let mut addrs = Vec::new();
        for (i, key) in service_keys.iter().enumerate() {
            let profile = containerd::ServiceSet::by_key(key).unwrap();
            let addr = ServiceAddr::new(
                Ipv4Addr::new(203, 0, 113, 10 + i as u8),
                profile.listen_port,
            );
            tb.register_service(profile, addr);
            tb.pre_pull(addr);
            tb.pre_create(addr);
            addrs.push(addr);
        }
        let mut n = 0;
        for (ms, client, svc) in &schedule {
            let addr = addrs[svc % addrs.len()];
            tb.request_at(SimTime::from_millis(1000 + ms), client % 20, addr);
            n += 1;
        }
        tb.run_until(SimTime::from_secs(600));

        prop_assert_eq!(tb.completed.len(), n, "every request completes");
        prop_assert_eq!(tb.resets, 0, "port polling prevents RSTs");
        prop_assert_eq!(tb.transparency_violations, 0, "clients never see the edge");
        prop_assert_eq!(tb.drops, 0, "no frames lost");
        // Every completion has monotone milestones.
        for c in &tb.completed {
            let t = &c.timing;
            prop_assert!(t.connected.unwrap() >= t.connect_start);
            prop_assert!(t.first_byte.unwrap() >= t.connected.unwrap());
            prop_assert!(t.complete.unwrap() >= t.first_byte.unwrap());
        }
    }

    /// The same random schedule under the `latency-aware` scheduler also
    /// holds the invariants (first requests may go to the cloud).
    #[test]
    fn without_waiting_schedules_hold_invariants(
        schedule in prop::collection::vec((0u64..30_000, 0usize..20), 1..10),
        seed in any::<u64>(),
    ) {
        let mut tb = Testbed::new(TestbedConfig {
            scheduler: "latency-aware".to_owned(),
            seed,
            ..TestbedConfig::default()
        });
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        tb.register_service(containerd::ServiceSet::by_key("asm").unwrap(), addr);
        tb.pre_pull(addr);
        tb.pre_create(addr);
        let n = schedule.len();
        for (ms, client) in schedule {
            tb.request_at(SimTime::from_millis(1000 + ms), client % 20, addr);
        }
        tb.run_until(SimTime::from_secs(300));
        prop_assert_eq!(tb.completed.len(), n);
        prop_assert_eq!(tb.resets, 0);
        prop_assert_eq!(tb.transparency_violations, 0);
    }
}
