//! One entry point per table/figure of the paper, plus the ablations.
//!
//! Every experiment is deterministic in its seed and returns a [`Figure`]:
//! a machine-readable table plus rendered text. The `repro` binary in the
//! `bench` crate prints these; `EXPERIMENTS.md` records them against the
//! paper's numbers.

use crate::harness::{ClusterKind, Testbed, TestbedConfig};
use crate::report::{bar_chart, timeline, Table};
use containerd::{ContentStore, ServiceProfile, ServiceSet};
use desim::{Duration, SimRng, SimTime, Summary};
use edgectl::controller::RequestKind;
use edgectl::ControllerConfig;
use netsim::{Ipv4Addr, ServiceAddr};
use registry::RegistryProfile;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use telemetry::{MetricsRegistry, SpanLog};
use workload::{Trace, TraceConfig};

/// A reproduced table or figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier (`table1`, `fig9`, ... `fig16`, `hybrid`, ...).
    pub id: &'static str,
    /// Title line.
    pub title: String,
    /// Machine-readable result rows.
    pub table: Table,
    /// Fully rendered text (table plus charts/notes).
    pub body: String,
}

impl Figure {
    fn new(id: &'static str, title: impl Into<String>, table: Table) -> Figure {
        let title = title.into();
        let body = format!("== {id}: {title} ==\n{}", table.render());
        Figure { id, title, table, body }
    }

    fn with_extra(mut self, extra: &str) -> Figure {
        self.body.push_str(extra);
        if !extra.ends_with('\n') {
            self.body.push('\n');
        }
        self
    }
}

fn addr_of(profile: &ServiceProfile, index: usize) -> ServiceAddr {
    ServiceAddr::new(Ipv4Addr::new(203, 0, 113, (index + 1) as u8), profile.listen_port)
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Table I: the four edge services.
pub fn table1() -> Figure {
    let mut t = Table::new(&["Service", "Image(s)", "Size", "Layers", "Containers", "HTTP"]);
    for p in ServiceSet::all() {
        let images: Vec<String> = p.manifests.iter().map(|m| m.reference.to_string()).collect();
        let size = p.total_image_size();
        let size_str = if size < 1024 * 1024 {
            format!("{:.2} KiB", size as f64 / 1024.0)
        } else {
            format!("{} MiB", size / (1024 * 1024))
        };
        t.row(vec![
            p.display.to_string(),
            images.join(" + "),
            size_str,
            p.total_layers().to_string(),
            p.container_count().to_string(),
            p.http_method.to_string(),
        ]);
    }
    Figure::new("table1", "Edge services used in this work", t)
}

// ---------------------------------------------------------------------------
// Figs. 9 & 10 — the request / deployment distributions
// ---------------------------------------------------------------------------

/// Fig. 9: distribution of 1708 requests to 42 services over five minutes.
pub fn fig9(seed: u64) -> Figure {
    let trace = Trace::generate(TraceConfig::default(), seed);
    let mut counts = trace.per_service_counts();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let mut t = Table::new(&["Service rank", "Requests"]);
    for (i, c) in counts.iter().enumerate() {
        t.row(vec![format!("{}", i + 1), c.to_string()]);
    }
    let labels: Vec<String> = (1..=counts.len()).map(|i| format!("#{i:02}")).collect();
    let values: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    let chart = format!(
        "\nRequests per service (sorted):\n{}\nArrivals over the 5-minute trace:\n{}\n",
        bar_chart(&labels[..12], &values[..12], 40, "requests"),
        timeline(&trace.requests_per_second(), 75)
    );
    Figure::new(
        "fig9",
        format!(
            "Distribution of {} requests to {} edge services over five minutes",
            trace.requests.len(),
            counts.len()
        ),
        t,
    )
    .with_extra(&chart)
}

/// Fig. 10: distribution of the 42 deployments over five minutes.
pub fn fig10(seed: u64) -> Figure {
    let trace = Trace::generate(TraceConfig::default(), seed);
    let per_sec = trace.deployments_per_second();
    let peak = *per_sec.iter().max().unwrap();
    let mut t = Table::new(&["Second", "Deployments"]);
    for (s, &d) in per_sec.iter().enumerate() {
        if d > 0 {
            t.row(vec![s.to_string(), d.to_string()]);
        }
    }
    let chart = format!(
        "\nDeployments over the trace (peak {peak}/s, paper: up to ~8/s early):\n{}\n",
        timeline(&per_sec, 75)
    );
    Figure::new(
        "fig10",
        "Distribution of 42 edge service deployments over five minutes",
        t,
    )
    .with_extra(&chart)
}

// ---------------------------------------------------------------------------
// The deployment-phase experiments (Figs. 11/12/14/15/16)
// ---------------------------------------------------------------------------

/// The measurements of one trace replay: one service type on one cluster.
#[derive(Clone, Debug, Default)]
pub struct DeploymentRun {
    /// `time_total` of each service's *first* request (deployment included),
    /// seconds.
    pub firsts: Vec<f64>,
    /// Controller-observed wait-until-ready per deployment, seconds.
    pub waits: Vec<f64>,
    /// `time_total` of warm (non-first) requests, seconds.
    pub warm: Vec<f64>,
    /// Connection resets seen (expected zero).
    pub resets: u64,
}

impl DeploymentRun {
    fn median_first(&self) -> f64 {
        Summary::new(self.firsts.clone()).median().unwrap_or(f64::NAN)
    }
    fn median_wait(&self) -> f64 {
        Summary::new(self.waits.clone()).median().unwrap_or(f64::NAN)
    }
    fn median_warm(&self) -> f64 {
        Summary::new(self.warm.clone()).median().unwrap_or(f64::NAN)
    }
}

/// Replays the bigFlows-like trace with every one of the 42 services bound
/// to `profile` on a cluster of `kind`. `pre_create` distinguishes the
/// scale-up-only scenario (Fig. 11: images pulled *and* services created)
/// from create+scale-up (Fig. 12: images pulled only).
pub fn run_trace_experiment(
    kind: ClusterKind,
    profile: &ServiceProfile,
    pre_create: bool,
    seed: u64,
) -> DeploymentRun {
    let trace = Trace::generate(TraceConfig::default(), seed);
    let mut tb = Testbed::new(TestbedConfig {
        cluster: kind,
        seed,
        controller: ControllerConfig {
            // Keep all 42 services alive for the whole trace so the run
            // produces exactly the 42 deployments of Fig. 10.
            memory_idle: Duration::from_secs(400),
            ..ControllerConfig::default()
        },
        ..TestbedConfig::default()
    });
    let n_services = trace.config.n_services;
    let mut addrs = Vec::with_capacity(n_services);
    for i in 0..n_services {
        let addr = addr_of(profile, i);
        tb.register_service(profile.clone(), addr);
        tb.pre_pull(addr);
        if pre_create {
            tb.pre_create(addr);
        }
        addrs.push(addr);
    }
    for r in &trace.requests {
        // Offset by 1 s so setup happens strictly before traffic.
        tb.request_at(r.at + Duration::from_secs(1), r.client, addrs[r.service]);
    }
    tb.run_until(SimTime::from_secs(400));

    let mut first_done: BTreeMap<ServiceAddr, f64> = BTreeMap::new();
    let mut warm = Vec::new();
    for c in &tb.completed {
        let total = c.timing.time_total().expect("completed").as_secs_f64();
        if let std::collections::btree_map::Entry::Vacant(e) = first_done.entry(c.service) {
            e.insert(total);
        } else {
            warm.push(total);
        }
    }
    let waits = tb
        .controller
        .records
        .iter()
        .filter(|r| r.kind == RequestKind::Waited)
        .filter_map(|r| r.phases.wait_time())
        .map(|d| d.as_secs_f64())
        .collect();
    DeploymentRun {
        firsts: first_done.into_values().collect(),
        waits,
        warm,
        resets: tb.resets,
    }
}

/// All eight trace replays (4 services × 2 clusters) for one scenario.
pub struct EvalRuns {
    /// `(cluster, service key)` → run.
    pub runs: BTreeMap<(&'static str, &'static str), DeploymentRun>,
    /// Whether services were pre-created (Fig. 11) or not (Fig. 12).
    pub pre_created: bool,
}

impl EvalRuns {
    /// Runs the full matrix for the given scenario.
    pub fn collect(pre_create: bool, seed: u64) -> EvalRuns {
        let mut runs = BTreeMap::new();
        for kind in [ClusterKind::Docker, ClusterKind::K8s] {
            for profile in ServiceSet::all() {
                let run = run_trace_experiment(kind, &profile, pre_create, seed);
                runs.insert((kind.label(), profile.key), run);
            }
        }
        EvalRuns {
            runs,
            pre_created: pre_create,
        }
    }

    fn matrix_figure(
        &self,
        id: &'static str,
        title: &str,
        value: impl Fn(&DeploymentRun) -> f64,
        unit: &str,
    ) -> Figure {
        let mut t = Table::new(&["Service", "Docker", "K8s"]);
        let mut labels = Vec::new();
        let mut docker_vals = Vec::new();
        let mut k8s_vals = Vec::new();
        for profile in ServiceSet::all() {
            let d = value(&self.runs[&("Docker", profile.key)]);
            let k = value(&self.runs[&("K8s", profile.key)]);
            t.row(vec![
                profile.key.to_string(),
                format!("{d:.3} {unit}"),
                format!("{k:.3} {unit}"),
            ]);
            labels.push(format!("{} (Docker)", profile.key));
            docker_vals.push(d);
            labels.push(format!("{} (K8s)", profile.key));
            k8s_vals.push(k);
        }
        let mut values = Vec::new();
        for i in 0..docker_vals.len() {
            values.push(docker_vals[i]);
            values.push(k8s_vals[i]);
        }
        let chart = format!("\n{}", bar_chart(&labels, &values, 50, unit));
        Figure::new(id, title.to_owned(), t).with_extra(&chart)
    }
}

/// Fig. 11: median total time to *scale up* on both clusters (images pulled,
/// services created; 42 instances per test).
pub fn fig11(runs: &EvalRuns) -> Figure {
    assert!(runs.pre_created, "fig11 needs the pre-created scenario");
    runs.matrix_figure(
        "fig11",
        "Total time (median) to scale up four services on two clusters",
        DeploymentRun::median_first,
        "s",
    )
}

/// Fig. 12: median total time to *create + scale up* (images pulled only).
pub fn fig12(runs: &EvalRuns) -> Figure {
    assert!(!runs.pre_created, "fig12 needs the non-pre-created scenario");
    runs.matrix_figure(
        "fig12",
        "Total time (median) to create + scale up four services on two clusters",
        DeploymentRun::median_first,
        "s",
    )
}

/// Fig. 14: median wait-until-ready after scale-up (component of Fig. 11).
pub fn fig14(runs: &EvalRuns) -> Figure {
    assert!(runs.pre_created);
    runs.matrix_figure(
        "fig14",
        "Wait time (median) until services are ready after being scaled up",
        DeploymentRun::median_wait,
        "s",
    )
}

/// Fig. 15: median wait-until-ready after create + scale-up (component of
/// Fig. 12).
pub fn fig15(runs: &EvalRuns) -> Figure {
    assert!(!runs.pre_created);
    runs.matrix_figure(
        "fig15",
        "Wait time (median) until services are ready after create + scale up",
        DeploymentRun::median_wait,
        "s",
    )
}

/// Fig. 16: median total request time once the instance runs.
pub fn fig16(runs: &EvalRuns) -> Figure {
    runs.matrix_figure(
        "fig16",
        "Total time (median) for client requests once the instance is running",
        DeploymentRun::median_warm,
        "s",
    )
}

// ---------------------------------------------------------------------------
// Fig. 13 — pull times
// ---------------------------------------------------------------------------

/// Fig. 13: total time to pull each service's images from its public
/// registry (Docker Hub / GCR) versus a private in-network registry.
pub fn fig13(n_seeds: u64) -> Figure {
    let mut t = Table::new(&["Service", "Public registry", "Private registry", "Saving"]);
    let mut labels = Vec::new();
    let mut values = Vec::new();
    for profile in ServiceSet::all() {
        let mut public = Vec::new();
        let mut private = Vec::new();
        for seed in 0..n_seeds {
            let mut rng = SimRng::new(seed ^ 0x000f_1613);
            let mut store = ContentStore::new();
            public.push(store.pull_all(&profile.manifests, &mut rng).as_secs_f64());
            let mut rng = SimRng::new(seed ^ 0x000f_1613);
            let mut store = ContentStore::with_mirror(RegistryProfile::private_local());
            private.push(store.pull_all(&profile.manifests, &mut rng).as_secs_f64());
        }
        let pu = Summary::new(public).median().unwrap();
        let pr = Summary::new(private).median().unwrap();
        t.row(vec![
            profile.key.to_string(),
            format!("{pu:.3} s"),
            format!("{pr:.3} s"),
            format!("{:.3} s", pu - pr),
        ]);
        labels.push(format!("{} (public)", profile.key));
        values.push(pu);
        labels.push(format!("{} (private)", profile.key));
        values.push(pr);
    }
    let chart = format!("\n{}", bar_chart(&labels, &values, 50, "s"));
    Figure::new(
        "fig13",
        "Total time to pull the service container images (public vs private registry)",
        t,
    )
    .with_extra(&chart)
}

// ---------------------------------------------------------------------------
// Ablations (Sections V & VII)
// ---------------------------------------------------------------------------

/// Section VII's hybrid proposal: answer the first request via Docker
/// (fast), deploy the same service on Kubernetes in the background for
/// future requests — one controller, two clusters, the `docker-first`
/// Global Scheduler. Reported per service: the first answer (Docker speed),
/// when the background K8s instance became ready, the K8s-only baseline it
/// beats, and which cluster serves a later fresh client.
pub fn hybrid(seed: u64) -> Figure {
    let mut t = Table::new(&[
        "Service",
        "First answer (hybrid)",
        "K8s ready (background)",
        "K8s-only first answer",
        "Later client served by",
    ]);
    for profile in ServiceSet::all() {
        let mut tb = Testbed::new(TestbedConfig {
            cluster: ClusterKind::Docker,
            scheduler: "docker-first".to_owned(),
            seed,
            ..TestbedConfig::default()
        });
        tb.add_hybrid_k8s();
        let addr = addr_of(&profile, 0);
        tb.register_service(profile.clone(), addr);
        tb.pre_pull(addr);
        tb.pre_create(addr);
        tb.pre_pull_on(addr, 1);
        let t0 = SimTime::from_secs(1);
        tb.request_at(t0, 0, addr);
        // A fresh client well after the background deployment finished.
        tb.request_at(SimTime::from_secs(30), 1, addr);
        tb.run_until(SimTime::from_secs(90));

        let first = tb
            .completed
            .iter()
            .find(|c| c.client == 0)
            .and_then(|c| c.timing.time_total())
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN);
        let bg_ready = tb
            .controller
            .records
            .first()
            .and_then(|r| r.background_ready)
            .map(|at| at.saturating_since(t0).as_secs_f64());
        let later_cluster = tb
            .controller
            .records
            .iter()
            .find(|r| r.client == tb.topology().client_ip(1))
            .and_then(|r| r.cluster)
            .map(|i| tb.controller.cluster(i).name().to_owned())
            .unwrap_or_else(|| "-".to_owned());
        let k8s_only = run_single(ClusterKind::K8s, &profile, seed);
        t.row(vec![
            profile.key.to_string(),
            format!("{first:.3} s"),
            bg_ready
                .map(|b| format!("{b:.3} s"))
                .unwrap_or_else(|| "-".to_owned()),
            format!("{k8s_only:.3} s"),
            later_cluster,
        ]);
    }
    Figure::new(
        "hybrid",
        "Docker-first + Kubernetes-later hybrid (Section VII)",
        t,
    )
    .with_extra("\nFirst response arrives at Docker speed while Kubernetes deploys in the background; once its pod is ready, new clients are served by K8s.\n")
}

fn run_single(kind: ClusterKind, profile: &ServiceProfile, seed: u64) -> f64 {
    let mut tb = Testbed::new(TestbedConfig {
        cluster: kind,
        seed,
        ..TestbedConfig::default()
    });
    let addr = addr_of(profile, 0);
    tb.register_service(profile.clone(), addr);
    tb.pre_pull(addr);
    tb.pre_create(addr);
    tb.request_at(SimTime::from_secs(1), 0, addr);
    tb.run_until(SimTime::from_secs(60));
    tb.completed
        .first()
        .and_then(|c| c.timing.time_total())
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN)
}

/// On-demand deployment *with* vs *without* waiting (Figs. 3/5): when a
/// farther edge already runs the service, the without-waiting scheduler
/// answers the first request immediately from there while the nearby edge
/// deploys; with-waiting holds the first request until the nearby instance
/// is up.
pub fn waiting_comparison(seed: u64) -> Figure {
    let mut t = Table::new(&[
        "Service",
        "With waiting (first req)",
        "Without waiting (first req)",
        "Near edge ready (bg)",
    ]);
    for profile in ServiceSet::all() {
        let (with_wait, _) = first_request_under(&profile, "proximity", seed);
        let (without_wait, bg_ready) = first_request_under(&profile, "latency-aware", seed);
        t.row(vec![
            profile.key.to_string(),
            format!("{with_wait:.3} s"),
            format!("{without_wait:.3} s"),
            bg_ready
                .map(|b| format!("{b:.3} s"))
                .unwrap_or_else(|| "-".to_owned()),
        ]);
    }
    Figure::new(
        "waiting",
        "On-demand deployment with vs without waiting (first request)",
        t,
    )
}

/// First-request `time_total` under a given Global Scheduler, in a two-edge
/// scenario: the near edge is empty (images cached) and a *far* instance is
/// already running — emulated by the cloud hosting the service.
fn first_request_under(profile: &ServiceProfile, scheduler: &str, seed: u64) -> (f64, Option<f64>) {
    let mut tb = Testbed::new(TestbedConfig {
        cluster: ClusterKind::Docker,
        scheduler: scheduler.to_owned(),
        seed,
        ..TestbedConfig::default()
    });
    let addr = addr_of(profile, 0);
    tb.register_service(profile.clone(), addr);
    tb.pre_pull(addr);
    tb.pre_create(addr);
    let t0 = SimTime::from_secs(1);
    tb.request_at(t0, 0, addr);
    tb.run_until(SimTime::from_secs(60));
    let total = tb
        .completed
        .first()
        .and_then(|c| c.timing.time_total())
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);
    let bg = tb
        .controller
        .records
        .first()
        .and_then(|r| r.background_ready.or(r.phases.instance_ready))
        .map(|t| t.saturating_since(t0).as_secs_f64());
    (total, bg)
}

/// FlowMemory idle-timeout sweep (Section V): shorter timeouts scale idle
/// services down sooner but cause re-deployments; longer timeouts keep
/// instances warm at the cost of occupancy.
pub fn timeout_sweep(seed: u64) -> Figure {
    let profile = ServiceSet::by_key("asm").expect("asm profile");
    let trace = Trace::generate(
        TraceConfig {
            n_services: 8,
            n_requests: 240,
            min_per_service: 10,
            ..TraceConfig::default()
        },
        seed,
    );
    let mut t = Table::new(&[
        "Idle timeout [s]",
        "Deployments",
        "Memory hits",
        "Scale-downs",
        "Median first-req [s]",
    ]);
    for timeout_s in [5u64, 15, 30, 60, 120, 300] {
        let mut tb = Testbed::new(TestbedConfig {
            cluster: ClusterKind::Docker,
            seed,
            controller: ControllerConfig {
                memory_idle: Duration::from_secs(timeout_s),
                ..ControllerConfig::default()
            },
            ..TestbedConfig::default()
        });
        let mut addrs = Vec::new();
        for i in 0..trace.config.n_services {
            let addr = addr_of(&profile, i);
            tb.register_service(profile.clone(), addr);
            tb.pre_pull(addr);
            tb.pre_create(addr);
            addrs.push(addr);
        }
        for r in &trace.requests {
            tb.request_at(r.at + Duration::from_secs(1), r.client, addrs[r.service]);
        }
        tb.run_until(SimTime::from_secs(400));
        // A deployment = a record that actually issued a scale-up (several
        // concurrent requests may wait on one in-flight deployment).
        let deployments = tb
            .controller
            .records
            .iter()
            .filter(|r| r.phases.scale_up_at.is_some())
            .count();
        let hits = tb
            .controller
            .records
            .iter()
            .filter(|r| r.kind == RequestKind::MemoryHit)
            .count();
        let waited_totals: Vec<f64> = tb
            .completed
            .iter()
            .zip(tb.controller.records.iter())
            .filter(|(_, r)| r.kind == RequestKind::Waited)
            .filter_map(|(c, _)| c.timing.time_total())
            .map(|d| d.as_secs_f64())
            .collect();
        let med = Summary::new(waited_totals).median().unwrap_or(f64::NAN);
        // Scale-downs equal re-deployments beyond the initial ones.
        let scale_downs = deployments.saturating_sub(trace.config.n_services);
        t.row(vec![
            timeout_s.to_string(),
            deployments.to_string(),
            hits.to_string(),
            scale_downs.to_string(),
            format!("{med:.3}"),
        ]);
    }
    Figure::new(
        "timeout-sweep",
        "FlowMemory idle-timeout sweep: re-deployments vs memory hits",
        t,
    )
}

/// Proactive deployment (Sections I/VII): the paper argues on-demand
/// deployment is the safety net for imperfect prediction; this ablation
/// quantifies the trade-off. The trace is replayed with an aggressive idle
/// timeout (services scale down between bursts), under different predictors:
/// cold dispatches ("waited") drop as prediction improves, at the cost of
/// proactive deployments.
pub fn proactive(seed: u64) -> Figure {
    let profile = ServiceSet::by_key("nginx").expect("nginx profile");
    let trace = Trace::generate(
        TraceConfig {
            n_services: 12,
            n_requests: 420,
            min_per_service: 12,
            ..TraceConfig::default()
        },
        seed,
    );
    let mut t = Table::new(&[
        "Predictor",
        "Cold (waited) requests",
        "Proactive deployments",
        "Median time_total [s]",
        "p90 time_total [s]",
    ]);
    for predictor in ["none", "recency", "frequency", "markov"] {
        let mut tb = Testbed::new(TestbedConfig {
            cluster: ClusterKind::Docker,
            seed,
            predictor: predictor.to_owned(),
            controller: ControllerConfig {
                memory_idle: Duration::from_secs(20),
                ..ControllerConfig::default()
            },
            ..TestbedConfig::default()
        });
        let mut addrs = Vec::new();
        for i in 0..trace.config.n_services {
            let addr = addr_of(&profile, i);
            tb.register_service(profile.clone(), addr);
            tb.pre_pull(addr);
            tb.pre_create(addr);
            addrs.push(addr);
        }
        for r in &trace.requests {
            tb.request_at(r.at + Duration::from_secs(1), r.client, addrs[r.service]);
        }
        tb.run_until(SimTime::from_secs(400));
        let waited = tb
            .controller
            .records
            .iter()
            .filter(|r| r.kind == RequestKind::Waited)
            .count();
        let totals: Vec<f64> = tb
            .completed
            .iter()
            .filter_map(|c| c.timing.time_total())
            .map(|d| d.as_secs_f64())
            .collect();
        let s = Summary::new(totals);
        t.row(vec![
            predictor.to_string(),
            waited.to_string(),
            tb.proactive_deployments.to_string(),
            format!("{:.4}", s.median().unwrap_or(f64::NAN)),
            format!("{:.4}", s.percentile(90.0).unwrap_or(f64::NAN)),
        ]);
    }
    Figure::new(
        "proactive",
        "Proactive deployment: prediction quality vs cold requests",
        t,
    )
    .with_extra("\nPrediction keeps services warm across idle gaps: cold (held) requests fall, paid for in proactive deployments. On-demand deployment absorbs every miss.\n")
}

/// The Local Scheduler ablation (Section IV-B, Fig. 6): on a multi-worker
/// Kubernetes edge cluster, the pluggable `schedulerName` decides placement —
/// and since image caches are per node, placement decides who pulls. The
/// default spreading scheduler distributes load but multiplies cold pulls;
/// the packing scheduler reuses one node's cache and leaves the others free.
pub fn local_scheduler(seed: u64) -> Figure {
    use containerd::ContainerdNode;
    use k8ssim::objects::{PodContainer, PodTemplate};
    use k8ssim::{ClusterEvent, K8sCluster, PackFirstScheduler};
    use registry::image::catalog;

    let mut t = Table::new(&[
        "Local scheduler",
        "Nodes used",
        "Cold pulls",
        "Bytes pulled",
        "Median pod-ready [s]",
    ]);
    for (label, scheduler_name) in [
        ("default (spread)", None::<&str>),
        ("edge-pack-scheduler", Some("edge-pack-scheduler")),
    ] {
        let mut rng = SimRng::new(seed ^ 0x10c);
        let mut c = K8sCluster::with_defaults();
        c.add_worker("pi-01", ContainerdNode::with_defaults(), 30);
        c.add_worker("pi-02", ContainerdNode::with_defaults(), 30);
        c.register_scheduler(Box::<PackFirstScheduler>::default());

        let mut ready_latencies = Vec::new();
        let mut nodes_used = std::collections::BTreeSet::new();
        for i in 0..9u64 {
            let name = format!("svc-{i}");
            let sel: std::collections::BTreeMap<String, String> =
                [("app".to_string(), name.clone())].into();
            let dep = k8ssim::Deployment {
                name: name.clone(),
                labels: sel.clone(),
                replicas: 1,
                selector: sel.clone(),
                template: PodTemplate {
                    labels: sel.clone(),
                    containers: vec![PodContainer {
                        spec: containerd::ContainerSpec::new(
                            "nginx",
                            registry::ImageRef::parse("nginx:1.23.2"),
                            Some(80),
                        ),
                        manifest: catalog::nginx(),
                        ready: desim::LogNormal::from_median(0.045, 0.2),
                    }],
                },
                scheduler_name: scheduler_name.map(str::to_owned),
            };
            let svc = k8ssim::Service {
                name: name.clone(),
                selector: sel,
                port: 80,
                target_port: 80,
                protocol: "TCP".into(),
            };
            let t0 = SimTime::from_secs(i * 30);
            c.apply(dep, svc, t0, &mut rng);
            for e in c.settle(&mut rng) {
                match e {
                    ClusterEvent::PodScheduled { node, .. } => {
                        nodes_used.insert(node);
                    }
                    ClusterEvent::PodReady { at, .. } => {
                        ready_latencies.push(at.saturating_since(t0).as_secs_f64());
                    }
                    _ => {}
                }
            }
        }
        let bytes: u64 = c.workers().iter().map(|w| w.node.store().disk_usage()).sum();
        let cold_pulls = c
            .workers()
            .iter()
            .filter(|w| w.node.store().has_image(&catalog::nginx()))
            .count();
        let med = Summary::new(ready_latencies).median().unwrap_or(f64::NAN);
        t.row(vec![
            label.to_string(),
            nodes_used.len().to_string(),
            cold_pulls.to_string(),
            format!("{} MiB", bytes / (1024 * 1024)),
            format!("{med:.3}"),
        ]);
    }
    Figure::new(
        "local-scheduler",
        "Local Scheduler ablation: placement decides per-node pulls",
        t,
    )
}

/// The hierarchical-edge scenario (Section IV-A-2): "a 'non-optimal'
/// (further away, but on the route to the cloud) edge cluster is much more
/// likely to have the requested service cached or even running already."
/// With a far edge running the service, the without-waiting first request is
/// answered from there (milliseconds) instead of the cloud (tens of ms) or
/// a held deployment (hundreds of ms) — while the near edge warms up.
pub fn hierarchy(seed: u64) -> Figure {
    let mut t = Table::new(&[
        "Service",
        "First req via far edge",
        "First req via cloud (no far edge)",
        "First req held (with waiting)",
        "Steady state (near edge)",
    ]);
    for profile in ServiceSet::all() {
        let far = hierarchy_run(&profile, true, "latency-aware", seed);
        let cloud = hierarchy_run(&profile, false, "latency-aware", seed);
        let held = hierarchy_run(&profile, false, "proximity", seed);
        t.row(vec![
            profile.key.to_string(),
            format!("{:.4} s", far.0),
            format!("{:.4} s", cloud.0),
            format!("{:.4} s", held.0),
            format!("{:.4} s", far.1),
        ]);
    }
    Figure::new(
        "hierarchy",
        "Hierarchical edges: a farther cluster already running the service",
        t,
    )
    .with_extra("\nThe far edge answers the first request ~an order of magnitude faster than the cloud and without any deployment hold; future requests move to the near edge once it is up.\n")
}

/// Returns `(first request total, steady-state total)` for one scenario.
fn hierarchy_run(
    profile: &ServiceProfile,
    far_edge: bool,
    scheduler: &str,
    seed: u64,
) -> (f64, f64) {
    let mut tb = Testbed::new(TestbedConfig {
        cluster: ClusterKind::Docker,
        scheduler: scheduler.to_owned(),
        far_edge,
        seed,
        ..TestbedConfig::default()
    });
    let addr = addr_of(profile, 0);
    tb.register_service(profile.clone(), addr);
    tb.pre_pull(addr);
    tb.pre_create(addr);
    if far_edge {
        tb.pre_deploy_on(addr, 1);
    }
    // Setup (including the far edge's own cold pull) finishes well before
    // t = 10 s; the steady-state probe runs after the background deployment.
    tb.request_at(SimTime::from_secs(10), 0, addr);
    tb.request_at(SimTime::from_secs(40), 1, addr);
    tb.run_until(SimTime::from_secs(90));
    let total_of = |client: usize| {
        tb.completed
            .iter()
            .find(|c| c.client == client)
            .and_then(|c| c.timing.time_total())
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    (total_of(0), total_of(1))
}

// ---------------------------------------------------------------------------
// Chaos: the hardened deployment pipeline under fault injection
// ---------------------------------------------------------------------------

/// Per-cluster aggregates of one chaos replay.
#[derive(Clone, Copy, Debug, Default)]
struct ChaosRun {
    requests: u64,
    completed: u64,
    waited: u64,
    memory_hits: u64,
    fallbacks: u64,
    pull_retries: u64,
    create_retries: u64,
    scale_up_retries: u64,
    coalesced: u64,
    resets: u64,
}

fn chaos_run(
    kind: ClusterKind,
    fault_rate: f64,
    smoke: bool,
    seed: u64,
    telemetry: bool,
) -> (ChaosRun, Option<(SpanLog, MetricsRegistry)>) {
    let trace_cfg = if smoke {
        TraceConfig::chaos_smoke()
    } else {
        TraceConfig::chaos()
    };
    let trace = Trace::generate(trace_cfg.clone(), seed);
    let profile = ServiceSet::by_key("asm").expect("asm profile");
    let mut tb = Testbed::new(TestbedConfig {
        cluster: kind,
        seed,
        telemetry,
        faults: desim::FaultPlan::uniform(fault_rate, seed ^ 0xC4A0_5EED),
        controller: ControllerConfig {
            // Aggressive idle timeout: services cycle down and redeploy,
            // giving every fault site repeated chances to fire.
            memory_idle: Duration::from_secs(30),
            ..ControllerConfig::default()
        },
        ..TestbedConfig::default()
    });
    let mut addrs = Vec::with_capacity(trace_cfg.n_services);
    for i in 0..trace_cfg.n_services {
        let addr = addr_of(&profile, i);
        tb.register_service(profile.clone(), addr);
        // Deliberately no pre-pull: cold pulls keep the Pull phase (and its
        // faults) on the critical path.
        addrs.push(addr);
    }
    for r in &trace.requests {
        tb.request_at(r.at + Duration::from_secs(1), r.client, addrs[r.service]);
    }
    tb.run_until(SimTime::ZERO + trace_cfg.duration + Duration::from_secs(120));

    let mut run = ChaosRun {
        requests: tb.controller.records.len() as u64,
        completed: tb.completed.len() as u64,
        coalesced: tb.controller.coalesced_count(),
        resets: tb.resets,
        ..ChaosRun::default()
    };
    for r in &tb.controller.records {
        match r.kind {
            RequestKind::Waited => run.waited += 1,
            RequestKind::MemoryHit => run.memory_hits += 1,
            RequestKind::FallbackCloud => run.fallbacks += 1,
            _ => {}
        }
        run.pull_retries += u64::from(r.phases.pull_retries);
        run.create_retries += u64::from(r.phases.create_retries);
        run.scale_up_retries += u64::from(r.phases.scale_up_retries);
    }
    let tele = telemetry.then(|| {
        let metrics = tb.telemetry_snapshot();
        let log = std::mem::take(&mut tb.controller.telemetry)
            .into_span_log()
            .expect("recording tracer keeps a log");
        (log, metrics)
    });
    (run, tele)
}

/// The chaos experiment (deployment-pipeline hardening): replays a bursty
/// trace on both cluster kinds while a seedable [`desim::FaultPlan`] injects
/// failures into every deployment phase at `fault_rate`. Failed phases are
/// retried with exponential backoff under a deadline; deployments that
/// exhaust their budget release held requests toward the cloud. The figure
/// reports per-phase retry totals and the cloud-fallback rate, plus a
/// machine-readable `chaos-summary` line for CI. Deterministic per seed.
pub fn chaos(seed: u64, fault_rate: f64, smoke: bool) -> Figure {
    chaos_impl(seed, fault_rate, smoke, false).0
}

/// The chaos experiment with telemetry recording on: the exact same
/// deterministic figure as [`chaos`] (recording is observation only), plus
/// the merged span log of both testbed runs (span names prefixed
/// `docker/` and `k8s/`, Kubernetes request ids offset past Docker's) and
/// the combined metrics snapshot with a derived `fallback_cloud_rate`
/// gauge.
pub fn chaos_traced(seed: u64, fault_rate: f64, smoke: bool) -> (Figure, SpanLog, MetricsRegistry) {
    let (fig, tele) = chaos_impl(seed, fault_rate, smoke, true);
    let (log, metrics) = tele.expect("telemetry recorded");
    (fig, log, metrics)
}

fn chaos_impl(
    seed: u64,
    fault_rate: f64,
    smoke: bool,
    telemetry: bool,
) -> (Figure, Option<(SpanLog, MetricsRegistry)>) {
    let mut t = Table::new(&[
        "Cluster",
        "Requests",
        "Completed",
        "Waited",
        "Memory hits",
        "Fallbacks",
        "Retries (pull/create/scale-up)",
        "Coalesced",
        "Resets",
    ]);
    let mut total = ChaosRun::default();
    let mut merged_log = SpanLog::new();
    let mut merged_metrics = MetricsRegistry::new();
    let mut request_offset = 0u64;
    for kind in [ClusterKind::Docker, ClusterKind::K8s] {
        let (run, tele) = chaos_run(kind, fault_rate, smoke, seed, telemetry);
        if let Some((log, metrics)) = tele {
            let label = match kind {
                ClusterKind::Docker => "docker",
                ClusterKind::K8s => "k8s",
            };
            merged_log.absorb(&log, label, request_offset);
            merged_metrics.merge(&metrics);
            request_offset += run.requests;
        }
        t.row(vec![
            kind.label().to_string(),
            run.requests.to_string(),
            run.completed.to_string(),
            run.waited.to_string(),
            run.memory_hits.to_string(),
            run.fallbacks.to_string(),
            format!(
                "{}/{}/{}",
                run.pull_retries, run.create_retries, run.scale_up_retries
            ),
            run.coalesced.to_string(),
            run.resets.to_string(),
        ]);
        total.requests += run.requests;
        total.completed += run.completed;
        total.waited += run.waited;
        total.memory_hits += run.memory_hits;
        total.fallbacks += run.fallbacks;
        total.pull_retries += run.pull_retries;
        total.create_retries += run.create_retries;
        total.scale_up_retries += run.scale_up_retries;
        total.coalesced += run.coalesced;
        total.resets += run.resets;
    }
    let total_retries = total.pull_retries + total.create_retries + total.scale_up_retries;
    let fallback_rate = if total.requests > 0 {
        total.fallbacks as f64 / total.requests as f64
    } else {
        0.0
    };
    let summary = format!(
        "\nchaos-summary {{\"seed\":{seed},\"faultRate\":{fault_rate},\"smoke\":{smoke},\
\"requests\":{},\"completed\":{},\"fallbacks\":{},\"fallbackRate\":{fallback_rate:.4},\
\"retries\":{{\"pull\":{},\"create\":{},\"scaleUp\":{}}},\"totalRetries\":{total_retries},\
\"coalesced\":{},\"resets\":{},\"panics\":0}}\n",
        total.requests,
        total.completed,
        total.fallbacks,
        total.pull_retries,
        total.create_retries,
        total.scale_up_retries,
        total.coalesced,
        total.resets,
    );
    let fig = Figure::new(
        "chaos",
        format!(
            "Deployment pipeline under fault injection (rate {fault_rate}, {} trace)",
            if smoke { "smoke" } else { "full" }
        ),
        t,
    )
    .with_extra(&summary);
    if !telemetry {
        return (fig, None);
    }
    if merged_metrics.counter("requests_total") > 0 {
        merged_metrics.set_gauge(
            "fallback_cloud_rate",
            merged_metrics.counter("requests_fallback_cloud") as f64
                / merged_metrics.counter("requests_total") as f64,
        );
    }
    (fig, Some((merged_log, merged_metrics)))
}

// ---------------------------------------------------------------------------
// Mobility: multi-gNB ingress, user mobility, transparent handover
// ---------------------------------------------------------------------------

/// Aggregates of one mobility run (one policy). Also consumed by the
/// `bench` crate to emit `BENCH_mobility.json`.
#[derive(Clone, Debug, Default)]
pub struct MobilityStats {
    /// Inter-gNB handovers performed.
    pub handovers: u64,
    /// FlowMemory entries migrated across all handovers.
    pub flows_migrated: u64,
    /// Sessions re-placed through the Global Scheduler.
    pub redispatched: u64,
    /// Control-plane interruption per handover, seconds.
    pub interruptions: Vec<f64>,
    /// Pings sent across all sessions.
    pub pings_sent: u64,
    /// Pings answered across all sessions.
    pub pings_done: u64,
    /// Frames dropped by the data plane.
    pub drops: u64,
    /// Responses arriving with no ping outstanding.
    pub double_answered: u64,
    /// RST replies seen by clients.
    pub resets: u64,
    /// Frames reaching a client with a non-cloud source address.
    pub transparency_violations: u64,
}

/// One mobility run's aggregates for `policy` (no telemetry recording) —
/// the building block behind [`mobility`], exposed for the bench harness.
pub fn mobility_stats(policy: edgectl::HandoverPolicy, seed: u64, smoke: bool) -> MobilityStats {
    mobility_run(policy, smoke, seed, false).0
}

fn mobility_run(
    policy: edgectl::HandoverPolicy,
    smoke: bool,
    seed: u64,
    telemetry: bool,
) -> (MobilityStats, Option<(SpanLog, MetricsRegistry)>) {
    use crate::mobility_run::{MobilityConfig, MobilityTestbed};
    let (n_gnbs, n_clients, secs) = if smoke { (3, 4, 20) } else { (4, 12, 60) };
    let mut tb = MobilityTestbed::new(MobilityConfig {
        n_gnbs,
        n_clients,
        policy,
        telemetry,
        seed,
        ..MobilityConfig::default()
    });
    let profile = ServiceSet::by_key("asm").expect("asm profile");
    tb.register_service(profile, ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80));
    // Images cached and containers created in every zone (a redispatch pays
    // only the on-demand scale-up); instances *run* only where clients
    // start, so moving onto a cold zone exercises the deployment pipeline.
    tb.warm_all_zones();
    // Vehicular mobility across a one-dimensional strip of small cells: one
    // grid cell per gNB, crossings every few seconds.
    let grid = mobility::CellGrid::new(n_gnbs as u32, 1, 120.0);
    let mut model =
        mobility::RandomWaypoint::new(grid, n_clients, seed ^ 0x6d6f_7665).with_speed(30.0, 50.0);
    let mut seeded: Vec<usize> = (0..n_clients)
        .map(|c| mobility::MobilityModel::initial_cell(&model, c) % n_gnbs)
        .collect();
    seeded.sort_unstable();
    seeded.dedup();
    for z in seeded {
        tb.pre_deploy_on(z);
    }
    tb.run(
        &mut model,
        SimTime::from_secs(1),
        SimTime::from_secs(secs),
    );
    let mut run = MobilityStats {
        handovers: tb.handovers.len() as u64,
        pings_sent: tb.pings_sent(),
        pings_done: tb.pings_done(),
        drops: tb.drops,
        double_answered: tb.double_answered,
        resets: tb.resets,
        transparency_violations: tb.transparency_violations,
        ..MobilityStats::default()
    };
    for h in &tb.handovers {
        run.flows_migrated += h.flows_migrated as u64;
        run.redispatched += h.redispatched as u64;
        run.interruptions.push(h.interruption().as_secs_f64());
    }
    let tele = telemetry.then(|| {
        let metrics = tb.telemetry_snapshot();
        let log = std::mem::take(&mut tb.controller.telemetry)
            .into_span_log()
            .expect("recording tracer keeps a log");
        (log, metrics)
    });
    (run, tele)
}

fn fmt_pcts(interruptions: &[f64]) -> String {
    if interruptions.is_empty() {
        return "-".to_owned();
    }
    let s = Summary::new(interruptions.to_vec());
    format!(
        "{:.1}/{:.1}/{:.1}",
        s.percentile(50.0).unwrap_or(0.0) * 1e3,
        s.percentile(95.0).unwrap_or(0.0) * 1e3,
        s.percentile(99.0).unwrap_or(0.0) * 1e3,
    )
}

/// The mobility experiment: user mobility across a multi-gNB RAN with
/// transparent flow handover, comparing the **anchored** policy (sessions
/// stay on their old zone's instance, reached across the metro link) against
/// **re-dispatch** (sessions are re-placed through the Global Scheduler onto
/// the new nearest edge, re-using the on-demand deployment pipeline).
/// Reports handover counts and control-plane interruption percentiles, plus
/// the session-continuity invariants (no ping dropped or double-answered,
/// transparency preserved). Deterministic per seed; ends with a
/// machine-readable `mobility-summary` line for CI.
pub fn mobility(seed: u64, smoke: bool) -> Figure {
    mobility_impl(seed, smoke, false).0
}

/// [`mobility`] with telemetry recording on: the same deterministic figure,
/// plus the merged span log (anchored run prefixed `anchored/`, re-dispatch
/// `redispatch/`) and combined metrics snapshot.
pub fn mobility_traced(seed: u64, smoke: bool) -> (Figure, SpanLog, MetricsRegistry) {
    let (fig, tele) = mobility_impl(seed, smoke, true);
    let (log, metrics) = tele.expect("telemetry recorded");
    (fig, log, metrics)
}

fn mobility_impl(
    seed: u64,
    smoke: bool,
    telemetry: bool,
) -> (Figure, Option<(SpanLog, MetricsRegistry)>) {
    let mut t = Table::new(&[
        "Policy",
        "Handovers",
        "Flows migrated",
        "Redispatched",
        "Interruption p50/p95/p99 [ms]",
        "Pings",
        "Answered",
        "Drops",
    ]);
    let mut merged_log = SpanLog::new();
    let mut merged_metrics = MetricsRegistry::new();
    let mut request_offset = 0u64;
    let mut total_handovers = 0u64;
    let mut total_migrated = 0u64;
    let mut dropped_flows = 0u64;
    let mut double_answered = 0u64;
    let mut resets = 0u64;
    let mut violations = 0u64;
    let mut all_interruptions = Vec::new();
    for policy in [
        edgectl::HandoverPolicy::Anchored,
        edgectl::HandoverPolicy::Redispatch,
    ] {
        let (run, tele) = mobility_run(policy, smoke, seed, telemetry);
        if let Some((log, metrics)) = tele {
            merged_log.absorb(&log, policy.label(), request_offset);
            merged_metrics.merge(&metrics);
            request_offset += run.pings_sent + run.handovers + 8;
        }
        // The continuity invariants hold per policy, not just in aggregate.
        assert_eq!(
            run.pings_sent, run.pings_done,
            "{}: every ping answered across handovers",
            policy.label()
        );
        assert_eq!(run.double_answered, 0, "{}: no duplicates", policy.label());
        t.row(vec![
            policy.label().to_string(),
            run.handovers.to_string(),
            run.flows_migrated.to_string(),
            run.redispatched.to_string(),
            fmt_pcts(&run.interruptions),
            run.pings_sent.to_string(),
            run.pings_done.to_string(),
            run.drops.to_string(),
        ]);
        total_handovers += run.handovers;
        total_migrated += run.flows_migrated;
        dropped_flows += run.pings_sent - run.pings_done + run.drops;
        double_answered += run.double_answered;
        resets += run.resets;
        violations += run.transparency_violations;
        all_interruptions.extend(run.interruptions);
    }
    let summary = format!(
        "\nmobility-summary {{\"seed\":{seed},\"smoke\":{smoke},\"handovers\":{total_handovers},\
\"flowsMigrated\":{total_migrated},\"droppedFlows\":{dropped_flows},\
\"doubleAnswered\":{double_answered},\"resets\":{resets},\
\"transparencyViolations\":{violations},\"panics\":0}}\n",
    );
    let fig = Figure::new(
        "mobility",
        format!(
            "Session continuity under user mobility: anchored vs re-dispatch ({} trace)",
            if smoke { "smoke" } else { "full" }
        ),
        t,
    )
    .with_extra(&summary);
    if !telemetry {
        return (fig, None);
    }
    if !all_interruptions.is_empty() {
        let s = Summary::new(all_interruptions);
        merged_metrics.set_gauge(
            "handover_interruption_p99_ms",
            s.percentile(99.0).unwrap_or(0.0) * 1e3,
        );
    }
    (fig, Some((merged_log, merged_metrics)))
}

// ---------------------------------------------------------------------------
// Live migration: the service follows the user
// ---------------------------------------------------------------------------

/// Aggregates of one migration run (one arm). Also consumed by the `bench`
/// crate to emit `BENCH_migrate.json`.
#[derive(Clone, Debug, Default)]
pub struct MigrationStats {
    /// Inter-gNB handovers performed.
    pub handovers: u64,
    /// Live migrations completed.
    pub migrations: u64,
    /// Migrations abandoned (source retired mid-transfer).
    pub migrations_aborted: u64,
    /// Session-state bytes shipped zone-to-zone.
    pub state_bytes_transferred: u64,
    /// Redirect flows flipped make-before-break.
    pub flows_flipped: u64,
    /// Client-visible interruption per move, seconds: every handover flip
    /// plus (on the live arm) every migration flip.
    pub interruptions: Vec<f64>,
    /// Background state-transfer time per migration, seconds — the source
    /// keeps serving throughout, so this is cost, not interruption.
    pub transfers: Vec<f64>,
    /// Pings sent across all sessions.
    pub pings_sent: u64,
    /// Pings answered across all sessions.
    pub pings_done: u64,
    /// Frames dropped by the data plane.
    pub drops: u64,
    /// Frames reaching a client with a non-cloud source address.
    pub transparency_violations: u64,
}

/// One migration run's aggregates — the building block behind the bench
/// crate's `BENCH_migrate.json`. The **live** arm anchors handovers and lets
/// `edgectl::migrate` chase the client with snapshot + transfer + flip; the
/// **cold** arm is the PR 4 re-dispatch baseline (state lost, sessions
/// re-placed through the Global Scheduler). Same scenario constants as
/// [`mobility_stats`], so the two compose into one comparison table.
///
/// Both arms ship the same session state over the same metro link — the
/// difference is *where* the cost lands. Live snapshots in the background
/// while the source keeps serving, so the client only sees the flip. Cold
/// loses the state on re-dispatch: before the replacement instance can
/// answer, it must re-fetch an equivalent snapshot from the old zone, and
/// that fetch sits squarely in the client-visible path — one propagation
/// round even at state zero, plus serialization of everything the session
/// accrued so far (`state_bytes_per_request` × requests served, estimated
/// from the session's age at the hop and the ping cadence).
pub fn migration_stats(
    live: bool,
    state_bytes_per_request: u64,
    seed: u64,
    smoke: bool,
) -> MigrationStats {
    use crate::mobility_run::{MobilityConfig, MobilityTestbed};
    let (n_gnbs, n_clients, secs) = if smoke { (3, 4, 20) } else { (4, 12, 60) };
    let mut controller = edgectl::ControllerConfig::default();
    let policy = if live {
        controller.migration = edgectl::MigrationConfig {
            policy: edgectl::MigrationPolicy::Live,
            state_bytes_per_request,
            // A metro link slow enough that the swept state sizes produce
            // visibly linear transfer cost (the default 10 Gbps ships even
            // megabytes in microseconds).
            transfer_bandwidth_bps: 200_000_000,
            ..edgectl::MigrationConfig::default()
        };
        edgectl::HandoverPolicy::Anchored
    } else {
        edgectl::HandoverPolicy::Redispatch
    };
    let mut tb = MobilityTestbed::new(MobilityConfig {
        n_gnbs,
        n_clients,
        policy,
        seed,
        controller,
        ..MobilityConfig::default()
    });
    let profile = ServiceSet::by_key("asm").expect("asm profile");
    tb.register_service(profile, ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80));
    tb.warm_all_zones();
    let grid = mobility::CellGrid::new(n_gnbs as u32, 1, 120.0);
    let mut model =
        mobility::RandomWaypoint::new(grid, n_clients, seed ^ 0x6d6f_7665).with_speed(30.0, 50.0);
    let mut seeded: Vec<usize> = (0..n_clients)
        .map(|c| mobility::MobilityModel::initial_cell(&model, c) % n_gnbs)
        .collect();
    seeded.sort_unstable();
    seeded.dedup();
    for z in seeded {
        tb.pre_deploy_on(z);
    }
    tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(secs));
    // Let in-flight transfers reach their flip before reading the records.
    tb.drain(SimTime::from_secs(secs) + Duration::from_secs(10));
    let mut run = MigrationStats {
        handovers: tb.handovers.len() as u64,
        migrations: tb.controller.migrate.records.len() as u64,
        migrations_aborted: tb.controller.migrate.aborted,
        pings_sent: tb.pings_sent(),
        pings_done: tb.pings_done(),
        drops: tb.drops,
        transparency_violations: tb.transparency_violations,
        ..MigrationStats::default()
    };
    // The cold arm's state-rebuild cost model: same per-request state and
    // metro bandwidth as the live arm, so the comparison isolates *where*
    // the transfer happens, not how much is transferred.
    let rebuild = edgectl::MigrationConfig {
        state_bytes_per_request,
        transfer_bandwidth_bps: 200_000_000,
        ..edgectl::MigrationConfig::default()
    };
    let session_start = SimTime::from_secs(1);
    let ping_interval = MobilityConfig::default().ping_interval;
    for h in &tb.handovers {
        let mut interruption = h.interruption().as_secs_f64();
        if !live && h.redispatched > 0 {
            let requests =
                h.at.saturating_since(session_start).as_nanos() / ping_interval.as_nanos();
            let lost = state_bytes_per_request * requests;
            run.state_bytes_transferred += lost;
            interruption += rebuild.transfer_time(lost).as_secs_f64();
        }
        run.interruptions.push(interruption);
    }
    for r in &tb.controller.migrate.records {
        run.state_bytes_transferred += r.state_bytes;
        run.flows_flipped += r.flows_flipped as u64;
        run.interruptions.push(r.interruption().as_secs_f64());
        run.transfers.push(r.transfer_time().as_secs_f64());
    }
    run
}

// ---------------------------------------------------------------------------
// Runtime chaos: the self-healing control plane
// ---------------------------------------------------------------------------

/// Aggregates of one runtime-chaos run (one policy). Also consumed by the
/// `bench` crate to emit `BENCH_recovery.json`.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Inter-gNB handovers performed (chaos composes with mobility).
    pub handovers: u64,
    /// Pings sent across all sessions.
    pub pings_sent: u64,
    /// Pings answered across all sessions.
    pub pings_done: u64,
    /// Client retransmissions (lost SYNs and pings resent).
    pub retransmits: u64,
    /// Ready instances killed mid-run.
    pub instance_crashes: u64,
    /// Whole-zone outage windows injected.
    pub zone_outages: u64,
    /// Switch↔controller channel drops injected.
    pub channel_losses: u64,
    /// Control messages lost to a down channel.
    pub ctrl_dropped: u64,
    /// Responses arriving with no ping outstanding (a retransmitted ping
    /// answered twice — expected under loss, must stay small).
    pub double_answered: u64,
    /// Sessions permanently stranded after the drain window (must be 0).
    pub stranded: u64,
    /// Fix messages issued by the final switch-table reconciliation pass.
    pub reconcile_fixes: u64,
    /// Fix messages the *second* pass still wanted (must be 0: the tables
    /// diff clean against the controller's bookkeeping).
    pub reconcile_residual: u64,
}

/// One recovery run's aggregates for `policy` — the building block behind
/// [`recovery`], exposed for the bench harness.
pub fn recovery_stats(
    policy: edgectl::HandoverPolicy,
    seed: u64,
    fault_rate: f64,
    smoke: bool,
) -> RecoveryStats {
    recovery_run(policy, fault_rate, smoke, seed, false).0
}

fn recovery_run(
    policy: edgectl::HandoverPolicy,
    fault_rate: f64,
    smoke: bool,
    seed: u64,
    telemetry: bool,
) -> (RecoveryStats, Option<(SpanLog, MetricsRegistry)>) {
    use crate::mobility_run::{MobilityConfig, MobilityTestbed};
    // Identical scenario constants to `mobility_run`: at fault rate 0 the
    // two runs are the same simulation, which is exactly the determinism
    // guarantee the tests pin down.
    let (n_gnbs, n_clients, secs) = if smoke { (3, 4, 20) } else { (4, 12, 60) };
    let mut tb = MobilityTestbed::new(MobilityConfig {
        n_gnbs,
        n_clients,
        policy,
        telemetry,
        seed,
        faults: desim::FaultPlan::runtime(fault_rate, seed ^ 0x5E1F_4EA1),
        retransmit: Some(Duration::from_secs(1)),
        ..MobilityConfig::default()
    });
    let profile = ServiceSet::by_key("asm").expect("asm profile");
    tb.register_service(profile, ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80));
    tb.warm_all_zones();
    let grid = mobility::CellGrid::new(n_gnbs as u32, 1, 120.0);
    let mut model =
        mobility::RandomWaypoint::new(grid, n_clients, seed ^ 0x6d6f_7665).with_speed(30.0, 50.0);
    let mut seeded: Vec<usize> = (0..n_clients)
        .map(|c| mobility::MobilityModel::initial_cell(&model, c) % n_gnbs)
        .collect();
    seeded.sort_unstable();
    seeded.dedup();
    for z in seeded {
        tb.pre_deploy_on(z);
    }
    tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(secs));
    // Let recovery settle: the longest channel-reconnect window plus
    // detection, redeployment, and a client retransmit all fit in 15 s.
    tb.drain(SimTime::from_secs(secs) + Duration::from_secs(15));
    let reconcile_fixes = tb.reconcile_now() as u64;
    let reconcile_residual = tb.reconcile_now() as u64;
    let run = RecoveryStats {
        handovers: tb.handovers.len() as u64,
        pings_sent: tb.pings_sent(),
        pings_done: tb.pings_done(),
        retransmits: tb.retransmits,
        instance_crashes: tb.instance_crashes,
        zone_outages: tb.zone_outages,
        channel_losses: tb.channel_losses,
        ctrl_dropped: tb.ctrl_dropped,
        double_answered: tb.double_answered,
        stranded: tb.stranded(),
        reconcile_fixes,
        reconcile_residual,
    };
    let tele = telemetry.then(|| {
        let metrics = tb.telemetry_snapshot();
        let log = std::mem::take(&mut tb.controller.telemetry)
            .into_span_log()
            .expect("recording tracer keeps a log");
        (log, metrics)
    });
    (run, tele)
}

// ---------------------------------------------------------------------------
// Controller crash-recovery (HA): warm journal replay vs cold restart
// ---------------------------------------------------------------------------

/// Aggregates of one controller-crash run (one restart mode). Consumed by
/// the `bench` crate to emit `BENCH_ha.json`.
#[derive(Clone, Debug, Default)]
pub struct HaStats {
    /// Client sessions driven (the recoverable-state-size knob).
    pub sessions: u64,
    /// Inter-gNB handovers the controller heard about.
    pub handovers: u64,
    /// Attachment changes that happened during the blackout — physical
    /// moves the controller only learns of from post-restart traffic.
    pub missed_handovers: u64,
    /// Pings sent across all sessions.
    pub pings_sent: u64,
    /// Pings answered across all sessions.
    pub pings_done: u64,
    /// Client retransmissions (lost SYNs and pings resent).
    pub retransmits: u64,
    /// Control messages lost while the controller was dead (unanswered
    /// packet-ins, dropped flow-removed notifications).
    pub ctrl_dropped: u64,
    /// Control-plane blackout: crash instant → restart instant.
    pub blackout_secs: f64,
    /// Per-session recovery times: first ping completed after the restart,
    /// relative to the restart instant. Sessions carried straight through
    /// by installed switch rules score near zero — data-plane continuity.
    pub recovery_secs: Vec<f64>,
    /// Journal tail events replayed on restart (0 for cold).
    pub replayed_events: u64,
    /// Entries restored from the compacted snapshot (0 for cold).
    pub snapshot_entries: u64,
    /// Wall-clock nanoseconds the journal rebuild took (throughput only;
    /// not simulated time, not deterministic across machines).
    pub replay_wall_ns: u64,
    /// Events the journal appended over the whole run (state-mutation
    /// volume — the work a cold restart throws away).
    pub journal_appended: u64,
    /// Compactions the journal performed.
    pub snapshots_taken: u64,
    /// In-flight migrations the restart had to abort.
    pub aborted_migrations: u64,
    /// Sessions permanently stranded after the drain window (must be 0).
    pub stranded: u64,
    /// Flow mods the restart-time reconcile issued. Warm restarts find the
    /// tables already matching the replayed state (≈0); cold restarts tear
    /// down every surviving rule, scaling with state size.
    pub restart_fixes: u64,
    /// Fix messages issued by the final reconciliation pass.
    pub reconcile_fixes: u64,
    /// Fix messages the second pass still wanted (must be 0).
    pub reconcile_residual: u64,
}

/// One controller-crash run: the mobility scenario with the write-ahead
/// journal recording, a `controller_crash` fault at the given rate, and the
/// chosen restart mode. During the blackout switches keep forwarding on
/// installed rules while packet-ins go unanswered; on restart the controller
/// recovers (warm: snapshot + tail replay; cold: empty state), reconciles
/// every switch table, and aborts whatever migrations were pinned in flight.
/// `n_clients` scales the recoverable state. Deterministic per seed except
/// `replay_wall_ns`. Identical fault seeds give warm and cold the *same*
/// blackout window, so the two modes race the same crash.
pub fn ha_stats(
    mode: edgectl::RecoveryMode,
    n_clients: usize,
    seed: u64,
    crash_rate: f64,
    smoke: bool,
) -> HaStats {
    use crate::mobility_run::{MobilityConfig, MobilityTestbed};
    let (n_gnbs, secs) = if smoke { (3, 20) } else { (4, 60) };
    let controller = edgectl::ControllerConfig {
        // The journal records in BOTH modes so the pre-crash simulation is
        // identical; only the restart path differs.
        journal: edgectl::JournalConfig { enabled: true, snapshot_every: 64 },
        // Live migration on: crashing with a pinned transfer in flight is
        // the interesting interleaving (the restart must abort it).
        migration: edgectl::MigrationConfig {
            policy: edgectl::MigrationPolicy::Live,
            state_bytes_per_request: 512,
            ..edgectl::MigrationConfig::default()
        },
        ..edgectl::ControllerConfig::default()
    };
    let mut tb = MobilityTestbed::new(MobilityConfig {
        n_gnbs,
        n_clients,
        policy: edgectl::HandoverPolicy::Anchored,
        controller,
        seed,
        faults: desim::FaultPlan {
            controller_crash: crash_rate,
            seed: seed ^ 0x4A11_0C4A,
            ..desim::FaultPlan::default()
        },
        retransmit: Some(Duration::from_secs(1)),
        recovery: mode,
        // Non-zero service time makes control-plane congestion
        // client-visible: the cold restart's teardown/re-dispatch storm
        // serializes through the controller queue, which is what the warm
        // path saves.
        ctrl_service_time: Duration::from_millis(1),
        ..MobilityConfig::default()
    });
    let profile = ServiceSet::by_key("asm").expect("asm profile");
    tb.register_service(profile, ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80));
    tb.warm_all_zones();
    let grid = mobility::CellGrid::new(n_gnbs as u32, 1, 120.0);
    let mut model =
        mobility::RandomWaypoint::new(grid, n_clients, seed ^ 0x6d6f_7665).with_speed(30.0, 50.0);
    let mut seeded: Vec<usize> = (0..n_clients)
        .map(|c| mobility::MobilityModel::initial_cell(&model, c) % n_gnbs)
        .collect();
    seeded.sort_unstable();
    seeded.dedup();
    for z in seeded {
        tb.pre_deploy_on(z);
    }
    tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(secs));
    // Let the restart land (it may fall past the run deadline) and client
    // retransmits settle before judging strandedness.
    tb.drain(SimTime::from_secs(secs) + Duration::from_secs(15));
    let journal = tb.controller.journal_stats();
    let reconcile_fixes = tb.reconcile_now() as u64;
    let reconcile_residual = tb.reconcile_now() as u64;
    let report = tb.recovery_report;
    HaStats {
        sessions: n_clients as u64,
        handovers: tb.handovers.len() as u64,
        missed_handovers: tb.missed_handovers,
        pings_sent: tb.pings_sent(),
        pings_done: tb.pings_done(),
        retransmits: tb.retransmits,
        ctrl_dropped: tb.ctrl_dropped,
        blackout_secs: tb.blackout.as_secs_f64(),
        recovery_secs: tb.recovery_times_secs(),
        replayed_events: report.map_or(0, |r| r.replayed_events as u64),
        snapshot_entries: report.map_or(0, |r| r.snapshot_entries as u64),
        replay_wall_ns: report.map_or(0, |r| r.replay_wall_ns),
        journal_appended: journal.appended,
        snapshots_taken: journal.snapshots_taken,
        aborted_migrations: report.map_or(0, |r| r.aborted_migrations as u64),
        stranded: tb.stranded(),
        restart_fixes: tb.restart_fixes,
        reconcile_fixes,
        reconcile_residual,
    }
}

/// The runtime-chaos experiment (the self-healing control plane): the
/// mobility scenario re-run while a seedable [`desim::FaultPlan`] kills
/// Ready instances mid-service, takes whole zones dark, and drops
/// switch↔controller channels. The health loop detects crashes within its
/// sweep interval and repairs stale redirects; the per-cluster circuit
/// breaker keeps failing zones out of scheduling; reconnecting channels
/// reconcile their switch tables against the controller's bookkeeping.
/// Reports per-policy fault and recovery counts; panics if any session is
/// permanently stranded or the final reconciliation does not converge.
/// Deterministic per seed; ends with a machine-readable `recovery-summary`
/// line for CI.
pub fn recovery(seed: u64, fault_rate: f64, smoke: bool) -> Figure {
    recovery_impl(seed, fault_rate, smoke, false).0
}

/// [`recovery`] with telemetry recording on: the same deterministic figure,
/// plus the merged span log (runs prefixed by policy label) and the combined
/// metrics snapshot with the failure/repair counters and breaker gauges.
pub fn recovery_traced(
    seed: u64,
    fault_rate: f64,
    smoke: bool,
) -> (Figure, SpanLog, MetricsRegistry) {
    let (fig, tele) = recovery_impl(seed, fault_rate, smoke, true);
    let (log, metrics) = tele.expect("telemetry recorded");
    (fig, log, metrics)
}

fn recovery_impl(
    seed: u64,
    fault_rate: f64,
    smoke: bool,
    telemetry: bool,
) -> (Figure, Option<(SpanLog, MetricsRegistry)>) {
    let mut t = Table::new(&[
        "Policy",
        "Crashes",
        "Outages",
        "Channel drops",
        "Ctrl lost",
        "Retransmits",
        "Pings",
        "Answered",
        "Stranded",
        "Reconcile fix/residual",
    ]);
    let mut merged_log = SpanLog::new();
    let mut merged_metrics = MetricsRegistry::new();
    let mut request_offset = 0u64;
    let mut total = RecoveryStats::default();
    for policy in [
        edgectl::HandoverPolicy::Anchored,
        edgectl::HandoverPolicy::Redispatch,
    ] {
        let (run, tele) = recovery_run(policy, fault_rate, smoke, seed, telemetry);
        if let Some((log, metrics)) = tele {
            merged_log.absorb(&log, policy.label(), request_offset);
            merged_metrics.merge(&metrics);
            request_offset += run.pings_sent + run.handovers + 8;
        }
        // The self-healing acceptance bar, per policy: no session may be
        // permanently stranded, and the switch tables must diff clean
        // against the controller's bookkeeping once recovery settles.
        assert_eq!(run.stranded, 0, "{}: stranded sessions", policy.label());
        assert_eq!(
            run.reconcile_residual,
            0,
            "{}: reconciliation did not converge",
            policy.label()
        );
        assert!(run.pings_done > 0, "{}: nothing was served", policy.label());
        t.row(vec![
            policy.label().to_string(),
            run.instance_crashes.to_string(),
            run.zone_outages.to_string(),
            run.channel_losses.to_string(),
            run.ctrl_dropped.to_string(),
            run.retransmits.to_string(),
            run.pings_sent.to_string(),
            run.pings_done.to_string(),
            run.stranded.to_string(),
            format!("{}/{}", run.reconcile_fixes, run.reconcile_residual),
        ]);
        total.handovers += run.handovers;
        total.pings_sent += run.pings_sent;
        total.pings_done += run.pings_done;
        total.retransmits += run.retransmits;
        total.instance_crashes += run.instance_crashes;
        total.zone_outages += run.zone_outages;
        total.channel_losses += run.channel_losses;
        total.ctrl_dropped += run.ctrl_dropped;
        total.double_answered += run.double_answered;
        total.stranded += run.stranded;
        total.reconcile_fixes += run.reconcile_fixes;
        total.reconcile_residual += run.reconcile_residual;
    }
    let summary = format!(
        "\nrecovery-summary {{\"seed\":{seed},\"faultRate\":{fault_rate},\"smoke\":{smoke},\
\"crashes\":{},\"outages\":{},\"channelLosses\":{},\"ctrlDropped\":{},\
\"retransmits\":{},\"doubleAnswered\":{},\"stranded\":{},\
\"reconcileFixes\":{},\"reconcileResidual\":{},\"handovers\":{},\"panics\":0}}\n",
        total.instance_crashes,
        total.zone_outages,
        total.channel_losses,
        total.ctrl_dropped,
        total.retransmits,
        total.double_answered,
        total.stranded,
        total.reconcile_fixes,
        total.reconcile_residual,
        total.handovers,
    );
    let fig = Figure::new(
        "recovery",
        format!(
            "Self-healing control plane under runtime chaos (rate {fault_rate}, {} trace)",
            if smoke { "smoke" } else { "full" }
        ),
        t,
    )
    .with_extra(&summary);
    if !telemetry {
        return (fig, None);
    }
    (fig, Some((merged_log, merged_metrics)))
}

/// Renders a quick summary of every figure (used by `repro all`).
pub fn summary_line(fig: &Figure) -> String {
    let mut s = String::new();
    let _ = write!(s, "{:14} {}", fig.id, fig.title);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let f = table1();
        assert_eq!(f.table.rows.len(), 4);
        assert!(f.body.contains("6.18 KiB"));
        assert!(f.body.contains("135 MiB"));
        assert!(f.body.contains("308 MiB"));
        assert!(f.body.contains("181 MiB"));
        assert!(f.body.contains("POST"));
    }

    #[test]
    fn fig9_and_fig10_aggregates() {
        let f9 = fig9(7);
        assert!(f9.title.contains("1708 requests"));
        assert!(f9.title.contains("42 edge services"));
        let f10 = fig10(7);
        let total: u64 = f10
            .table
            .rows
            .iter()
            .map(|r| r[1].parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 42);
    }

    #[test]
    fn fig13_private_registry_saves_seconds() {
        let f = fig13(24);
        // nginx row: saving between 1 and 3 s (paper: 1.5–2 s).
        let nginx = f.table.rows.iter().find(|r| r[0] == "nginx").unwrap();
        let saving: f64 = nginx[3].trim_end_matches(" s").parse().unwrap();
        assert!((1.0..3.0).contains(&saving), "saving {saving}");
        // asm pulls fastest.
        let parse = |row: &Vec<String>| -> f64 { row[1].trim_end_matches(" s").parse().unwrap() };
        let asm = parse(f.table.rows.iter().find(|r| r[0] == "asm").unwrap());
        let resnet = parse(f.table.rows.iter().find(|r| r[0] == "resnet").unwrap());
        assert!(asm < resnet);
    }

    #[test]
    fn single_run_shapes() {
        // One full trace replay on Docker with nginx: the paper's headline.
        let run = run_trace_experiment(
            ClusterKind::Docker,
            &ServiceSet::by_key("nginx").unwrap(),
            true,
            3,
        );
        assert_eq!(run.firsts.len(), 42, "42 deployments");
        assert_eq!(run.resets, 0);
        let med = run.median_first();
        assert!((0.3..1.0).contains(&med), "docker nginx median {med}");
        assert!(run.median_warm() < 0.05, "warm requests are milliseconds");
        assert!(run.median_wait() < med);
        assert!(run.warm.len() > 1500, "most trace requests are warm");
    }

    #[test]
    fn k8s_run_is_slower() {
        let run = run_trace_experiment(
            ClusterKind::K8s,
            &ServiceSet::by_key("asm").unwrap(),
            true,
            3,
        );
        let med = run.median_first();
        assert!((2.0..4.5).contains(&med), "k8s asm median {med}");
        assert_eq!(run.resets, 0);
    }

    #[test]
    fn proactive_prediction_reduces_cold_requests() {
        let f = proactive(5);
        let cold: Vec<usize> = f.table.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let deployments: Vec<usize> = f.table.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Row 0 is the reactive baseline.
        assert_eq!(deployments[0], 0, "no prediction, no proactive deployments");
        for i in 1..cold.len() {
            assert!(cold[i] <= cold[0], "predictor {} made things worse", f.table.rows[i][0]);
            assert!(deployments[i] > 0, "predictors deploy proactively");
        }
        // Recency should be the strongest on this bursty workload.
        assert!(cold[1] < cold[0] / 2, "recency halves cold requests: {cold:?}");
    }

    #[test]
    fn local_scheduler_pack_pulls_once() {
        let f = local_scheduler(5);
        let cold: Vec<usize> = f.table.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert_eq!(cold, vec![3, 1], "spread pulls everywhere, pack once");
        let nodes: Vec<usize> = f.table.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert_eq!(nodes, vec![3, 1]);
    }

    #[test]
    fn hierarchy_far_edge_beats_cloud_and_waiting() {
        let f = hierarchy(5);
        let parse = |row: &Vec<String>, col: usize| -> f64 {
            row[col].trim_end_matches(" s").parse().unwrap()
        };
        let nginx = f.table.rows.iter().find(|r| r[0] == "nginx").unwrap();
        let far = parse(nginx, 1);
        let cloud = parse(nginx, 2);
        let held = parse(nginx, 3);
        let steady = parse(nginx, 4);
        assert!(far < cloud / 2.0, "far edge {far} vs cloud {cloud}");
        assert!(held > cloud, "holding costs more than the cloud answer");
        assert!(steady < far, "near edge steady state is the fastest");
    }

    #[test]
    fn chaos_is_deterministic_and_degrades_gracefully() {
        let a = chaos(7, 0.15, true);
        let b = chaos(7, 0.15, true);
        assert_eq!(a.body, b.body, "same seed ⇒ byte-identical output");
        let line = a
            .body
            .lines()
            .find(|l| l.starts_with("chaos-summary "))
            .expect("machine-readable summary line");
        assert!(line.contains("\"seed\":7"));
        assert!(line.contains("\"panics\":0"));
        let field = |key: &str| -> u64 {
            line.split(&format!("\"{key}\":"))
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        // A 15% per-phase fault rate must visibly exercise the retry path,
        // and every request must still terminate somewhere.
        assert!(field("totalRetries") > 0, "retries fired: {line}");
        assert!(field("completed") > 0);
        assert_eq!(
            field("completed"),
            field("requests"),
            "every request terminates (edge or cloud fallback): {line}"
        );
    }

    #[test]
    fn chaos_traced_matches_untraced_figure_and_validates() {
        let plain = chaos(7, 0.15, true);
        let (fig, log, metrics) = chaos_traced(7, 0.15, true);
        assert_eq!(plain.body, fig.body, "recording must not change the figure");
        // The merged log is well-formed and spans both testbed runs.
        let check = log.check();
        assert!(check.ok(), "{check:?}");
        assert!(log.spans().any(|s| s.name.starts_with("docker/")));
        assert!(log.spans().any(|s| s.name.starts_with("k8s/")));
        // Metrics carry the acceptance-relevant aggregates: deploy-phase
        // percentiles, retry totals, and the derived fallback-cloud rate.
        assert!(metrics.counter("requests_total") > 0);
        assert!(metrics.counter("deploy_retries_total") > 0);
        assert!(metrics.histogram("deploy_pull_ns").is_some());
        assert!(metrics.gauge("fallback_cloud_rate").is_some());
        assert!(metrics.gauge("switch.microflow_hit_rate").is_some());
        let json = metrics.to_json();
        assert!(json.contains("\"p95_ms\""), "{json}");
    }

    #[test]
    fn chaos_with_zero_fault_rate_is_clean() {
        let f = chaos(7, 0.0, true);
        let line = f
            .body
            .lines()
            .find(|l| l.starts_with("chaos-summary "))
            .unwrap();
        assert!(line.contains("\"fallbacks\":0"), "{line}");
        assert!(line.contains("\"totalRetries\":0"), "{line}");
        assert!(line.contains("\"resets\":0"), "{line}");
    }

    #[test]
    fn mobility_smoke_is_clean_and_deterministic() {
        let f = mobility(7, true);
        let again = mobility(7, true);
        assert_eq!(f.body, again.body, "deterministic per seed");
        let line = f
            .body
            .lines()
            .find(|l| l.starts_with("mobility-summary "))
            .unwrap();
        assert!(line.contains("\"droppedFlows\":0"), "{line}");
        assert!(line.contains("\"doubleAnswered\":0"), "{line}");
        assert!(line.contains("\"transparencyViolations\":0"), "{line}");
        assert!(line.contains("\"panics\":0"), "{line}");
        let field = |name: &str| -> u64 {
            let tail = &line[line.find(&format!("\"{name}\":")).unwrap() + name.len() + 3..];
            tail[..tail.find([',', '}']).unwrap()].parse().unwrap()
        };
        assert!(field("handovers") > 0, "mobile clients must hand over: {line}");
        assert!(field("flowsMigrated") > 0, "{line}");
    }

    #[test]
    fn mobility_traced_matches_untraced_figure_and_validates() {
        let plain = mobility(7, true);
        let (fig, log, metrics) = mobility_traced(7, true);
        assert_eq!(plain.body, fig.body, "recording must not change the figure");
        let check = log.check();
        assert!(check.ok(), "{check:?}");
        assert!(log.spans().any(|s| s.name.starts_with("anchored/")));
        assert!(log.spans().any(|s| s.name.starts_with("redispatch/")));
        assert!(log.spans().any(|s| s.name.ends_with("handover")));
        assert!(metrics.counter("handovers_total") > 0);
        assert!(metrics.counter("flows_migrated") > 0);
        assert!(metrics.histogram("handover_interruption_ns").is_some());
        assert!(metrics.gauge("handover_interruption_p99_ms").is_some());
    }

    #[test]
    fn recovery_is_deterministic_and_self_heals() {
        let a = recovery(7, 1.0, true);
        let b = recovery(7, 1.0, true);
        assert_eq!(a.body, b.body, "same seed ⇒ byte-identical output");
        let line = a
            .body
            .lines()
            .find(|l| l.starts_with("recovery-summary "))
            .expect("machine-readable summary line");
        assert!(line.contains("\"panics\":0"), "{line}");
        assert!(line.contains("\"stranded\":0"), "{line}");
        assert!(line.contains("\"reconcileResidual\":0"), "{line}");
        let field = |key: &str| -> u64 {
            line.split(&format!("\"{key}\":"))
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        // At rate 1.0 every zone suffers an outage and every channel drops:
        // the run must actually exercise all three failure modes and still
        // strand nothing.
        assert!(field("crashes") > 0, "instances crashed mid-serve: {line}");
        assert!(field("outages") > 0, "zone outages fired: {line}");
        assert!(field("channelLosses") > 0, "channels dropped: {line}");
        assert!(field("handovers") > 0, "chaos composes with mobility: {line}");
    }

    #[test]
    fn recovery_traced_matches_untraced_figure_and_validates() {
        let plain = recovery(7, 1.0, true);
        let (fig, log, metrics) = recovery_traced(7, 1.0, true);
        assert_eq!(plain.body, fig.body, "recording must not change the figure");
        let check = log.check();
        assert!(check.ok(), "{check:?}");
        assert!(log.spans().any(|s| s.name.starts_with("anchored/")));
        assert!(log.spans().any(|s| s.name.starts_with("redispatch/")));
        assert!(metrics.counter("zone_outages_total") > 0);
        assert!(metrics.counter("instance_failures_total") > 0);
        assert!(metrics.counter("stale_redirects_repaired") > 0);
        assert!(metrics.histogram("stale_redirect_repair_ns").is_some());
        assert!(metrics.gauge("cluster.0.breaker_state").is_some());
    }

    #[test]
    fn recovery_at_rate_zero_matches_mobility_baseline() {
        // The whole fault machinery is inert at rate 0: the recovery run is
        // byte-for-byte the plain mobility run, and the reconciliation sweep
        // finds nothing to fix.
        for policy in [
            edgectl::HandoverPolicy::Anchored,
            edgectl::HandoverPolicy::Redispatch,
        ] {
            let base = mobility_stats(policy, 7, true);
            let quiet = recovery_stats(policy, 7, 0.0, true);
            assert_eq!(quiet.pings_sent, base.pings_sent);
            assert_eq!(quiet.pings_done, base.pings_done);
            assert_eq!(quiet.handovers, base.handovers);
            assert_eq!(quiet.instance_crashes, 0);
            assert_eq!(quiet.zone_outages, 0);
            assert_eq!(quiet.channel_losses, 0);
            assert_eq!(quiet.retransmits, 0);
            assert_eq!(quiet.stranded, 0);
            assert_eq!(quiet.reconcile_fixes, 0);
            assert_eq!(quiet.reconcile_residual, 0);
        }
    }

    #[test]
    fn ha_stats_warm_and_cold_race_the_same_blackout_and_strand_nothing() {
        let warm = ha_stats(edgectl::RecoveryMode::Warm, 4, 7, 1.0, true);
        let cold = ha_stats(edgectl::RecoveryMode::Cold, 4, 7, 1.0, true);
        // Same fault seed ⇒ the crash instant and blackout are identical;
        // only the restart path differs.
        assert!(warm.blackout_secs > 0.0, "the crash fired");
        assert_eq!(warm.blackout_secs, cold.blackout_secs, "a fair race");
        assert_eq!(warm.pings_sent, cold.pings_sent, "identical pre-crash runs");
        // Warm recovered real state from the journal; cold threw it away.
        assert!(warm.replayed_events + warm.snapshot_entries > 0);
        assert_eq!(cold.replayed_events, 0);
        assert_eq!(cold.snapshot_entries, 0);
        assert!(warm.journal_appended > 0);
        // The acceptance gates hold in both modes.
        for (label, s) in [("warm", &warm), ("cold", &cold)] {
            assert_eq!(s.stranded, 0, "{label}: no session permanently stranded");
            assert_eq!(s.reconcile_residual, 0, "{label}: tables converged");
        }
    }

    #[test]
    fn ha_stats_at_crash_rate_zero_never_restarts() {
        let s = ha_stats(edgectl::RecoveryMode::Warm, 3, 7, 0.0, true);
        assert_eq!(s.blackout_secs, 0.0);
        assert!(s.recovery_secs.is_empty());
        assert_eq!(s.replayed_events, 0);
        assert_eq!(s.ctrl_dropped, 0);
        assert_eq!(s.stranded, 0);
        assert_eq!(s.reconcile_residual, 0);
        assert!(s.journal_appended > 0, "the journal still records");
    }

    #[test]
    fn timeout_sweep_monotonic_behaviour() {
        let f = timeout_sweep(5);
        let deployments: Vec<usize> = f
            .table
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        // Shorter timeouts can only cause more (or equal) re-deployments.
        for w in deployments.windows(2) {
            assert!(w[0] >= w[1], "deployments {deployments:?}");
        }
        // The longest timeout needs exactly one deployment per service.
        assert_eq!(*deployments.last().unwrap(), 8);
    }
}
