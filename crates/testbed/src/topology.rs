//! The virtual evaluation topology (Fig. 8).
//!
//! Clients (Raspberry Pis) attach to the virtual OVS switch running on the
//! Edge Gateway Server; the EGS itself (hosting Docker and Kubernetes) hangs
//! off the switch on a fast internal link; a WAN link leads to the cloud.

use desim::Duration;
use netsim::link::LinkSpec;
use netsim::topo::{NodeId, NodeKind, PortNo, Topology};
use netsim::Ipv4Addr;

/// Allocates the `i`-th client address.
///
/// The first 236 clients stay in `192.168.1.20..=192.168.1.255` — exactly
/// the historical single-octet scheme, so existing figures are unchanged —
/// and every 236 clients after that bump the third octet. (The old
/// `20 + i as u8` arithmetic overflowed for `i > 235` even though the
/// topology admits 250 clients.) The `192.168.0.0/16` scheme holds 60,180
/// addresses; beyond that the allocator continues into `172.16.0.0/12`
/// (the third octet would itself overflow at `i = 60,180`), which collides
/// with no other address family in the simulation.
pub fn client_ip_for(i: usize) -> Ipv4Addr {
    const LEGACY: usize = 236 * 255; // 192.168.1.20 .. 192.168.255.255
    if i < LEGACY {
        Ipv4Addr::new(192, 168, 1 + (i / 236) as u8, 20 + (i % 236) as u8)
    } else {
        let j = i - LEGACY;
        assert!(j < 16 << 16, "client index exhausts 172.16.0.0/12");
        Ipv4Addr::new(172, 16 + (j >> 16) as u8, (j >> 8) as u8, j as u8)
    }
}

/// Allocates a client address for a *fleet* topology: client `i` attached
/// at ingress (gNB) `ingress` draws from that ingress's own `/16` block in
/// `10.64.0.0/10` — `10.(64 + ingress).0.0/16`, 65,534 clients per ingress,
/// 192 ingress blocks. Ingress-prefixed blocks keep fleet addressing
/// collision-free by construction: distinct ingresses can never allocate
/// the same address, and the region is disjoint from zone addressing
/// (`10.0.(g+1).x`, far edge `10.8.0.10`), from the legacy
/// `192.168.0.0/16` pool and its `172.16.0.0/12` overflow above.
///
/// The per-client exact-match scheme collided at scale: a single shared
/// pool spanning one `/16` wraps after 65,536 clients, silently aliasing
/// two real clients onto one address (and therefore one rewrite pair).
pub fn fleet_client_ip(ingress: u32, i: usize) -> Ipv4Addr {
    assert!(ingress < 192, "fleet addressing holds 192 ingress blocks");
    assert!(i < 0xfffe, "65,534 clients per ingress block");
    let host = i + 1; // skip the .0.0 network address
    Ipv4Addr::new(10, 64 + ingress as u8, (host >> 8) as u8, host as u8)
}

/// The assembled topology plus the node/port bookkeeping the harness needs.
pub struct C3Topology {
    /// The network graph.
    pub topo: Topology,
    /// The Raspberry Pi client nodes.
    pub clients: Vec<NodeId>,
    /// The virtual OVS switch node.
    pub ovs: NodeId,
    /// The Edge Gateway Server node (runs the clusters).
    pub egs: NodeId,
    /// The cloud node.
    pub cloud: NodeId,
    /// OVS port leading to each client (indexed like `clients`).
    pub client_ports: Vec<PortNo>,
    /// OVS port toward the EGS.
    pub egs_port: PortNo,
    /// OVS port toward the cloud.
    pub cloud_port: PortNo,
    /// Optional hierarchical far-edge host (larger cluster on the route to
    /// the cloud) and the OVS port toward it.
    pub far_edge: Option<(NodeId, PortNo)>,
}

impl C3Topology {
    /// Builds the evaluation topology with `n_clients` Pis (the paper uses
    /// 20).
    pub fn build(n_clients: usize) -> C3Topology {
        Self::build_with_far_edge(n_clients, false)
    }

    /// Builds the topology, optionally with a hierarchical *far edge*: a
    /// larger cluster further away, on the route toward the cloud
    /// (Section IV-A-2: such clusters are "much more likely to have the
    /// requested service cached or even running already").
    pub fn build_with_far_edge(n_clients: usize, far_edge: bool) -> C3Topology {
        assert!(n_clients > 0 && n_clients <= 250, "client count out of range");
        let mut topo = Topology::new();
        let ovs = topo.add_node("ovs", NodeKind::OpenFlowSwitch, Ipv4Addr::new(10, 0, 0, 1));
        let mut clients = Vec::with_capacity(n_clients);
        let mut client_ports = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let c = topo.add_node(&format!("pi-{:02}", i + 1), NodeKind::Client, client_ip_for(i));
            // 1 GbE through the Aruba access switch: ~150 µs one way.
            let (p_ovs, _) = topo.connect(ovs, c, LinkSpec::gigabit(Duration::from_micros(150)));
            clients.push(c);
            client_ports.push(p_ovs);
        }
        let egs = topo.add_node("egs", NodeKind::EdgeHost, Ipv4Addr::new(10, 0, 0, 10));
        let (egs_port, _) = topo.connect(ovs, egs, LinkSpec::local());
        let cloud = topo.add_node("cloud", NodeKind::Cloud, Ipv4Addr::new(198, 51, 100, 1));
        // WAN: ~15 ms one way, shared 1 Gbit/s uplink.
        let (cloud_port, _) = topo.connect(
            ovs,
            cloud,
            LinkSpec::wan(Duration::from_millis(15), 1_000_000_000),
        );
        let far = far_edge.then(|| {
            let far = topo.add_node("far-edge", NodeKind::EdgeHost, Ipv4Addr::new(10, 8, 0, 10));
            // Metro aggregation: ~2 ms one way — 40× farther than the EGS,
            // still 7× closer than the cloud.
            let (far_port, _) = topo.connect(
                ovs,
                far,
                LinkSpec::wan(Duration::from_millis(2), 10_000_000_000),
            );
            (far, far_port)
        });
        C3Topology {
            topo,
            clients,
            ovs,
            egs,
            cloud,
            client_ports,
            egs_port,
            cloud_port,
            far_edge: far,
        }
    }

    /// The IPv4 address of client `i`.
    pub fn client_ip(&self, i: usize) -> Ipv4Addr {
        self.topo.node(self.clients[i]).ip
    }

    /// All OVS port numbers (for the switch FLOOD config).
    pub fn ovs_ports(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.client_ports.iter().map(|p| p.0).collect();
        v.push(self.egs_port.0);
        v.push(self.cloud_port.0);
        if let Some((_, p)) = self.far_edge {
            v.push(p.0);
        }
        v.sort_unstable();
        v
    }
}

/// A multi-cell radio access network: `n_gnbs` OpenFlow ingress switches
/// (gNBs), each fronting its own near-edge cluster zone, one shared cloud,
/// all managed by a single controller.
///
/// Every client has a radio path to every gNB (it *attaches* to exactly one
/// at a time — attachment is harness state, not topology); every gNB reaches
/// every zone (its own over a local link, the others over a metro
/// aggregation hop) and the cloud over the WAN, so a handed-over session can
/// stay **anchored** to its old zone's instance from the new cell.
pub struct MultiGnbTopology {
    /// The network graph.
    pub topo: Topology,
    /// The gNB ingress switches, one per cell.
    pub gnbs: Vec<NodeId>,
    /// Near-edge cluster zone hosts (`zones[g]` is gNB `g`'s own zone).
    pub zones: Vec<NodeId>,
    /// The client (UE) nodes.
    pub clients: Vec<NodeId>,
    /// The cloud node.
    pub cloud: NodeId,
    /// `client_ports[g][i]` — gNB `g`'s port toward client `i`.
    pub client_ports: Vec<Vec<PortNo>>,
    /// `uplink_ports[g][i]` — client `i`'s own port toward gNB `g` (the
    /// radio leg it transmits on while attached there).
    pub uplink_ports: Vec<Vec<PortNo>>,
    /// `zone_ports[g][z]` — gNB `g`'s port toward zone `z`.
    pub zone_ports: Vec<Vec<PortNo>>,
    /// `cloud_ports[g]` — gNB `g`'s WAN uplink port.
    pub cloud_ports: Vec<PortNo>,
}

impl MultiGnbTopology {
    /// Builds the multi-cell topology.
    pub fn build(n_gnbs: usize, n_clients: usize) -> MultiGnbTopology {
        assert!(n_gnbs > 0 && n_gnbs <= 32, "gNB count out of range");
        assert!(n_clients > 0 && n_clients <= 250, "client count out of range");
        let mut topo = Topology::new();
        let gnbs: Vec<NodeId> = (0..n_gnbs)
            .map(|g| {
                topo.add_node(
                    &format!("gnb-{g}"),
                    NodeKind::OpenFlowSwitch,
                    Ipv4Addr::new(10, 0, (g + 1) as u8, 1),
                )
            })
            .collect();
        let zones: Vec<NodeId> = (0..n_gnbs)
            .map(|g| {
                topo.add_node(
                    &format!("zone-{g}"),
                    NodeKind::EdgeHost,
                    Ipv4Addr::new(10, 0, (g + 1) as u8, 10),
                )
            })
            .collect();
        let cloud = topo.add_node("cloud", NodeKind::Cloud, Ipv4Addr::new(198, 51, 100, 1));
        let clients: Vec<NodeId> = (0..n_clients)
            .map(|i| {
                topo.add_node(&format!("pi-{:02}", i + 1), NodeKind::Client, client_ip_for(i))
            })
            .collect();
        let mut client_ports = Vec::with_capacity(n_gnbs);
        let mut uplink_ports = Vec::with_capacity(n_gnbs);
        let mut zone_ports = Vec::with_capacity(n_gnbs);
        let mut cloud_ports = Vec::with_capacity(n_gnbs);
        for (g, &gnb) in gnbs.iter().enumerate() {
            // Radio legs first, so per-gNB port numbering mirrors C3 (client
            // ports low, infrastructure ports after them).
            let mut cp = Vec::with_capacity(clients.len());
            let mut up = Vec::with_capacity(clients.len());
            for &c in &clients {
                let (p_gnb, p_client) =
                    topo.connect(gnb, c, LinkSpec::gigabit(Duration::from_micros(150)));
                cp.push(p_gnb);
                up.push(p_client);
            }
            let zp: Vec<PortNo> = zones
                .iter()
                .enumerate()
                .map(|(z, &zone)| {
                    let link = if z == g {
                        LinkSpec::local()
                    } else {
                        // Metro aggregation between neighbouring zones.
                        LinkSpec::wan(Duration::from_millis(2), 10_000_000_000)
                    };
                    topo.connect(gnb, zone, link).0
                })
                .collect();
            let (wan, _) = topo.connect(
                gnb,
                cloud,
                LinkSpec::wan(Duration::from_millis(15), 1_000_000_000),
            );
            client_ports.push(cp);
            uplink_ports.push(up);
            zone_ports.push(zp);
            cloud_ports.push(wan);
        }
        MultiGnbTopology {
            topo,
            gnbs,
            zones,
            clients,
            cloud,
            client_ports,
            uplink_ports,
            zone_ports,
            cloud_ports,
        }
    }

    /// The IPv4 address of client `i`.
    pub fn client_ip(&self, i: usize) -> Ipv4Addr {
        self.topo.node(self.clients[i]).ip
    }

    /// All port numbers of gNB `g` (for the switch FLOOD config).
    pub fn gnb_ports(&self, g: usize) -> Vec<u32> {
        let mut v: Vec<u32> = self.client_ports[g].iter().map(|p| p.0).collect();
        v.extend(self.zone_ports[g].iter().map(|p| p.0));
        v.push(self.cloud_ports[g].0);
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;

    #[test]
    fn shape_matches_fig8() {
        let t = C3Topology::build(20);
        assert_eq!(t.clients.len(), 20);
        assert_eq!(t.client_ports.len(), 20);
        assert_eq!(t.ovs_ports().len(), 22);
        // Edge path is much faster than the cloud path.
        let mut rng = SimRng::new(1);
        let to_edge = t.topo.path_latency(t.clients[0], t.egs, 64, &mut rng).unwrap();
        let to_cloud = t.topo.path_latency(t.clients[0], t.cloud, 64, &mut rng).unwrap();
        assert!(to_cloud > to_edge * 10, "edge {to_edge} vs cloud {to_cloud}");
        assert!(to_edge < desim::Duration::from_millis(1));
    }

    #[test]
    fn client_addressing() {
        let t = C3Topology::build(3);
        assert_eq!(t.client_ip(0), Ipv4Addr::new(192, 168, 1, 20));
        assert_eq!(t.client_ip(2), Ipv4Addr::new(192, 168, 1, 22));
        // Ports are distinct per client.
        let mut ports = t.client_ports.clone();
        ports.dedup();
        assert_eq!(ports.len(), 3);
    }

    /// Regression: the full admitted range of 250 clients allocates distinct
    /// addresses without octet overflow (`i = 236..250` used to wrap).
    #[test]
    fn client_addressing_does_not_overflow_at_250() {
        let t = C3Topology::build(250);
        let mut ips: Vec<Ipv4Addr> = (0..250).map(|i| t.client_ip(i)).collect();
        // The historical scheme is preserved for the first 236 clients...
        assert_eq!(ips[235], Ipv4Addr::new(192, 168, 1, 255));
        // ...and the /16 absorbs the rest on the next third octet.
        assert_eq!(ips[236], Ipv4Addr::new(192, 168, 2, 20));
        assert_eq!(ips[249], Ipv4Addr::new(192, 168, 2, 33));
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), 250, "all client addresses distinct");
    }

    /// Regression: the shared pool used to alias clients past one `/16`
    /// (65,536+ clients collided). The extended allocator and the
    /// ingress-prefixed fleet allocator stay collision-free past that mark,
    /// against each other and against infrastructure addressing.
    #[test]
    fn allocators_are_collision_free_past_a_slash_sixteen() {
        let n = 70_000;
        let mut ips: Vec<Ipv4Addr> = (0..n).map(client_ip_for).collect();
        // Legacy prefix byte-identical.
        assert_eq!(ips[0], Ipv4Addr::new(192, 168, 1, 20));
        assert_eq!(ips[235], Ipv4Addr::new(192, 168, 1, 255));
        assert_eq!(ips[236], Ipv4Addr::new(192, 168, 2, 20));
        // Fleet blocks for two ingresses, 40k clients each.
        for ing in 0..2 {
            ips.extend((0..40_000).map(|i| fleet_client_ip(ing, i)));
        }
        // Infrastructure addresses must never be allocated to a client:
        // zone gNB/instance (10.0.(g+1).{1,10}), far edge, OVS, EGS, cloud.
        for g in 0..32u8 {
            ips.push(Ipv4Addr::new(10, 0, g + 1, 1));
            ips.push(Ipv4Addr::new(10, 0, g + 1, 10));
        }
        ips.push(Ipv4Addr::new(10, 8, 0, 10));
        ips.push(Ipv4Addr::new(10, 0, 0, 1));
        ips.push(Ipv4Addr::new(10, 0, 0, 10));
        ips.push(Ipv4Addr::new(198, 51, 100, 1));
        let total = ips.len();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), total, "no collisions anywhere in the fleet");
    }

    #[test]
    fn multi_gnb_shape() {
        let t = MultiGnbTopology::build(3, 6);
        assert_eq!(t.gnbs.len(), 3);
        assert_eq!(t.zones.len(), 3);
        assert_eq!(t.clients.len(), 6);
        for g in 0..3 {
            // clients + 3 zones + cloud per gNB.
            assert_eq!(t.gnb_ports(g).len(), 6 + 3 + 1);
        }
        assert_eq!(t.client_ip(0), Ipv4Addr::new(192, 168, 1, 20));
    }

    /// A gNB's own zone is closest, a neighbour zone farther, the cloud
    /// farthest — the gradient the handover policies trade off.
    #[test]
    fn multi_gnb_latency_gradient() {
        let t = MultiGnbTopology::build(2, 1);
        let mut rng = SimRng::new(1);
        let own = t.topo.path_latency(t.gnbs[0], t.zones[0], 64, &mut rng).unwrap();
        let other = t.topo.path_latency(t.gnbs[0], t.zones[1], 64, &mut rng).unwrap();
        let cloud = t.topo.path_latency(t.gnbs[0], t.cloud, 64, &mut rng).unwrap();
        assert!(own < other, "own zone closest: {own} vs {other}");
        assert!(other < cloud, "neighbour zone beats cloud: {other} vs {cloud}");
    }
}
