//! The virtual evaluation topology (Fig. 8).
//!
//! Clients (Raspberry Pis) attach to the virtual OVS switch running on the
//! Edge Gateway Server; the EGS itself (hosting Docker and Kubernetes) hangs
//! off the switch on a fast internal link; a WAN link leads to the cloud.

use desim::Duration;
use netsim::link::LinkSpec;
use netsim::topo::{NodeId, NodeKind, PortNo, Topology};
use netsim::Ipv4Addr;

/// The assembled topology plus the node/port bookkeeping the harness needs.
pub struct C3Topology {
    /// The network graph.
    pub topo: Topology,
    /// The Raspberry Pi client nodes.
    pub clients: Vec<NodeId>,
    /// The virtual OVS switch node.
    pub ovs: NodeId,
    /// The Edge Gateway Server node (runs the clusters).
    pub egs: NodeId,
    /// The cloud node.
    pub cloud: NodeId,
    /// OVS port leading to each client (indexed like `clients`).
    pub client_ports: Vec<PortNo>,
    /// OVS port toward the EGS.
    pub egs_port: PortNo,
    /// OVS port toward the cloud.
    pub cloud_port: PortNo,
    /// Optional hierarchical far-edge host (larger cluster on the route to
    /// the cloud) and the OVS port toward it.
    pub far_edge: Option<(NodeId, PortNo)>,
}

impl C3Topology {
    /// Builds the evaluation topology with `n_clients` Pis (the paper uses
    /// 20).
    pub fn build(n_clients: usize) -> C3Topology {
        Self::build_with_far_edge(n_clients, false)
    }

    /// Builds the topology, optionally with a hierarchical *far edge*: a
    /// larger cluster further away, on the route toward the cloud
    /// (Section IV-A-2: such clusters are "much more likely to have the
    /// requested service cached or even running already").
    pub fn build_with_far_edge(n_clients: usize, far_edge: bool) -> C3Topology {
        assert!(n_clients > 0 && n_clients <= 250, "client count out of range");
        let mut topo = Topology::new();
        let ovs = topo.add_node("ovs", NodeKind::OpenFlowSwitch, Ipv4Addr::new(10, 0, 0, 1));
        let mut clients = Vec::with_capacity(n_clients);
        let mut client_ports = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let c = topo.add_node(
                &format!("pi-{:02}", i + 1),
                NodeKind::Client,
                Ipv4Addr::new(192, 168, 1, 20 + i as u8),
            );
            // 1 GbE through the Aruba access switch: ~150 µs one way.
            let (p_ovs, _) = topo.connect(ovs, c, LinkSpec::gigabit(Duration::from_micros(150)));
            clients.push(c);
            client_ports.push(p_ovs);
        }
        let egs = topo.add_node("egs", NodeKind::EdgeHost, Ipv4Addr::new(10, 0, 0, 10));
        let (egs_port, _) = topo.connect(ovs, egs, LinkSpec::local());
        let cloud = topo.add_node("cloud", NodeKind::Cloud, Ipv4Addr::new(198, 51, 100, 1));
        // WAN: ~15 ms one way, shared 1 Gbit/s uplink.
        let (cloud_port, _) = topo.connect(
            ovs,
            cloud,
            LinkSpec::wan(Duration::from_millis(15), 1_000_000_000),
        );
        let far = far_edge.then(|| {
            let far = topo.add_node("far-edge", NodeKind::EdgeHost, Ipv4Addr::new(10, 8, 0, 10));
            // Metro aggregation: ~2 ms one way — 40× farther than the EGS,
            // still 7× closer than the cloud.
            let (far_port, _) = topo.connect(
                ovs,
                far,
                LinkSpec::wan(Duration::from_millis(2), 10_000_000_000),
            );
            (far, far_port)
        });
        C3Topology {
            topo,
            clients,
            ovs,
            egs,
            cloud,
            client_ports,
            egs_port,
            cloud_port,
            far_edge: far,
        }
    }

    /// The IPv4 address of client `i`.
    pub fn client_ip(&self, i: usize) -> Ipv4Addr {
        self.topo.node(self.clients[i]).ip
    }

    /// All OVS port numbers (for the switch FLOOD config).
    pub fn ovs_ports(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.client_ports.iter().map(|p| p.0).collect();
        v.push(self.egs_port.0);
        v.push(self.cloud_port.0);
        if let Some((_, p)) = self.far_edge {
            v.push(p.0);
        }
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;

    #[test]
    fn shape_matches_fig8() {
        let t = C3Topology::build(20);
        assert_eq!(t.clients.len(), 20);
        assert_eq!(t.client_ports.len(), 20);
        assert_eq!(t.ovs_ports().len(), 22);
        // Edge path is much faster than the cloud path.
        let mut rng = SimRng::new(1);
        let to_edge = t.topo.path_latency(t.clients[0], t.egs, 64, &mut rng).unwrap();
        let to_cloud = t.topo.path_latency(t.clients[0], t.cloud, 64, &mut rng).unwrap();
        assert!(to_cloud > to_edge * 10, "edge {to_edge} vs cloud {to_cloud}");
        assert!(to_edge < desim::Duration::from_millis(1));
    }

    #[test]
    fn client_addressing() {
        let t = C3Topology::build(3);
        assert_eq!(t.client_ip(0), Ipv4Addr::new(192, 168, 1, 20));
        assert_eq!(t.client_ip(2), Ipv4Addr::new(192, 168, 1, 22));
        // Ports are distinct per client.
        let mut ports = t.client_ports.clone();
        ports.dedup();
        assert_eq!(ports.len(), 3);
    }
}
