//! Plain-text rendering of experiment results: aligned tables, ASCII bar
//! charts, per-request span timelines and CSV export.

use desim::{fmt_duration, SimTime};
use std::fmt::Write as _;
use telemetry::{span_label, Span, SpanLog};

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - c.chars().count();
                out.push_str(c);
                out.extend(std::iter::repeat_n(' ', pad));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting needed for the emitted content).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.join(","));
        }
        out
    }
}

/// Renders a horizontal ASCII bar chart. `values` are scaled so the longest
/// bar spans `width` characters.
pub fn bar_chart(labels: &[String], values: &[f64], width: usize, unit: &str) -> String {
    assert_eq!(labels.len(), values.len());
    let max = values.iter().copied().fold(0.0_f64, f64::max).max(1e-12);
    let lwidth = labels.iter().map(|l| l.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (l, &v) in labels.iter().zip(values) {
        let n = ((v / max) * width as f64).round() as usize;
        let pad = lwidth - l.chars().count();
        let _ = writeln!(
            out,
            "{}{}  {} {v:.3} {unit}",
            l,
            " ".repeat(pad),
            "█".repeat(n.max(if v > 0.0 { 1 } else { 0 })),
        );
    }
    out
}

/// Renders a per-second count series as a compact timeline, bucketing
/// `series` into at most `max_buckets` columns of `▁▂▃▄▅▆▇█` glyphs.
pub fn timeline(series: &[u64], max_buckets: usize) -> String {
    if series.is_empty() {
        return String::new();
    }
    let bucket = series.len().div_ceil(max_buckets);
    let sums: Vec<u64> = series
        .chunks(bucket)
        .map(|c| c.iter().sum::<u64>())
        .collect();
    let max = *sums.iter().max().unwrap_or(&1);
    const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    for &s in &sums {
        let idx = if max == 0 {
            0
        } else {
            ((s as f64 / max as f64) * 8.0).ceil() as usize
        };
        out.push(GLYPHS[idx.min(8)]);
    }
    let _ = write!(
        out,
        "  (peak {max}/{}s bucket, total {})",
        bucket,
        series.iter().sum::<u64>()
    );
    out
}

/// Renders one request's span tree as an ASCII timeline: one line per span
/// (indented by tree depth, labelled via [`telemetry::span_label`] so the
/// duration formatting matches tables and error messages), followed by a
/// `width`-character gantt track mapping the span onto the request's
/// `[first start, last end]` interval. Point events render as `·` lines
/// under their span.
pub fn span_timeline(log: &SpanLog, request: u64, width: usize) -> String {
    let spans: Vec<&Span> = log.spans_for_request(request).collect();
    if spans.is_empty() {
        return format!("request {request}: no spans recorded\n");
    }
    let t0 = spans.iter().map(|s| s.start).min().unwrap();
    let t1 = spans
        .iter()
        .map(|s| s.end.unwrap_or(s.start))
        .max()
        .unwrap()
        .max(t0);
    let total = t1.saturating_since(t0);
    let by_id: std::collections::HashMap<u32, &Span> =
        spans.iter().map(|s| (s.id.0, *s)).collect();
    let depth_of = |s: &Span| {
        let mut d = 0usize;
        let mut p = s.parent;
        while let Some(ps) = by_id.get(&p.0) {
            d += 1;
            p = ps.parent;
        }
        d
    };
    let labels: Vec<String> = spans
        .iter()
        .map(|s| format!("{}{}", "  ".repeat(depth_of(s)), span_label(s)))
        .collect();
    let lwidth = labels.iter().map(|l| l.chars().count()).max().unwrap_or(0);
    let span_ns = u128::from(total.as_nanos()).max(1);
    let col = |at: SimTime| {
        (u128::from(at.saturating_since(t0).as_nanos()) * width as u128 / span_ns) as usize
    };
    let mut out = format!(
        "request {request}: {} span(s) over {}\n",
        spans.len(),
        fmt_duration(total)
    );
    for (s, label) in spans.iter().zip(&labels) {
        let from = col(s.start).min(width.saturating_sub(1));
        let to = s.end.map(col).unwrap_or(width).clamp(from + 1, width);
        let mut track = String::with_capacity(width);
        track.extend(std::iter::repeat_n(' ', from));
        track.extend(std::iter::repeat_n('█', to - from));
        track.extend(std::iter::repeat_n(' ', width - to));
        let pad = lwidth - label.chars().count();
        let _ = writeln!(out, "{label}{}  |{track}|", " ".repeat(pad));
        for e in &s.events {
            let _ = writeln!(
                out,
                "{}· {} @{} {}",
                "  ".repeat(depth_of(s) + 1),
                e.name,
                fmt_duration(e.at.saturating_since(SimTime::ZERO)),
                e.detail
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Service", "Median [s]"]);
        t.row(vec!["asm".into(), "0.512".into()]);
        t.row(vec!["nginx-like-long".into(), "0.600".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Service"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Columns align: "0.512" starts at the same offset in both data rows.
        let off = lines[2].find("0.512").unwrap();
        assert_eq!(lines[3].find("0.600").unwrap(), off);
    }

    #[test]
    fn table_csv() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.rows[0].len(), 3);
        t.render();
    }

    #[test]
    fn bar_chart_scales() {
        let s = bar_chart(
            &["a".into(), "bb".into()],
            &[1.0, 2.0],
            10,
            "s",
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains(&"█".repeat(10)));
        assert!(lines[0].contains(&"█".repeat(5)));
        assert!(lines[0].contains("1.000 s"));
    }

    #[test]
    fn timeline_buckets() {
        let series: Vec<u64> = (0..300).map(|i| if i < 10 { 8 } else { 0 }).collect();
        let s = timeline(&series, 60);
        assert!(s.contains("total 80"));
        assert!(s.starts_with('█'));
    }

    fn traced_request() -> SpanLog {
        use telemetry::{SimTracer, SpanId, Tracer};
        let mut t = SimTracer::new();
        let root = t.span_start(1, SpanId::NONE, "request", SimTime::from_secs(1));
        let deploy = t.span_start(1, root, "deploy", SimTime::from_secs(1));
        let pull = t.span_start(1, deploy, "deploy-pull", SimTime::from_secs(1));
        t.event(
            pull,
            "retry",
            SimTime::from_millis(1500),
            "pull: injected fault".into(),
        );
        t.span_end(pull, SimTime::from_secs(2));
        t.span_end(deploy, SimTime::from_millis(2500));
        t.span_end(root, SimTime::from_secs(3));
        t.log().unwrap().clone()
    }

    #[test]
    fn span_timeline_renders_tree_tracks_and_events() {
        let log = traced_request();
        let s = span_timeline(&log, 1, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "request 1: 3 span(s) over 2.000s");
        // Depth-indented labels share fmt_duration formatting.
        assert!(lines[1].starts_with("request @1.000s +2.000s"));
        assert!(lines[2].starts_with("  deploy @1.000s +1.500s"));
        assert!(lines[3].starts_with("    deploy-pull @1.000s +1.000s"));
        // The root track spans the full width; the pull track half of it.
        assert!(lines[1].contains(&format!("|{}|", "█".repeat(20))));
        assert!(lines[3].contains(&format!("|{}{}|", "█".repeat(10), " ".repeat(10))));
        // The retry event renders under its span.
        assert!(lines[4].contains("· retry @1.500s pull: injected fault"));
        // Gantt bars all align at the same column.
        let bar = lines[1].find('|').unwrap();
        assert_eq!(lines[2].find('|').unwrap(), bar);
        assert_eq!(lines[3].find('|').unwrap(), bar);
    }

    #[test]
    fn span_timeline_handles_missing_and_open_spans() {
        let log = SpanLog::new();
        assert_eq!(span_timeline(&log, 9, 10), "request 9: no spans recorded\n");
        use telemetry::{SimTracer, SpanId, Tracer};
        let mut t = SimTracer::new();
        t.span_start(2, SpanId::NONE, "request", SimTime::from_secs(1));
        let s = span_timeline(t.log().unwrap(), 2, 10);
        assert!(s.contains("(open)"), "{s}");
    }
}
